//! Crash-safe persistence of the daemon's engine state.

use seer_core::{PersistError, SeerSnapshot};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Everything the daemon persists: the engine's knowledge plus enough
/// pipeline bookkeeping to report how far ingestion had progressed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaemonSnapshot {
    /// The engine's persistent knowledge.
    pub engine: SeerSnapshot,
    /// Events the engine had applied when this snapshot was taken.
    pub events_applied: u64,
}

impl DaemonSnapshot {
    /// Writes the snapshot atomically: the JSON goes to `<path>.tmp`,
    /// which replaces `path` only after a complete, flushed write. A
    /// crash mid-write leaves the previous snapshot intact, never a
    /// truncated one. The snapshot being replaced is kept as
    /// `<path>.prev`, the fallback [`DaemonSnapshot::load_with_fallback`]
    /// reaches for when the primary is damaged.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on any filesystem failure.
    pub fn write_atomic(&self, path: &Path) -> Result<(), PersistError> {
        let tmp = tmp_path(path);
        {
            let file = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            serde_json::to_writer(&mut w, self).map_err(|e| PersistError::Format(e.to_string()))?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        // Keep the outgoing snapshot as the fallback generation. Best
        // effort: a failure here (e.g. no current snapshot yet) must not
        // block publishing the new one.
        let _ = fs::rename(path, prev_path(path));
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads the latest snapshot; `Ok(None)` when none has been written.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Format`] if the file exists but does not
    /// parse (a corrupt database is an error, not a silent cold start).
    pub fn load(path: &Path) -> Result<Option<DaemonSnapshot>, PersistError> {
        let file = match fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let snap = serde_json::from_reader(&mut BufReader::new(file))
            .map_err(|e| PersistError::Format(e.to_string()))?;
        Ok(Some(snap))
    }

    /// Recovery-oriented load: prefers the primary snapshot, falling
    /// back to `<path>.prev` when the primary is corrupt or missing.
    /// Never errors on damage — a daemon should start with the best
    /// state available, not refuse to start. Returns the snapshot (if
    /// any survived) plus human-readable warnings describing every
    /// degradation encountered, for the caller to log.
    #[must_use]
    pub fn load_with_fallback(path: &Path) -> (Option<DaemonSnapshot>, Vec<String>) {
        let mut warnings = Vec::new();
        match DaemonSnapshot::load(path) {
            Ok(Some(snap)) => return (Some(snap), warnings),
            Ok(None) => {}
            Err(e) => warnings.push(format!(
                "primary snapshot {} unreadable: {e}",
                path.display()
            )),
        }
        let prev = prev_path(path);
        match DaemonSnapshot::load(&prev) {
            Ok(Some(snap)) => {
                warnings.push(format!(
                    "recovered from previous snapshot {} (events_applied {})",
                    prev.display(),
                    snap.events_applied
                ));
                (Some(snap), warnings)
            }
            Ok(None) => {
                if !warnings.is_empty() {
                    warnings.push("no previous snapshot either; starting cold".into());
                }
                (None, warnings)
            }
            Err(e) => {
                warnings.push(format!(
                    "previous snapshot {} also unreadable: {e}; starting cold",
                    prev.display()
                ));
                (None, warnings)
            }
        }
    }
}

/// Removes a stale `<path>.tmp` left by a crash mid-write. Returns the
/// removed path, if there was one, so the caller can log it.
pub(crate) fn clean_stale(path: &Path) -> Option<std::path::PathBuf> {
    let tmp = tmp_path(path);
    if tmp.exists() && fs::remove_file(&tmp).is_ok() {
        return Some(tmp);
    }
    None
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    os.into()
}

fn prev_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".prev");
    os.into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_core::SeerEngine;
    use seer_trace::{EventSink, OpenMode, Pid, TraceBuilder};

    fn warm_engine() -> SeerEngine {
        let mut b = TraceBuilder::new();
        for i in 0..4u32 {
            b.touch(Pid(i + 1), "/p/a.c", OpenMode::Read);
            b.touch(Pid(i + 1), "/p/b.h", OpenMode::Read);
        }
        let t = b.build();
        let mut engine = SeerEngine::default();
        for ev in &t.events {
            engine.on_event(ev, &t.strings);
        }
        engine
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("seer-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        let snap = DaemonSnapshot {
            engine: warm_engine().snapshot(),
            events_applied: 16,
        };
        snap.write_atomic(&path).expect("write");
        let back = DaemonSnapshot::load(&path).expect("load").expect("present");
        assert_eq!(back.events_applied, 16);
        let restored = SeerEngine::from_snapshot(back.engine);
        assert!(restored.paths().get("/p/a.c").is_some());
        assert!(!tmp_path(&path).exists(), "tmp replaced by rename");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let path = std::env::temp_dir().join("seer-snap-definitely-absent.json");
        assert!(DaemonSnapshot::load(&path).expect("ok").is_none());
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let dir = std::env::temp_dir().join(format!("seer-snapc-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        fs::write(&path, b"{ truncated").expect("write");
        assert!(DaemonSnapshot::load(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_primary_falls_back_to_previous() {
        let dir = std::env::temp_dir().join(format!("seer-snapf-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        let first = DaemonSnapshot {
            engine: warm_engine().snapshot(),
            events_applied: 7,
        };
        first.write_atomic(&path).expect("write 1");
        let second = DaemonSnapshot {
            engine: warm_engine().snapshot(),
            events_applied: 9,
        };
        second.write_atomic(&path).expect("write 2");
        // Damage the primary; the previous generation must win.
        fs::write(&path, b"{ torn mid-write").expect("corrupt");
        let (snap, warnings) = DaemonSnapshot::load_with_fallback(&path);
        assert_eq!(snap.expect("fallback").events_applied, 7);
        assert!(!warnings.is_empty(), "degradation is reported");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_primary_without_previous_starts_cold() {
        let dir = std::env::temp_dir().join(format!("seer-snapg-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        fs::write(&path, b"not json at all").expect("write");
        let (snap, warnings) = DaemonSnapshot::load_with_fallback(&path);
        assert!(snap.is_none());
        assert!(warnings.len() >= 2, "both failures reported: {warnings:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_has_no_warnings() {
        let dir = std::env::temp_dir().join(format!("seer-snaph-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let (snap, warnings) = DaemonSnapshot::load_with_fallback(&dir.join("absent.json"));
        assert!(snap.is_none());
        assert!(warnings.is_empty(), "a clean cold start is not a warning");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_stale_removes_orphaned_tmp() {
        let dir = std::env::temp_dir().join(format!("seer-snapt-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        fs::write(tmp_path(&path), b"half-written").expect("write tmp");
        let removed = clean_stale(&path).expect("tmp existed");
        assert!(!removed.exists());
        assert!(clean_stale(&path).is_none(), "idempotent");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = std::env::temp_dir().join(format!("seer-snap2-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        let first = DaemonSnapshot {
            engine: warm_engine().snapshot(),
            events_applied: 1,
        };
        first.write_atomic(&path).expect("write 1");
        let second = DaemonSnapshot {
            engine: warm_engine().snapshot(),
            events_applied: 2,
        };
        second.write_atomic(&path).expect("write 2");
        let back = DaemonSnapshot::load(&path).expect("load").expect("present");
        assert_eq!(back.events_applied, 2);
        fs::remove_dir_all(&dir).ok();
    }
}
