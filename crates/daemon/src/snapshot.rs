//! Crash-safe persistence of the daemon's engine state.

use seer_core::{PersistError, SeerSnapshot};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Everything the daemon persists: the engine's knowledge plus enough
/// pipeline bookkeeping to report how far ingestion had progressed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaemonSnapshot {
    /// The engine's persistent knowledge.
    pub engine: SeerSnapshot,
    /// Events the engine had applied when this snapshot was taken.
    pub events_applied: u64,
}

impl DaemonSnapshot {
    /// Writes the snapshot atomically: the JSON goes to `<path>.tmp`,
    /// which replaces `path` only after a complete, flushed write. A
    /// crash mid-write leaves the previous snapshot intact, never a
    /// truncated one.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on any filesystem failure.
    pub fn write_atomic(&self, path: &Path) -> Result<(), PersistError> {
        let tmp = tmp_path(path);
        {
            let file = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            serde_json::to_writer(&mut w, self).map_err(|e| PersistError::Format(e.to_string()))?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads the latest snapshot; `Ok(None)` when none has been written.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Format`] if the file exists but does not
    /// parse (a corrupt database is an error, not a silent cold start).
    pub fn load(path: &Path) -> Result<Option<DaemonSnapshot>, PersistError> {
        let file = match fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let snap = serde_json::from_reader(&mut BufReader::new(file))
            .map_err(|e| PersistError::Format(e.to_string()))?;
        Ok(Some(snap))
    }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    os.into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_core::SeerEngine;
    use seer_trace::{EventSink, OpenMode, Pid, TraceBuilder};

    fn warm_engine() -> SeerEngine {
        let mut b = TraceBuilder::new();
        for i in 0..4u32 {
            b.touch(Pid(i + 1), "/p/a.c", OpenMode::Read);
            b.touch(Pid(i + 1), "/p/b.h", OpenMode::Read);
        }
        let t = b.build();
        let mut engine = SeerEngine::default();
        for ev in &t.events {
            engine.on_event(ev, &t.strings);
        }
        engine
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("seer-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        let snap = DaemonSnapshot {
            engine: warm_engine().snapshot(),
            events_applied: 16,
        };
        snap.write_atomic(&path).expect("write");
        let back = DaemonSnapshot::load(&path).expect("load").expect("present");
        assert_eq!(back.events_applied, 16);
        let restored = SeerEngine::from_snapshot(back.engine);
        assert!(restored.paths().get("/p/a.c").is_some());
        assert!(!tmp_path(&path).exists(), "tmp replaced by rename");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let path = std::env::temp_dir().join("seer-snap-definitely-absent.json");
        assert!(DaemonSnapshot::load(&path).expect("ok").is_none());
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let dir = std::env::temp_dir().join(format!("seer-snapc-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        fs::write(&path, b"{ truncated").expect("write");
        assert!(DaemonSnapshot::load(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = std::env::temp_dir().join(format!("seer-snap2-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        let first = DaemonSnapshot {
            engine: warm_engine().snapshot(),
            events_applied: 1,
        };
        first.write_atomic(&path).expect("write 1");
        let second = DaemonSnapshot {
            engine: warm_engine().snapshot(),
            events_applied: 2,
        };
        second.write_atomic(&path).expect("write 2");
        let back = DaemonSnapshot::load(&path).expect("load").expect("present");
        assert_eq!(back.events_applied, 2);
        fs::remove_dir_all(&dir).ok();
    }
}
