//! Shared ingestion-pipeline counters.

use parking_lot::Mutex;
use std::sync::Arc;

/// Counters describing the daemon's ingestion pipeline.
///
/// `max_queue_depth` is the backpressure witness: it records the deepest
/// the bounded ingest queue ever got, and can never exceed the configured
/// channel capacity because producers block instead of growing the queue.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DaemonStats {
    /// Events accepted off client sockets.
    pub events_received: u64,
    /// Events applied to the engine.
    pub events_applied: u64,
    /// Batches applied to the engine.
    pub batches_applied: u64,
    /// Deepest observed ingest-queue depth (messages).
    pub max_queue_depth: usize,
    /// Reclusterings performed.
    pub reclusters: u64,
    /// Snapshots written to disk.
    pub snapshots: u64,
    /// Client connections accepted.
    pub connections: u64,
}

/// Stats handle shared between server, pipeline, and callers.
pub(crate) type SharedStats = Arc<Mutex<DaemonStats>>;

pub(crate) fn new_shared() -> SharedStats {
    Arc::new(Mutex::new(DaemonStats::default()))
}
