//! Pipeline metrics: registry-backed counters, gauges, and stage timers.
//!
//! The registry is the single source of truth; [`DaemonStats`] survives
//! only as a point-in-time *view* assembled from it, keeping the wire
//! protocol's `stats` answer and the [`crate::DaemonHandle`] API stable
//! while the hot path records through lock-free atomics instead of a
//! shared mutex.

use seer_telemetry::{AlertCenter, AlertTransition, Counter, Gauge, Histogram, Registry, Tracer};
use std::sync::Arc;
use std::time::Instant;

/// Default bounded-alert-ring capacity when none is configured.
#[cfg(test)]
pub(crate) const DEFAULT_ALERT_CAPACITY: usize = 256;

/// Counters describing the daemon's ingestion pipeline.
///
/// `max_queue_depth` is the backpressure witness: it records the deepest
/// the bounded ingest queue ever got, and can never exceed the configured
/// channel capacity because producers block instead of growing the queue.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DaemonStats {
    /// Events accepted off client sockets.
    pub events_received: u64,
    /// Events applied to the engine.
    pub events_applied: u64,
    /// Batches applied to the engine.
    pub batches_applied: u64,
    /// Deepest observed ingest-queue depth (messages).
    pub max_queue_depth: usize,
    /// Reclusterings performed.
    pub reclusters: u64,
    /// Snapshots written to disk.
    pub snapshots: u64,
    /// Client connections accepted.
    pub connections: u64,
}

/// Registry handles for every pipeline metric. Connection readers, the
/// batcher, and the engine actor share one instance; all recording is
/// lock-free.
pub(crate) struct PipelineMetrics {
    /// The registry the handles live in, for `metrics` query snapshots.
    pub registry: Arc<Registry>,
    /// The causal-span tracer / flight recorder every pipeline stage
    /// records into. Disabled (`trace_capacity: 0`) it costs one branch.
    pub tracer: Tracer,
    pub events_received: Counter,
    pub events_applied: Counter,
    pub batches_applied: Counter,
    /// Connections torn down by a protocol violation or mid-frame I/O
    /// failure (hostile or broken clients). Each kills only its own
    /// connection; this counter is the blast-radius witness.
    pub connection_errors: Counter,
    /// Tenants the engine shards currently hold state for.
    pub tenants: Gauge,
    /// Batches dropped (not applied, not acknowledged) because the
    /// tenant's write-ahead log has faulted.
    pub wal_dropped_batches: Counter,
    pub reclusters: Counter,
    /// Reclusterings whose counting phase ran incrementally off the
    /// worker's pair-count cache (a subset of `reclusters`).
    pub reclusters_incremental: Counter,
    pub snapshots: Counter,
    pub connections: Counter,
    /// Recluster jobs queued or running on the background worker.
    pub recluster_inflight: Gauge,
    /// Hoard/cluster queries answered from a clustering older than the
    /// applied event count (non-fresh queries during a recluster).
    pub stale_queries: Counter,
    /// Events applied since the installed clustering was computed — how
    /// far the hoard's view of the project structure lags reality.
    pub generation_lag: Gauge,
    /// Ingest-queue depth sampled at each event send.
    pub queue_depth: Gauge,
    /// High-water mark of `queue_depth` over the daemon's lifetime.
    pub queue_depth_max: Gauge,
    /// Seconds since the daemon started, refreshed on metrics queries so
    /// scrapers can derive events/sec without wall-clock access.
    uptime_seconds: Gauge,
    /// WAL records appended (interns + batches).
    pub wal_records: Counter,
    /// WAL bytes appended, framing included.
    pub wal_appended_bytes: Counter,
    /// WAL appends that failed (logged, never fatal to ingest).
    pub wal_append_errors: Counter,
    /// WAL segment rotations.
    pub wal_rotations: Counter,
    /// WAL segments deleted by snapshot-driven compaction.
    pub wal_segments_compacted: Counter,
    /// WAL segment files currently on disk.
    pub wal_segments: Gauge,
    /// Total bytes across WAL segment files.
    pub wal_disk_bytes: Gauge,
    /// Per-stage latency histograms (`seer_daemon_stage_seconds`).
    pub stage_socket_read: Histogram,
    pub stage_decode: Histogram,
    pub stage_batcher_flush: Histogram,
    pub stage_engine_apply: Histogram,
    pub stage_recluster: Histogram,
    pub stage_snapshot_write: Histogram,
    pub stage_wal_append: Histogram,
    pub stage_wal_fsync: Histogram,
    pub stage_evaluate: Histogram,
    /// Quality evaluations completed (background + inline query-driven).
    pub quality_evals: Counter,
    /// Latest SEER miss-free hoard size in bytes.
    pub quality_seer_missfree_bytes: Gauge,
    /// Latest shadow-LRU miss-free hoard size in bytes.
    pub quality_lru_missfree_bytes: Gauge,
    /// Latest simulated-disconnection working-set size in bytes.
    pub quality_working_set_bytes: Gauge,
    /// Files the latest evaluation's needed set contained.
    pub quality_needed_files: Gauge,
    /// The fleet alert ring: SLO burn, WAL fault, and watchdog alerts
    /// with firing/resolved transitions, shared by every shard actor,
    /// the hub, and the watchdog thread.
    pub alerts: AlertCenter,
    /// Alerts ever fired (including since-evicted and resolved ones).
    pub alerts_fired: Counter,
    /// Alerts currently firing across all tenants and `_self`.
    pub alerts_firing: Gauge,
    started: Instant,
}

/// Per-tenant instrument handles, resolved once per tenant at state
/// creation so the apply path never re-interns a label set. Cloning is
/// cheap (each handle is an `Arc` around its atomics).
///
/// Per-tenant stage histograms live under their own metric name
/// (`seer_daemon_tenant_stage_seconds`) so the global per-stage tables
/// keyed on `seer_daemon_stage_seconds` stay tenant-agnostic.
#[derive(Debug, Clone)]
pub(crate) struct TenantMetrics {
    /// Events applied for this tenant.
    pub events_applied: Counter,
    /// Batches applied for this tenant.
    pub batches_applied: Counter,
    /// Flush acknowledgements answered for this tenant's connections.
    pub flushes: Counter,
    /// Hoard misses (real + auto-detected), mirrored from the quality
    /// plane's miss log at health-sampling cadence.
    pub misses: Counter,
    /// WAL records appended for this tenant.
    pub wal_records: Counter,
    /// Per-tenant twin of `seer_daemon_wal_dropped_batches_total`.
    pub wal_dropped_batches: Counter,
    /// Engine-apply latency for this tenant's batches.
    pub stage_engine_apply: Histogram,
    /// WAL-append latency for this tenant's batches.
    pub stage_wal_append: Histogram,
    /// The folded 0–100 health score.
    pub health_score: Gauge,
}

impl PipelineMetrics {
    pub(crate) fn with_alert_capacity(
        registry: Arc<Registry>,
        tracer: Tracer,
        alert_capacity: usize,
    ) -> PipelineMetrics {
        let stage = |name: &str, help: &str| {
            registry.histogram_with("seer_daemon_stage_seconds", help, &[("stage", name)])
        };
        PipelineMetrics {
            events_received: registry.counter(
                "seer_daemon_events_received_total",
                "Events accepted off client sockets.",
            ),
            events_applied: registry.counter(
                "seer_daemon_events_applied_total",
                "Events applied to the engine.",
            ),
            batches_applied: registry.counter(
                "seer_daemon_batches_applied_total",
                "Batches applied to the engine.",
            ),
            reclusters: registry
                .counter("seer_daemon_reclusters_total", "Reclusterings performed."),
            reclusters_incremental: registry.counter(
                "seer_daemon_reclusters_incremental_total",
                "Reclusterings served by incremental shared-neighbor maintenance.",
            ),
            snapshots: registry
                .counter("seer_daemon_snapshots_total", "Snapshots written to disk."),
            connections: registry.counter(
                "seer_daemon_connections_total",
                "Client connections accepted.",
            ),
            connection_errors: registry.counter(
                "seer_daemon_connection_errors_total",
                "Connections torn down by a protocol violation or mid-frame I/O failure.",
            ),
            tenants: registry.gauge(
                "seer_daemon_tenants",
                "Tenants the engine shards currently hold state for.",
            ),
            wal_dropped_batches: registry.counter(
                "seer_daemon_wal_dropped_batches_total",
                "Batches dropped unacknowledged because the tenant's WAL has faulted.",
            ),
            recluster_inflight: registry.gauge(
                "seer_daemon_recluster_inflight",
                "Recluster jobs queued or running on the background worker.",
            ),
            stale_queries: registry.counter(
                "seer_daemon_stale_queries_total",
                "Queries answered from a cached clustering older than the applied event count.",
            ),
            generation_lag: registry.gauge(
                "seer_daemon_generation_lag",
                "Events applied since the installed clustering's generation.",
            ),
            queue_depth: registry.gauge(
                "seer_daemon_queue_depth",
                "Ingest-queue depth at the last event send.",
            ),
            queue_depth_max: registry.gauge(
                "seer_daemon_queue_depth_max",
                "Deepest observed ingest-queue depth (bounded by channel capacity).",
            ),
            uptime_seconds: registry.gauge(
                "seer_daemon_uptime_seconds",
                "Seconds since the daemon started.",
            ),
            stage_socket_read: stage(
                "socket_read",
                "Pipeline stage latency: reading one frame line off a client socket.",
            ),
            stage_decode: stage(
                "decode",
                "Pipeline stage latency: decoding one frame from JSON.",
            ),
            stage_batcher_flush: stage(
                "batcher_flush",
                "Pipeline stage latency: handing a coalesced batch to the apply channel \
                 (includes backpressure blocking).",
            ),
            stage_engine_apply: stage(
                "engine_apply",
                "Pipeline stage latency: remapping and applying one batch to the engine.",
            ),
            stage_recluster: stage(
                "recluster",
                "Pipeline stage latency: one full reclustering in the engine actor.",
            ),
            stage_snapshot_write: stage(
                "snapshot_write",
                "Pipeline stage latency: writing one snapshot atomically to disk.",
            ),
            wal_records: registry.counter(
                "seer_wal_records_total",
                "WAL records appended (intern declarations and event batches).",
            ),
            wal_appended_bytes: registry.counter(
                "seer_wal_appended_bytes_total",
                "Bytes appended to the WAL, record framing included.",
            ),
            wal_append_errors: registry.counter(
                "seer_wal_append_errors_total",
                "WAL appends that failed (logged and skipped, never fatal).",
            ),
            wal_rotations: registry.counter(
                "seer_wal_rotations_total",
                "WAL segments sealed and rotated at the size threshold.",
            ),
            wal_segments_compacted: registry.counter(
                "seer_wal_segments_compacted_total",
                "WAL segments deleted by snapshot-driven compaction.",
            ),
            wal_segments: registry
                .gauge("seer_wal_segments", "WAL segment files currently on disk."),
            wal_disk_bytes: registry.gauge(
                "seer_wal_disk_bytes",
                "Total bytes across WAL segment files.",
            ),
            stage_wal_append: stage(
                "wal_append",
                "Pipeline stage latency: appending one batch (plus intern deltas) \
                 to the write-ahead log, fsync included when the policy syncs.",
            ),
            stage_wal_fsync: stage(
                "wal_fsync",
                "Pipeline stage latency: the fsync portion of WAL appends, when \
                 the policy synced.",
            ),
            stage_evaluate: stage(
                "evaluate",
                "Pipeline stage latency: one quality evaluation (miss-free hoard \
                 size, SEER vs shadow-LRU) on the evaluator worker or inline.",
            ),
            quality_evals: registry.counter(
                "seer_daemon_quality_evals_total",
                "Quality evaluations completed (background and query-driven).",
            ),
            quality_seer_missfree_bytes: registry.gauge(
                "seer_daemon_quality_seer_missfree_bytes",
                "Latest SEER miss-free hoard size for the simulated disconnection window.",
            ),
            quality_lru_missfree_bytes: registry.gauge(
                "seer_daemon_quality_lru_missfree_bytes",
                "Latest shadow-LRU miss-free hoard size for the same window.",
            ),
            quality_working_set_bytes: registry.gauge(
                "seer_daemon_quality_working_set_bytes",
                "Latest simulated-disconnection working-set size (the optimal floor).",
            ),
            quality_needed_files: registry.gauge(
                "seer_daemon_quality_needed_files",
                "Files referenced inside the latest simulated disconnection window.",
            ),
            alerts: AlertCenter::new(alert_capacity),
            alerts_fired: registry.counter(
                "seer_daemon_alerts_fired_total",
                "Alerts ever fired (SLO burn, WAL fault, watchdog).",
            ),
            alerts_firing: registry.gauge(
                "seer_daemon_alerts_firing",
                "Alerts currently firing across all tenants and _self.",
            ),
            started: Instant::now(),
            registry,
            tracer,
        }
    }

    /// Resolves the per-tenant handle bundle, interning each label set
    /// exactly once. Called at tenant-state creation, never on the
    /// apply path.
    pub(crate) fn tenant(&self, tenant: &str) -> TenantMetrics {
        let t = &[("tenant", tenant)];
        let stage = |name: &str, help: &str| {
            self.registry.histogram_with(
                "seer_daemon_tenant_stage_seconds",
                help,
                &[("tenant", tenant), ("stage", name)],
            )
        };
        TenantMetrics {
            events_applied: self.registry.counter_with(
                "seer_daemon_tenant_events_total",
                "Events applied, per tenant.",
                t,
            ),
            batches_applied: self.registry.counter_with(
                "seer_daemon_tenant_batches_total",
                "Batches applied, per tenant.",
                t,
            ),
            flushes: self.registry.counter_with(
                "seer_daemon_tenant_flushes_total",
                "Flush acknowledgements answered, per tenant.",
                t,
            ),
            misses: self.registry.counter_with(
                "seer_daemon_tenant_misses_total",
                "Hoard misses (real + auto-detected), per tenant.",
                t,
            ),
            wal_records: self.registry.counter_with(
                "seer_daemon_tenant_wal_records_total",
                "WAL records appended, per tenant.",
                t,
            ),
            wal_dropped_batches: self.registry.counter_with(
                "seer_daemon_tenant_wal_dropped_batches_total",
                "Batches dropped unacknowledged under a WAL fault, per tenant.",
                t,
            ),
            stage_engine_apply: stage(
                "engine_apply",
                "Per-tenant engine-apply latency (twin of the global stage).",
            ),
            stage_wal_append: stage(
                "wal_append",
                "Per-tenant WAL-append latency (twin of the global stage).",
            ),
            health_score: self.registry.gauge_with(
                "seer_daemon_tenant_health_score",
                "Folded 0-100 per-tenant health score (100 = healthy).",
                t,
            ),
        }
    }

    /// The per-tenant connection-error twin alone — the hub caches one
    /// per connection (re-resolved on a tenant re-handshake) so error
    /// paths never re-intern.
    pub(crate) fn tenant_connection_errors(&self, tenant: &str) -> Counter {
        self.registry.counter_with(
            "seer_daemon_tenant_connection_errors_total",
            "Connections torn down by protocol violations or I/O failures, per tenant.",
            &[("tenant", tenant)],
        )
    }

    /// Drives the (tenant, kind) alert from its condition, keeping the
    /// fired counter and firing gauge in step with the ring.
    pub(crate) fn alert(
        &self,
        tenant: &str,
        kind: &str,
        firing: bool,
        message: impl FnOnce() -> String,
    ) {
        match self.alerts.observe(tenant, kind, firing, message) {
            Some(AlertTransition::Fired) => self.alerts_fired.inc(),
            Some(AlertTransition::Resolved) | None => {}
        }
        self.alerts_firing
            .set(i64::try_from(self.alerts.firing_count()).unwrap_or(i64::MAX));
    }

    /// Refreshes the generation-lag gauge from the live counters.
    pub(crate) fn observe_generation_lag(&self, events_applied: u64, generation: u64) {
        let lag = events_applied.saturating_sub(generation);
        self.generation_lag
            .set(i64::try_from(lag).unwrap_or(i64::MAX));
    }

    /// Records a queue-depth observation (live value + high-water mark).
    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        let d = i64::try_from(depth).unwrap_or(i64::MAX);
        self.queue_depth.set(d);
        self.queue_depth_max.set_max(d);
    }

    /// Refreshes the uptime gauge; called before registry snapshots.
    pub(crate) fn touch_uptime(&self) {
        let secs = i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX);
        self.uptime_seconds.set(secs);
    }

    /// Assembles the legacy counters view from the registry handles.
    pub(crate) fn snapshot_view(&self) -> DaemonStats {
        DaemonStats {
            events_received: self.events_received.get(),
            events_applied: self.events_applied.get(),
            batches_applied: self.batches_applied.get(),
            max_queue_depth: usize::try_from(self.queue_depth_max.get()).unwrap_or(0),
            reclusters: self.reclusters.get(),
            snapshots: self.snapshots.get(),
            connections: self.connections.get(),
        }
    }
}

/// Metrics handle shared between server, pipeline, and callers.
pub(crate) type SharedMetrics = Arc<PipelineMetrics>;

#[cfg(test)]
pub(crate) fn new_shared() -> SharedMetrics {
    new_shared_with(Tracer::disabled())
}

#[cfg(test)]
pub(crate) fn new_shared_with(tracer: Tracer) -> SharedMetrics {
    new_shared_full(tracer, DEFAULT_ALERT_CAPACITY)
}

pub(crate) fn new_shared_full(tracer: Tracer, alert_capacity: usize) -> SharedMetrics {
    Arc::new(PipelineMetrics::with_alert_capacity(
        Arc::new(Registry::new()),
        tracer,
        alert_capacity,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_view_mirrors_registry() {
        let m = new_shared();
        m.events_received.add(10);
        m.events_applied.add(8);
        m.batches_applied.inc();
        m.observe_queue_depth(5);
        m.observe_queue_depth(2); // live drops, high-water holds
        m.connections.inc();
        let view = m.snapshot_view();
        assert_eq!(view.events_received, 10);
        assert_eq!(view.events_applied, 8);
        assert_eq!(view.batches_applied, 1);
        assert_eq!(view.max_queue_depth, 5);
        assert_eq!(view.connections, 1);
        let snap = m.registry.snapshot();
        assert_eq!(snap.gauge("seer_daemon_queue_depth"), Some(2));
        assert_eq!(snap.gauge("seer_daemon_queue_depth_max"), Some(5));
    }

    #[test]
    fn tenant_bundle_interns_once_and_stays_off_the_global_stage_name() {
        let m = new_shared();
        let a = m.tenant("machine-a");
        let again = m.tenant("machine-a");
        a.events_applied.add(5);
        again.events_applied.add(2);
        let snap = m.registry.snapshot();
        assert_eq!(
            snap.find_with(
                "seer_daemon_tenant_events_total",
                &[("tenant", "machine-a")]
            )
            .and_then(|ms| match ms.value {
                seer_telemetry::MetricValue::Counter { total } => Some(total),
                _ => None,
            }),
            Some(7),
            "re-resolving the bundle shares the same atomics"
        );
        a.stage_engine_apply.observe_nanos(1_000);
        let global_stages = snap
            .metrics
            .iter()
            .filter(|ms| ms.name == "seer_daemon_stage_seconds")
            .count();
        assert_eq!(
            global_stages, 9,
            "tenant stages don't pollute the global name"
        );
        assert!(m
            .registry
            .snapshot()
            .find_with(
                "seer_daemon_tenant_stage_seconds",
                &[("tenant", "machine-a"), ("stage", "engine_apply")]
            )
            .is_some());
    }

    #[test]
    fn alert_helper_tracks_fired_and_firing() {
        let m = new_shared();
        m.alert("a", "slo-burn", true, || "burning".into());
        m.alert("a", "slo-burn", true, || "still".into());
        assert_eq!(m.alerts_fired.get(), 1, "one edge, one fired");
        let snap = m.registry.snapshot();
        assert_eq!(snap.gauge("seer_daemon_alerts_firing"), Some(1));
        m.alert("a", "slo-burn", false, || unreachable!());
        assert_eq!(
            m.registry.snapshot().gauge("seer_daemon_alerts_firing"),
            Some(0)
        );
        assert_eq!(m.alerts.snapshot(Some("a")).len(), 1);
    }

    #[test]
    fn stage_histograms_share_one_metric_name() {
        let m = new_shared();
        m.stage_decode.observe_nanos(1_000);
        m.stage_engine_apply.observe_nanos(2_000);
        m.touch_uptime();
        let snap = m.registry.snapshot();
        let stages: Vec<_> = snap
            .metrics
            .iter()
            .filter(|ms| ms.name == "seer_daemon_stage_seconds")
            .collect();
        assert_eq!(stages.len(), 9, "nine instrumented stages");
        assert!(snap
            .find_with("seer_daemon_stage_seconds", &[("stage", "decode")])
            .is_some());
        assert!(snap.gauge("seer_daemon_uptime_seconds").is_some());
    }
}
