//! The daemon itself: socket listener, connection readers, and lifecycle.

use crate::pipeline::{self, ActorConfig, Control, Ingest};
use crate::snapshot::DaemonSnapshot;
use crate::stats::{self, DaemonStats, PipelineMetrics, SharedMetrics};
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use seer_core::{PersistError, Replayer, SeerConfig, SeerEngine};
use seer_telemetry::{tlog, Level, RegistrySnapshot, SpanContext, TraceId, Tracer};
use seer_trace::wire::{
    self, ClientFrame, DaemonFrame, QueryRequest, QueryResponse, WireError, MIN_WIRE_VERSION,
    WIRE_VERSION,
};
use seer_trace::StringTable;
use seer_wal::{FsyncPolicy, Wal, WalConfig, WalError, WalRecord};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Where to bind the Unix-domain socket.
    pub socket_path: PathBuf,
    /// Where to persist snapshots; `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Engine configuration (used only on a cold start; a snapshot's
    /// embedded configuration wins on recovery).
    pub engine: SeerConfig,
    /// Capacity of the bounded ingest and apply channels. Producers block
    /// when full — this is the backpressure knob.
    pub channel_capacity: usize,
    /// Target events per engine batch.
    pub batch_max: usize,
    /// How long the batcher waits for more events before flushing a
    /// partial batch.
    pub batch_max_wait: Duration,
    /// Start a background recluster after this many applied events.
    /// `0` disables periodic reclustering entirely; queries still
    /// compute a clustering on demand.
    pub recluster_every: u64,
    /// Force a full shared-neighbor recount after this many consecutive
    /// incremental reclusterings. Between full recounts the worker
    /// maintains pair counts from the dirty-row delta of each batch —
    /// bit-identical to a full recount, but proportional to what
    /// changed. `0` never forces a full recount.
    pub recluster_full_every: u64,
    /// Snapshot after this many applied events. `0` disables periodic
    /// snapshots; the final snapshot on graceful shutdown is still
    /// written whenever `snapshot_path` is set.
    pub snapshot_every: u64,
    /// Engine actor idle tick (stale-work folding, kill-flag polling).
    pub tick: Duration,
    /// Nominal size, in bytes, assumed for every file when answering
    /// hoard queries (the daemon has no investigator measuring real
    /// sizes; a uniform model keeps selections deterministic).
    pub file_size: u64,
    /// Shards for the shared-neighbor counting phase of reclustering.
    /// The clustering is bit-identical for any value; more threads only
    /// shorten the count phase. Clamped to at least 1.
    pub recluster_threads: usize,
    /// Spans retained by the flight-recorder ring (oldest overwritten
    /// first). `0` disables tracing entirely.
    pub trace_capacity: usize,
    /// Spans lasting at least this long are auto-promoted to the
    /// structured event log.
    pub slow_span: Duration,
    /// Where to dump the flight recorder (JSON lines) when the daemon
    /// exits, gracefully or by kill. `None` skips the on-exit dump; the
    /// panic-hook dump to stderr happens regardless.
    pub flight_path: Option<PathBuf>,
    /// Directory for the write-ahead log. `None` runs without a WAL:
    /// a kill loses everything since the last snapshot.
    pub wal_dir: Option<PathBuf>,
    /// When the WAL syncs to disk. [`FsyncPolicy::Always`] makes every
    /// acknowledged batch durable; the default interval policy bounds
    /// loss to the window instead of paying an fsync per batch.
    pub wal_fsync: FsyncPolicy,
    /// Rotate WAL segments once they exceed this many bytes.
    pub wal_segment_bytes: u64,
    /// Point-in-time restore: discard every batch past this generation
    /// (applied-event count) before starting. Requires `wal_dir`.
    pub restore_to: Option<u64>,
    /// Cadence of background quality evaluations (live miss-free hoard
    /// size, SEER vs shadow-LRU). `Duration::ZERO` disables the quality
    /// plane entirely — no evaluator worker, no shadow LRU on the apply
    /// path, no postmortem capture.
    pub eval_every: Duration,
    /// Simulated-disconnection window the evaluator scores against, in
    /// trace seconds (default: one day, the paper's canonical
    /// disconnection scale).
    pub eval_window_secs: u64,
    /// Byte budget for the evaluator's coverage-at-budget and
    /// time-to-first-miss numbers.
    pub eval_budget: u64,
    /// Entry cap of the shadow-LRU comparator (bounds its memory).
    pub shadow_lru_cap: usize,
    /// Capacity of each connection's socket read buffer. Size it to the
    /// largest expected events frame so a frame arrives in one kernel
    /// read; a buffer smaller than the frame forces mid-frame refills,
    /// which is exactly the `socket_read` p99 outlier small-frame
    /// benchmarks used to show.
    pub read_buffer: usize,
}

impl DaemonConfig {
    /// A configuration with defaults suitable for tests and local use.
    #[must_use]
    pub fn new(socket_path: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket_path: socket_path.into(),
            snapshot_path: None,
            engine: SeerConfig::default(),
            channel_capacity: 256,
            batch_max: 256,
            batch_max_wait: Duration::from_millis(20),
            recluster_every: 50_000,
            recluster_full_every: 16,
            snapshot_every: 20_000,
            tick: Duration::from_millis(50),
            file_size: 1024,
            recluster_threads: 4,
            trace_capacity: 4096,
            slow_span: Duration::from_millis(100),
            flight_path: None,
            wal_dir: None,
            wal_fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
            wal_segment_bytes: 8 * 1024 * 1024,
            restore_to: None,
            eval_every: Duration::from_secs(2),
            eval_window_secs: 86_400,
            eval_budget: 1 << 20,
            shadow_lru_cap: 65_536,
            read_buffer: 256 * 1024,
        }
    }
}

/// Errors from starting or running a daemon.
#[derive(Debug)]
pub enum DaemonError {
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// The snapshot on disk exists but cannot be read.
    Persist(PersistError),
    /// The write-ahead log could not be opened, recovered, or truncated.
    Wal(WalError),
    /// A `restore_to` request that cannot be honored (no WAL configured,
    /// or the requested generation is unreachable).
    Restore(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "daemon I/O error: {e}"),
            DaemonError::Persist(e) => write!(f, "daemon snapshot error: {e}"),
            DaemonError::Wal(e) => write!(f, "daemon wal error: {e}"),
            DaemonError::Restore(m) => write!(f, "restore failed: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> DaemonError {
        DaemonError::Io(e)
    }
}

impl From<PersistError> for DaemonError {
    fn from(e: PersistError) -> DaemonError {
        DaemonError::Persist(e)
    }
}

impl From<WalError> for DaemonError {
    fn from(e: WalError) -> DaemonError {
        DaemonError::Wal(e)
    }
}

/// State shared by the listener, connection readers, and the handle.
struct Shared {
    /// Raised to stop accepting and let in-flight work drain (graceful).
    shutdown: AtomicBool,
    /// Raised to abandon everything immediately, skipping the final
    /// snapshot (crash simulation). An `Arc` because the pipeline
    /// threads poll it independently of the rest of the shared state.
    kill: Arc<AtomicBool>,
    metrics: SharedMetrics,
    /// Duplicate handles of every live client socket, so shutdown can
    /// unblock readers parked in `read`.
    conns: Mutex<Vec<UnixStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    /// Starts the shutdown cascade: stop accepting, then close every
    /// client socket so readers see EOF and drop their channel senders.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for s in self.conns.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running daemon. Dropping the handle without calling
/// [`DaemonHandle::shutdown`] kills the pipeline abruptly (no final
/// snapshot) so tests and crashed callers never hang on a join.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    socket_path: PathBuf,
    listener: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    actor: Option<JoinHandle<()>>,
}

/// Entry point: [`Daemon::spawn`] starts the pipeline threads and the
/// socket listener, returning a [`DaemonHandle`].
pub struct Daemon;

impl Daemon {
    /// Starts a daemon, recovering engine state from
    /// `config.snapshot_path` (damaged primaries fall back to the
    /// previous snapshot, then to a cold start) and replaying the
    /// write-ahead log on top when `config.wal_dir` is set.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] if the socket cannot be bound,
    /// [`DaemonError::Wal`] for an unrecoverable log, and
    /// [`DaemonError::Restore`] when `config.restore_to` cannot be
    /// honored.
    pub fn spawn(config: DaemonConfig) -> Result<DaemonHandle, DaemonError> {
        // Initialize the event log eagerly so a bad `SEER_LOG_FILE`
        // surfaces at startup — and so recovery warnings are visible.
        seer_telemetry::init_from_env();

        let (mut engine, mut events_applied) = match &config.snapshot_path {
            Some(path) => {
                if let Some(tmp) = crate::snapshot::clean_stale(path) {
                    tlog!(
                        Level::Warn,
                        "seer_daemon",
                        "removed stale snapshot temp file",
                        path = tmp.display().to_string(),
                    );
                }
                let (snap, warnings) = DaemonSnapshot::load_with_fallback(path);
                for warning in &warnings {
                    tlog!(
                        Level::Warn,
                        "seer_daemon",
                        "snapshot recovery degraded",
                        detail = warning.as_str(),
                    );
                }
                match snap {
                    Some(s) => (SeerEngine::from_snapshot(s.engine), s.events_applied),
                    None => (SeerEngine::new(config.engine.clone()), 0),
                }
            }
            None => (SeerEngine::new(config.engine.clone()), 0),
        };

        if config.restore_to.is_some() && config.wal_dir.is_none() {
            return Err(DaemonError::Restore(
                "restore requires a write-ahead log (set wal_dir / --wal-dir)".into(),
            ));
        }

        let mut strings = StringTable::new();
        let mut wal = None;
        if let Some(dir) = &config.wal_dir {
            let (mut w, report) = Wal::open(WalConfig {
                dir: dir.clone(),
                fsync: config.wal_fsync,
                segment_max_bytes: config.wal_segment_bytes,
            })?;
            tlog!(
                Level::Info,
                "seer_daemon",
                "wal recovered",
                dir = dir.display().to_string(),
                segments = report.segments as u64,
                records = report.records,
                last_generation = report.last_generation,
                truncated_bytes = report.truncated_bytes,
                dropped_segments = report.dropped_segments as u64,
            );

            if let Some(target) = config.restore_to {
                // A snapshot newer than the target would smuggle the
                // discarded suffix back in; restoring past it means
                // rebuilding from generation zero, which needs an
                // uncompacted log.
                if events_applied > target {
                    if w.compacted_through() > 0 {
                        return Err(DaemonError::Restore(format!(
                            "generation {target} unreachable: the snapshot is at generation \
                             {events_applied} and the log is compacted through {}",
                            w.compacted_through()
                        )));
                    }
                    engine = SeerEngine::new(config.engine.clone());
                    events_applied = 0;
                }
                let achieved = w.truncate_after(target)?;
                tlog!(
                    Level::Info,
                    "seer_daemon",
                    "wal truncated for restore",
                    target = target,
                    achieved = achieved,
                );
            }

            let recovered = replay_wal(&w, engine, events_applied)?;
            if recovered.gaps > 0 {
                let message = format!(
                    "wal does not connect to the recovered snapshot \
                     ({} generation gaps)",
                    recovered.gaps
                );
                if config.restore_to.is_some() {
                    return Err(DaemonError::Restore(message));
                }
                tlog!(
                    Level::Warn,
                    "seer_daemon",
                    "wal replay incomplete",
                    detail = message.as_str(),
                );
            }
            engine = recovered.engine;
            strings = recovered.strings;
            events_applied = recovered.events_applied;

            if let Some(target) = config.restore_to {
                // Publish the restored state as the snapshot immediately,
                // so a newer snapshot on disk can never resurrect the
                // history the truncation just discarded.
                if let Some(path) = &config.snapshot_path {
                    let snap = DaemonSnapshot {
                        engine: engine.snapshot(),
                        events_applied,
                    };
                    snap.write_atomic(path)?;
                }
                tlog!(
                    Level::Info,
                    "seer_daemon",
                    "restored to generation",
                    target = target,
                    events_applied = events_applied,
                );
            }
            wal = Some(w);
        }

        // One registry per daemon: pipeline and engine metrics share it,
        // and every instance (parallel tests included) stays isolated.
        let tracer = Tracer::new(config.trace_capacity, config.slow_span);
        seer_telemetry::register_flight_recorder("daemon", &tracer);
        let metrics = stats::new_shared_with(tracer);
        engine.attach_telemetry(&metrics.registry);

        // A stale socket file from a previous (possibly killed) daemon
        // would make bind fail; remove it first.
        let _ = std::fs::remove_file(&config.socket_path);
        let listener = UnixListener::bind(&config.socket_path)?;
        listener.set_nonblocking(true)?;

        tlog!(
            Level::Info,
            "seer_daemon",
            "daemon started",
            socket = config.socket_path.display().to_string(),
            recovered_events = events_applied,
        );

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            kill: Arc::new(AtomicBool::new(false)),
            metrics,
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        });

        let (ingest_tx, ingest_rx) = bounded::<Ingest>(config.channel_capacity);
        let (apply_tx, apply_rx) = bounded(config.channel_capacity);
        let (control_tx, control_rx) = bounded::<Control>(16);

        let batcher = {
            let ingest_rx = ingest_rx.clone();
            let kill = Arc::clone(&shared.kill);
            let batch_max = config.batch_max;
            let batch_max_wait = config.batch_max_wait;
            let flush_timer = shared.metrics.stage_batcher_flush.clone();
            let tracer = shared.metrics.tracer.clone();
            thread::spawn(move || {
                pipeline::run_batcher(
                    batch_max,
                    batch_max_wait,
                    ingest_rx,
                    apply_tx,
                    flush_timer,
                    tracer,
                    kill,
                );
            })
        };

        let actor = {
            let actor_cfg = ActorConfig {
                snapshot_path: config.snapshot_path.clone(),
                recluster_every: config.recluster_every,
                recluster_full_every: config.recluster_full_every,
                snapshot_every: config.snapshot_every,
                tick: config.tick,
                file_size: config.file_size,
                recluster_threads: config.recluster_threads,
                flight_path: config.flight_path.clone(),
                engine: config.engine.clone(),
                eval_every: config.eval_every,
                eval_window_secs: config.eval_window_secs,
                eval_budget: config.eval_budget,
                shadow_lru_cap: config.shadow_lru_cap,
            };
            let metrics = Arc::clone(&shared.metrics);
            let kill = Arc::clone(&shared.kill);
            // `ingest_rx` is cloned purely to observe queue depth for
            // Health queries; the actor never receives from it.
            let depth_probe = ingest_rx;
            thread::spawn(move || {
                pipeline::run_engine_actor(
                    engine,
                    strings,
                    events_applied,
                    wal,
                    actor_cfg,
                    apply_rx,
                    control_rx,
                    depth_probe,
                    metrics,
                    kill,
                );
            })
        };

        let listener_thread = {
            let shared = Arc::clone(&shared);
            let read_buffer = config.read_buffer;
            thread::spawn(move || {
                run_listener(&listener, &shared, &ingest_tx, &control_tx, read_buffer);
            })
        };

        Ok(DaemonHandle {
            shared,
            socket_path: config.socket_path,
            listener: Some(listener_thread),
            batcher: Some(batcher),
            actor: Some(actor),
        })
    }
}

/// Engine state reconstructed from a snapshot base plus a WAL replay.
struct Recovered {
    engine: SeerEngine,
    strings: StringTable,
    events_applied: u64,
    /// Generation discontinuities seen during replay; non-zero means the
    /// log does not connect to the base state (e.g. the WAL was enabled
    /// after the snapshotted history had already accumulated).
    gaps: u64,
}

/// Replays the whole log on top of `engine` (already caught up through
/// `events_applied` events). Batches at or below that watermark are
/// skipped, so a snapshot newer than part of the log replays cleanly.
/// The returned string table is rebuilt from the log's intern records —
/// segments are self-contained, so even a compacted log declares every
/// path it references.
fn replay_wal(wal: &Wal, engine: SeerEngine, events_applied: u64) -> Result<Recovered, WalError> {
    let mut rep = Replayer::new(engine, StringTable::new(), events_applied);
    wal.replay(|rec| {
        match rec {
            WalRecord::Interns { base, paths } => rep.declare(base, &paths),
            WalRecord::Batch { generation, events } => {
                rep.apply(generation, &events);
            }
        }
        true
    })?;
    let gaps = rep.gaps();
    let (engine, strings, events_applied) = rep.into_parts();
    Ok(Recovered {
        engine,
        strings,
        events_applied,
        gaps,
    })
}

impl DaemonHandle {
    /// The socket path clients should connect to.
    #[must_use]
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// A snapshot of the pipeline counters.
    #[must_use]
    pub fn stats(&self) -> DaemonStats {
        self.shared.metrics.snapshot_view()
    }

    /// A snapshot of the full telemetry registry — every counter, gauge,
    /// and stage-latency histogram the daemon and its engine maintain.
    /// The same data a client gets from the wire protocol's `metrics`
    /// query, without needing a connection.
    #[must_use]
    pub fn metrics(&self) -> RegistrySnapshot {
        self.shared.metrics.touch_uptime();
        self.shared.metrics.registry.snapshot()
    }

    /// Blocks until the daemon exits (a client sent
    /// [`ClientFrame::Shutdown`], or [`DaemonHandle::shutdown`] ran on
    /// another thread).
    pub fn wait(mut self) -> DaemonStats {
        self.join_all();
        let stats = self.shared.metrics.snapshot_view();
        let _ = std::fs::remove_file(&self.socket_path);
        stats
    }

    /// Gracefully stops the daemon: in-flight batches are applied, a
    /// final snapshot is written, and all threads join.
    pub fn shutdown(mut self) -> DaemonStats {
        self.shared.begin_shutdown();
        self.join_all();
        let stats = self.shared.metrics.snapshot_view();
        let _ = std::fs::remove_file(&self.socket_path);
        stats
    }

    /// Kills the daemon abruptly: pending work is dropped and **no**
    /// final snapshot is written, simulating a crash. Recovery must come
    /// from the last periodic snapshot on disk.
    pub fn kill(mut self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        self.shared.begin_shutdown();
        self.join_all();
        let _ = std::fs::remove_file(&self.socket_path);
    }

    fn join_all(&mut self) {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.actor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        if self.listener.is_some() || self.batcher.is_some() || self.actor.is_some() {
            self.shared.kill.store(true, Ordering::SeqCst);
            self.shared.begin_shutdown();
            self.join_all();
            let _ = std::fs::remove_file(&self.socket_path);
        }
    }
}

/// Accept loop: polls the nonblocking listener, spawning one reader
/// thread per connection, until shutdown or kill is raised. Exiting
/// drops this thread's channel senders, which is half of the
/// disconnect cascade (conn readers hold the other half).
fn run_listener(
    listener: &UnixListener,
    shared: &Arc<Shared>,
    ingest_tx: &Sender<Ingest>,
    control_tx: &Sender<Control>,
    read_buffer: usize,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.kill.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let conn = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                shared.metrics.connections.inc();
                tlog!(
                    Level::Debug,
                    "seer_daemon::server",
                    "connection accepted",
                    conn = conn
                );
                if let Ok(dup) = stream.try_clone() {
                    shared.conns.lock().push(dup);
                }
                let shared = Arc::clone(shared);
                let ingest_tx = ingest_tx.clone();
                let control_tx = control_tx.clone();
                thread::spawn(move || {
                    serve_conn(stream, conn, &ingest_tx, &control_tx, &shared, read_buffer);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Sends a flush marker through the pipeline and waits for the engine
/// actor's acknowledgement, returning the connection's applied count.
fn flush_pipeline(conn: u64, ingest_tx: &Sender<Ingest>) -> Result<u64, ()> {
    let (ack_tx, ack_rx) = bounded(1);
    ingest_tx
        .send(Ingest::Flush { conn, ack: ack_tx })
        .map_err(|_| ())?;
    ack_rx.recv().map_err(|_| ())
}

/// When reading and decoding a frame started and how long each took —
/// measured before the frame's trace membership is known, so the spans
/// are recorded retroactively once the trace id is in hand.
#[derive(Clone, Copy)]
struct FrameTiming {
    read_start: Instant,
    read_time: Duration,
    decode_start: Instant,
    decode_time: Duration,
    bytes: usize,
}

/// Reads one client frame, timing the socket read and the decode as
/// separate pipeline stages. The read timing includes waiting for the
/// client, so its tail shows client pauses, not daemon slowness; the
/// decode timing is pure CPU. `Ok(None)` signals a clean end of stream.
///
/// The framing is sniffed from the first byte: [`wire::BINARY_EVENTS_MAGIC`]
/// introduces a v6 binary events frame (read into `scratch`, reused across
/// calls, and decoded without serde); anything else is a JSON line, so
/// v2–v5 clients keep working on the same code path.
fn read_timed_frame(
    r: &mut impl BufRead,
    metrics: &PipelineMetrics,
    scratch: &mut Vec<u8>,
) -> Result<Option<(ClientFrame, FrameTiming)>, WireError> {
    let mut line = String::new();
    loop {
        line.clear();
        let read_start = Instant::now();
        let read_timer = metrics.stage_socket_read.start_timer();
        let first = match r.fill_buf()?.first() {
            Some(&b) => b,
            None => {
                read_timer.stop();
                return Ok(None);
            }
        };
        if first == wire::BINARY_EVENTS_MAGIC {
            let mut header = [0u8; 5];
            r.read_exact(&mut header)?;
            let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
            if len > wire::BINARY_MAX_PAYLOAD {
                return Err(WireError::Format(format!(
                    "binary frame length {len} exceeds cap {}",
                    wire::BINARY_MAX_PAYLOAD
                )));
            }
            scratch.clear();
            scratch.resize(len, 0);
            r.read_exact(scratch)?;
            read_timer.stop();
            let read_time = read_start.elapsed();
            let decode_start = Instant::now();
            let decode_timer = metrics.stage_decode.start_timer();
            let (events, trace_id) = wire::decode_events_binary(scratch)?;
            decode_timer.stop();
            return Ok(Some((
                ClientFrame::Events { events, trace_id },
                FrameTiming {
                    read_start,
                    read_time,
                    decode_start,
                    decode_time: decode_start.elapsed(),
                    bytes: header.len() + len,
                },
            )));
        }
        let n = r.read_line(&mut line)?;
        read_timer.stop();
        let read_time = read_start.elapsed();
        if n == 0 {
            return Ok(None);
        }
        if !line.trim().is_empty() {
            let decode_start = Instant::now();
            let decode_timer = metrics.stage_decode.start_timer();
            let frame = serde_json::from_str(line.trim_end())?;
            decode_timer.stop();
            return Ok(Some((
                frame,
                FrameTiming {
                    read_start,
                    read_time,
                    decode_start,
                    decode_time: decode_start.elapsed(),
                    bytes: n,
                },
            )));
        }
    }
}

/// Records the retroactive `socket_read` → `decode` chain for a traced
/// events frame, returning the decode span's context for the batcher to
/// continue the chain.
fn record_frame_spans(tracer: &Tracer, trace: TraceId, timing: FrameTiming) -> SpanContext {
    let read_ctx = tracer.record_complete(
        "socket_read",
        trace,
        None,
        timing.read_start,
        timing.read_time,
        &[("bytes", timing.bytes.to_string())],
    );
    tracer.record_complete(
        "decode",
        trace,
        Some(read_ctx.span_id),
        timing.decode_start,
        timing.decode_time,
        &[],
    )
}

/// One connection's reader loop. Runs on its own thread; exits on EOF,
/// protocol error, or pipeline disconnect.
fn serve_conn(
    stream: UnixStream,
    conn: u64,
    ingest_tx: &Sender<Ingest>,
    control_tx: &Sender<Control>,
    shared: &Arc<Shared>,
    read_buffer: usize,
) {
    let reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // A buffer that holds a whole frame keeps each frame to one kernel
    // read; see [`DaemonConfig::read_buffer`].
    let mut r = BufReader::with_capacity(read_buffer.max(512), reader);
    let mut w = BufWriter::new(stream);
    let mut scratch = Vec::new();
    loop {
        let (frame, timing) = match read_timed_frame(&mut r, &shared.metrics, &mut scratch) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(WireError::Format(m)) => {
                tlog!(
                    Level::Warn,
                    "seer_daemon::server",
                    "protocol error on connection",
                    conn = conn,
                    error = m.as_str(),
                );
                let _ = wire::write_frame(&mut w, &DaemonFrame::Error { message: m });
                let _ = w.flush();
                break;
            }
            Err(WireError::Io(_)) => break,
        };
        match frame {
            ClientFrame::Hello { version, .. } => {
                // v2 differs only by the absence of trace stamps and the
                // Dump query, so older clients remain fully functional.
                let reply = if (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                    DaemonFrame::Welcome {
                        version: WIRE_VERSION,
                    }
                } else {
                    DaemonFrame::Error {
                        message: format!(
                            "wire version mismatch: daemon speaks {MIN_WIRE_VERSION}..={WIRE_VERSION}, client sent {version}"
                        ),
                    }
                };
                if wire::write_frame(&mut w, &reply).is_err() || w.flush().is_err() {
                    break;
                }
            }
            ClientFrame::Intern { id, path } => {
                if ingest_tx
                    .send(Ingest::Intern {
                        conn,
                        local: id,
                        path,
                    })
                    .is_err()
                {
                    break;
                }
            }
            ClientFrame::Events { events, trace_id } => {
                let n = events.len() as u64;
                // Depth *before* this send: with a bounded channel the
                // send below blocks rather than exceed capacity, so this
                // observation can never exceed the configured bound.
                shared.metrics.observe_queue_depth(ingest_tx.len());
                shared.metrics.events_received.add(n);
                let ctx = trace_id
                    .map(|t| record_frame_spans(&shared.metrics.tracer, TraceId(t), timing));
                if ingest_tx
                    .send(Ingest::Events { conn, events, ctx })
                    .is_err()
                {
                    break;
                }
            }
            ClientFrame::Flush => match flush_pipeline(conn, ingest_tx) {
                Ok(applied) => {
                    if wire::write_frame(&mut w, &DaemonFrame::Flushed { events: applied }).is_err()
                        || w.flush().is_err()
                    {
                        break;
                    }
                }
                Err(()) => {
                    let _ = wire::write_frame(
                        &mut w,
                        &DaemonFrame::Error {
                            message: "pipeline unavailable".into(),
                        },
                    );
                    let _ = w.flush();
                    break;
                }
            },
            ClientFrame::Query { query, trace_id } => match run_query(
                conn,
                query,
                trace_id,
                ingest_tx,
                control_tx,
                &shared.metrics.tracer,
            ) {
                // An in-band error (e.g. an unanswerable History query)
                // is an answer about *this query*, not a connection
                // failure: report it and keep serving.
                Ok(QueryResponse::Error { message }) => {
                    if wire::write_frame(&mut w, &DaemonFrame::Error { message }).is_err()
                        || w.flush().is_err()
                    {
                        break;
                    }
                }
                Ok(response) => {
                    if wire::write_frame(&mut w, &DaemonFrame::Answer { response }).is_err()
                        || w.flush().is_err()
                    {
                        break;
                    }
                }
                Err(()) => {
                    let _ = wire::write_frame(
                        &mut w,
                        &DaemonFrame::Error {
                            message: "pipeline unavailable".into(),
                        },
                    );
                    let _ = w.flush();
                    break;
                }
            },
            ClientFrame::Shutdown => {
                tlog!(
                    Level::Info,
                    "seer_daemon",
                    "shutdown requested by client",
                    conn = conn
                );
                // Flush this connection's stream so nothing it sent is
                // lost, acknowledge, then start the global cascade.
                let _ = flush_pipeline(conn, ingest_tx);
                let _ = wire::write_frame(&mut w, &DaemonFrame::ShuttingDown);
                let _ = w.flush();
                shared.begin_shutdown();
                break;
            }
        }
    }
    tlog!(
        Level::Debug,
        "seer_daemon::server",
        "connection closed",
        conn = conn
    );
    let _ = ingest_tx.send(Ingest::ConnClosed { conn });
}

/// Flushes the connection's stream, then forwards the query to the
/// engine actor and waits for its answer.
///
/// A traced query gets a root `query` span covering the whole exchange,
/// with a `flush_wait` child for the pipeline drain; the engine actor
/// hangs its `engine_answer` span (and any recluster it triggers) off
/// the root via the forwarded context.
fn run_query(
    conn: u64,
    query: QueryRequest,
    trace_id: Option<u64>,
    ingest_tx: &Sender<Ingest>,
    control_tx: &Sender<Control>,
    tracer: &Tracer,
) -> Result<seer_trace::wire::QueryResponse, ()> {
    let root = trace_id.map(|t| tracer.span_in("query", TraceId(t), None));
    let ctx = root.as_ref().map(seer_telemetry::Span::context);
    {
        let _flush_span = ctx.map(|c| tracer.child("flush_wait", c));
        flush_pipeline(conn, ingest_tx)?;
    }
    let (reply_tx, reply_rx) = bounded(1);
    control_tx
        .send(Control::Query {
            query,
            ctx,
            reply: reply_tx,
        })
        .map_err(|_| ())?;
    reply_rx.recv().map_err(|_| ())
}
