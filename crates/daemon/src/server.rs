//! The daemon itself: listeners, sharded pipelines, and lifecycle.

use crate::health::{watchdog_check, HealthConfig, ShardBeat, WatchdogConfig, SELF_TENANT};
use crate::hub::{self, HubListener, HubStream, ShardHandle, Shards, SocketProbe};
use crate::pipeline::{self, ActorConfig, DefaultSeed};
use crate::snapshot::DaemonSnapshot;
use crate::stats::{self, DaemonStats, SharedMetrics};
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use seer_core::{PersistError, Replayer, SeerConfig, SeerEngine};
use seer_telemetry::{tlog, Level, RegistrySnapshot, Tracer};
use seer_trace::StringTable;
use seer_wal::{FsyncPolicy, Wal, WalConfig, WalError, WalRecord};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Configuration for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Where to bind the Unix-domain socket.
    pub socket_path: PathBuf,
    /// TCP address to additionally listen on (e.g. `127.0.0.1:7979`;
    /// port `0` picks a free port, reported by
    /// [`DaemonHandle::tcp_addr`]). `None` serves Unix-socket clients
    /// only.
    pub tcp_addr: Option<String>,
    /// Engine shards. Tenants hash across shards; each shard is one
    /// engine actor + batcher pair owning every tenant routed to it.
    /// Clamped to at least 1.
    pub shards: usize,
    /// Where to persist snapshots; `None` disables persistence. This is
    /// the *default* tenant's path — other tenants persist next to it
    /// (`<path>.<tenant>`).
    pub snapshot_path: Option<PathBuf>,
    /// Engine configuration (used only on a cold start; a snapshot's
    /// embedded configuration wins on recovery).
    pub engine: SeerConfig,
    /// Capacity of the bounded ingest and apply channels (per shard).
    /// Producers block when full — this is the backpressure knob.
    pub channel_capacity: usize,
    /// Target events per engine batch.
    pub batch_max: usize,
    /// How long the batcher waits for more events before flushing a
    /// partial batch.
    pub batch_max_wait: Duration,
    /// Start a background recluster after this many applied events.
    /// `0` disables periodic reclustering entirely; queries still
    /// compute a clustering on demand.
    pub recluster_every: u64,
    /// Force a full shared-neighbor recount after this many consecutive
    /// incremental reclusterings. Between full recounts the worker
    /// maintains pair counts from the dirty-row delta of each batch —
    /// bit-identical to a full recount, but proportional to what
    /// changed. `0` never forces a full recount.
    pub recluster_full_every: u64,
    /// Snapshot after this many applied events. `0` disables periodic
    /// snapshots; the final snapshot on graceful shutdown is still
    /// written whenever `snapshot_path` is set.
    pub snapshot_every: u64,
    /// Engine actor idle tick (stale-work folding, kill-flag polling).
    pub tick: Duration,
    /// Nominal size, in bytes, assumed for every file when answering
    /// hoard queries (the daemon has no investigator measuring real
    /// sizes; a uniform model keeps selections deterministic).
    pub file_size: u64,
    /// Shards for the shared-neighbor counting phase of reclustering.
    /// The clustering is bit-identical for any value; more threads only
    /// shorten the count phase. Clamped to at least 1.
    pub recluster_threads: usize,
    /// Spans retained by the flight-recorder ring (oldest overwritten
    /// first). `0` disables tracing entirely.
    pub trace_capacity: usize,
    /// Spans lasting at least this long are auto-promoted to the
    /// structured event log.
    pub slow_span: Duration,
    /// Where to dump the flight recorder (JSON lines) when the daemon
    /// exits, gracefully or by kill. `None` skips the on-exit dump; the
    /// panic-hook dump to stderr happens regardless.
    pub flight_path: Option<PathBuf>,
    /// Directory for the write-ahead log. `None` runs without a WAL:
    /// a kill loses everything since the last snapshot. This is the
    /// *default* tenant's directory — other tenants log to a sibling
    /// directory (`<dir>-<tenant>`).
    pub wal_dir: Option<PathBuf>,
    /// When the WAL syncs to disk. [`FsyncPolicy::Always`] makes every
    /// acknowledged batch durable; the default interval policy bounds
    /// loss to the window instead of paying an fsync per batch.
    pub wal_fsync: FsyncPolicy,
    /// Rotate WAL segments once they exceed this many bytes.
    pub wal_segment_bytes: u64,
    /// Fault injection (tests only): fail every WAL append for
    /// `wal_fail_tenant` once its append count reaches this value.
    pub wal_fail_after: Option<u64>,
    /// Which tenant `wal_fail_after` targets; `None` means the default
    /// tenant.
    pub wal_fail_tenant: Option<String>,
    /// Point-in-time restore: discard every batch past this generation
    /// (applied-event count) before starting. Requires `wal_dir`.
    /// Applies to the default tenant's log.
    pub restore_to: Option<u64>,
    /// Cadence of background quality evaluations (live miss-free hoard
    /// size, SEER vs shadow-LRU). `Duration::ZERO` disables the quality
    /// plane entirely — no evaluator worker, no shadow LRU on the apply
    /// path, no postmortem capture.
    pub eval_every: Duration,
    /// Simulated-disconnection window the evaluator scores against, in
    /// trace seconds (default: one day, the paper's canonical
    /// disconnection scale).
    pub eval_window_secs: u64,
    /// Byte budget for the evaluator's coverage-at-budget and
    /// time-to-first-miss numbers.
    pub eval_budget: u64,
    /// Entry cap of the shadow-LRU comparator (bounds its memory).
    pub shadow_lru_cap: usize,
    /// Capacity of each connection's socket read buffer. Size it to the
    /// largest expected events frame so a frame arrives in one kernel
    /// read; a buffer smaller than the frame forces mid-frame refills,
    /// which is exactly the `socket_read` p99 outlier small-frame
    /// benchmarks used to show.
    pub read_buffer: usize,
    /// Master switch for the fleet observability plane: per-tenant
    /// instrument twins, health scoring, SLO burn alerts, and the
    /// self-watchdog thread.
    pub fleet_observability: bool,
    /// SLO error budget: the tolerated bad-op fraction (hoard misses
    /// plus WAL-dropped events, over events applied plus dropped).
    pub slo_miss_rate: f64,
    /// Fast SLO burn window (sensitive, quick to fire and resolve).
    pub burn_fast_window: Duration,
    /// Slow SLO burn window (suppresses short blips).
    pub burn_slow_window: Duration,
    /// Burn-rate multiple of the SLO budget above which the `slo-burn`
    /// alert fires (both windows must exceed it; it resolves once the
    /// fast window cools).
    pub burn_threshold: f64,
    /// Capacity of the bounded alert ring (resolved alerts are evicted
    /// first). `0` disables alert retention entirely.
    pub alert_ring: usize,
    /// Watchdog check cadence; `Duration::ZERO` disables the watchdog
    /// thread (the rest of the plane still runs).
    pub watchdog_tick: Duration,
    /// Shard heartbeat age above which `_self` reports the shard stalled.
    pub watchdog_stall_after: Duration,
    /// Continuous recluster/eval in-flight time above which `_self`
    /// reports the background worker wedged.
    pub watchdog_wedge_after: Duration,
    /// Unsnapshotted-state age above which `_self` reports periodic
    /// snapshots stale (only meaningful with `snapshot_every > 0`).
    pub watchdog_snapshot_stale_after: Duration,
}

impl DaemonConfig {
    /// A configuration with defaults suitable for tests and local use.
    #[must_use]
    pub fn new(socket_path: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket_path: socket_path.into(),
            tcp_addr: None,
            shards: 2,
            snapshot_path: None,
            engine: SeerConfig::default(),
            channel_capacity: 256,
            batch_max: 256,
            batch_max_wait: Duration::from_millis(20),
            recluster_every: 50_000,
            recluster_full_every: 16,
            snapshot_every: 20_000,
            tick: Duration::from_millis(50),
            file_size: 1024,
            recluster_threads: 4,
            trace_capacity: 4096,
            slow_span: Duration::from_millis(100),
            flight_path: None,
            wal_dir: None,
            wal_fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
            wal_segment_bytes: 8 * 1024 * 1024,
            wal_fail_after: None,
            wal_fail_tenant: None,
            restore_to: None,
            eval_every: Duration::from_secs(2),
            eval_window_secs: 86_400,
            eval_budget: 1 << 20,
            shadow_lru_cap: 65_536,
            read_buffer: 256 * 1024,
            fleet_observability: true,
            slo_miss_rate: 0.02,
            burn_fast_window: Duration::from_secs(300),
            burn_slow_window: Duration::from_secs(3600),
            burn_threshold: 4.0,
            alert_ring: 256,
            watchdog_tick: Duration::from_millis(250),
            watchdog_stall_after: Duration::from_secs(5),
            watchdog_wedge_after: Duration::from_secs(60),
            watchdog_snapshot_stale_after: Duration::from_secs(300),
        }
    }
}

/// Errors from starting or running a daemon.
#[derive(Debug)]
pub enum DaemonError {
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// The Unix socket path is owned by a live daemon — starting would
    /// steal its socket, so we refuse instead.
    SocketBusy(String),
    /// The snapshot on disk exists but cannot be read.
    Persist(PersistError),
    /// The write-ahead log could not be opened, recovered, or truncated.
    Wal(WalError),
    /// A `restore_to` request that cannot be honored (no WAL configured,
    /// or the requested generation is unreachable).
    Restore(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "daemon I/O error: {e}"),
            DaemonError::SocketBusy(m) => write!(f, "socket busy: {m}"),
            DaemonError::Persist(e) => write!(f, "daemon snapshot error: {e}"),
            DaemonError::Wal(e) => write!(f, "daemon wal error: {e}"),
            DaemonError::Restore(m) => write!(f, "restore failed: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> DaemonError {
        DaemonError::Io(e)
    }
}

impl From<PersistError> for DaemonError {
    fn from(e: PersistError) -> DaemonError {
        DaemonError::Persist(e)
    }
}

impl From<WalError> for DaemonError {
    fn from(e: WalError) -> DaemonError {
        DaemonError::Wal(e)
    }
}

/// State shared by the listeners, connection readers, and the handle.
pub(crate) struct Shared {
    /// Raised to stop accepting and let in-flight work drain (graceful).
    pub(crate) shutdown: AtomicBool,
    /// Raised to abandon everything immediately, skipping the final
    /// snapshot (crash simulation). An `Arc` because the pipeline
    /// threads poll it independently of the rest of the shared state.
    pub(crate) kill: Arc<AtomicBool>,
    pub(crate) metrics: SharedMetrics,
    /// Duplicate handles of every live client socket, so shutdown can
    /// unblock readers parked in `read`.
    pub(crate) conns: Mutex<Vec<HubStream>>,
    pub(crate) next_conn: AtomicU64,
}

impl Shared {
    /// Starts the shutdown cascade: stop accepting, then close every
    /// client socket so readers see EOF and drop their channel senders.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for s in self.conns.lock().drain(..) {
            s.shutdown_both();
        }
    }
}

/// A running daemon. Dropping the handle without calling
/// [`DaemonHandle::shutdown`] kills the pipeline abruptly (no final
/// snapshot) so tests and crashed callers never hang on a join.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    socket_path: PathBuf,
    tcp_addr: Option<SocketAddr>,
    listeners: Vec<JoinHandle<()>>,
    batchers: Vec<JoinHandle<()>>,
    actors: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

/// Entry point: [`Daemon::spawn`] starts the sharded pipeline threads
/// and the socket listeners, returning a [`DaemonHandle`].
pub struct Daemon;

impl Daemon {
    /// Starts a daemon, recovering the default tenant's engine state
    /// from `config.snapshot_path` (damaged primaries fall back to the
    /// previous snapshot, then to a cold start) and replaying the
    /// write-ahead log on top when `config.wal_dir` is set. Other
    /// tenants recover lazily, on first contact.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::SocketBusy`] if a live daemon already
    /// owns the socket path, [`DaemonError::Io`] if a socket cannot be
    /// bound, [`DaemonError::Wal`] for an unrecoverable log, and
    /// [`DaemonError::Restore`] when `config.restore_to` cannot be
    /// honored.
    pub fn spawn(config: DaemonConfig) -> Result<DaemonHandle, DaemonError> {
        // Initialize the event log eagerly so a bad `SEER_LOG_FILE`
        // surfaces at startup — and so recovery warnings are visible.
        seer_telemetry::init_from_env();

        let (mut engine, mut events_applied) = match &config.snapshot_path {
            Some(path) => {
                if let Some(tmp) = crate::snapshot::clean_stale(path) {
                    tlog!(
                        Level::Warn,
                        "seer_daemon",
                        "removed stale snapshot temp file",
                        path = tmp.display().to_string(),
                    );
                }
                let (snap, warnings) = DaemonSnapshot::load_with_fallback(path);
                for warning in &warnings {
                    tlog!(
                        Level::Warn,
                        "seer_daemon",
                        "snapshot recovery degraded",
                        detail = warning.as_str(),
                    );
                }
                match snap {
                    Some(s) => (SeerEngine::from_snapshot(s.engine), s.events_applied),
                    None => (SeerEngine::new(config.engine.clone()), 0),
                }
            }
            None => (SeerEngine::new(config.engine.clone()), 0),
        };

        if config.restore_to.is_some() && config.wal_dir.is_none() {
            return Err(DaemonError::Restore(
                "restore requires a write-ahead log (set wal_dir / --wal-dir)".into(),
            ));
        }

        let mut strings = StringTable::new();
        let mut wal = None;
        if let Some(dir) = &config.wal_dir {
            let (mut w, report) = Wal::open(WalConfig {
                dir: dir.clone(),
                fsync: config.wal_fsync,
                segment_max_bytes: config.wal_segment_bytes,
            })?;
            tlog!(
                Level::Info,
                "seer_daemon",
                "wal recovered",
                dir = dir.display().to_string(),
                segments = report.segments as u64,
                records = report.records,
                last_generation = report.last_generation,
                truncated_bytes = report.truncated_bytes,
                dropped_segments = report.dropped_segments as u64,
            );

            if let Some(target) = config.restore_to {
                // A snapshot newer than the target would smuggle the
                // discarded suffix back in; restoring past it means
                // rebuilding from generation zero, which needs an
                // uncompacted log.
                if events_applied > target {
                    if w.compacted_through() > 0 {
                        return Err(DaemonError::Restore(format!(
                            "generation {target} unreachable: the snapshot is at generation \
                             {events_applied} and the log is compacted through {}",
                            w.compacted_through()
                        )));
                    }
                    engine = SeerEngine::new(config.engine.clone());
                    events_applied = 0;
                }
                let achieved = w.truncate_after(target)?;
                tlog!(
                    Level::Info,
                    "seer_daemon",
                    "wal truncated for restore",
                    target = target,
                    achieved = achieved,
                );
            }

            let recovered = replay_wal(&w, engine, events_applied)?;
            if recovered.gaps > 0 {
                let message = format!(
                    "wal does not connect to the recovered snapshot \
                     ({} generation gaps)",
                    recovered.gaps
                );
                if config.restore_to.is_some() {
                    return Err(DaemonError::Restore(message));
                }
                tlog!(
                    Level::Warn,
                    "seer_daemon",
                    "wal replay incomplete",
                    detail = message.as_str(),
                );
            }
            engine = recovered.engine;
            strings = recovered.strings;
            events_applied = recovered.events_applied;

            if let Some(target) = config.restore_to {
                // Publish the restored state as the snapshot immediately,
                // so a newer snapshot on disk can never resurrect the
                // history the truncation just discarded.
                if let Some(path) = &config.snapshot_path {
                    let snap = DaemonSnapshot {
                        engine: engine.snapshot(),
                        events_applied,
                    };
                    snap.write_atomic(path)?;
                }
                tlog!(
                    Level::Info,
                    "seer_daemon",
                    "restored to generation",
                    target = target,
                    events_applied = events_applied,
                );
            }
            wal = Some(w);
        }

        // One registry per daemon: pipeline and engine metrics share it,
        // and every instance (parallel tests included) stays isolated.
        let tracer = Tracer::new(config.trace_capacity, config.slow_span);
        seer_telemetry::register_flight_recorder("daemon", &tracer);
        let metrics = stats::new_shared_full(tracer, config.alert_ring);
        engine.attach_telemetry(&metrics.registry);

        // Reap the socket path only when it is provably dead. A path a
        // live daemon owns refuses the start instead of being stolen
        // out from under it.
        match hub::probe_unix_socket(&config.socket_path) {
            SocketProbe::Live { version } => {
                let spoken = version.map_or_else(String::new, |v| format!(" speaking wire v{v}"));
                return Err(DaemonError::SocketBusy(format!(
                    "a live daemon{spoken} already owns {}",
                    config.socket_path.display()
                )));
            }
            SocketProbe::Stale => {
                tlog!(
                    Level::Warn,
                    "seer_daemon",
                    "reaped stale socket file",
                    path = config.socket_path.display().to_string(),
                );
                let _ = std::fs::remove_file(&config.socket_path);
            }
            SocketProbe::Absent => {}
        }
        let unix_listener = UnixListener::bind(&config.socket_path)?;
        unix_listener.set_nonblocking(true)?;

        let mut listeners = vec![HubListener::Unix(unix_listener)];
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp_addr {
            let tcp = TcpListener::bind(addr)?;
            tcp.set_nonblocking(true)?;
            tcp_addr = Some(tcp.local_addr()?);
            listeners.push(HubListener::Tcp(tcp));
        }

        tlog!(
            Level::Info,
            "seer_daemon",
            "daemon started",
            socket = config.socket_path.display().to_string(),
            tcp = tcp_addr.map_or_else(|| "off".to_string(), |a| a.to_string()),
            shards = config.shards.max(1) as u64,
            recovered_events = events_applied,
        );

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            kill: Arc::new(AtomicBool::new(false)),
            metrics,
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        });

        // Per-shard channel pairs, created before the threads so the
        // routing table exists first (the default tenant's seed goes to
        // whichever shard it hashes to).
        let shard_count = config.shards.max(1);
        let mut handles = Vec::with_capacity(shard_count);
        let mut plumbing = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (ingest_tx, ingest_rx) = bounded(config.channel_capacity);
            let (apply_tx, apply_rx) = bounded(config.channel_capacity);
            let (control_tx, control_rx) = bounded(16);
            handles.push(ShardHandle {
                ingest_tx,
                control_tx,
            });
            plumbing.push((ingest_rx, apply_tx, apply_rx, control_rx));
        }
        let shards = Arc::new(Shards { handles });
        let default_shard = shards.index_for(pipeline::DEFAULT_TENANT);
        let mut seed = Some(DefaultSeed {
            engine,
            strings,
            events_applied,
            wal,
        });

        let mut batchers = Vec::with_capacity(shard_count);
        let mut actors = Vec::with_capacity(shard_count);
        // One beat per shard: the actor stamps it, the watchdog reads it.
        let beats: Vec<Arc<ShardBeat>> = (0..shard_count)
            .map(|_| Arc::new(ShardBeat::new()))
            .collect();
        for (i, (ingest_rx, apply_tx, apply_rx, control_rx)) in plumbing.into_iter().enumerate() {
            let batcher = {
                let ingest_rx = ingest_rx.clone();
                let kill = Arc::clone(&shared.kill);
                let batch_max = config.batch_max;
                let batch_max_wait = config.batch_max_wait;
                let flush_timer = shared.metrics.stage_batcher_flush.clone();
                let tracer = shared.metrics.tracer.clone();
                thread::spawn(move || {
                    pipeline::run_batcher(
                        batch_max,
                        batch_max_wait,
                        ingest_rx,
                        apply_tx,
                        flush_timer,
                        tracer,
                        kill,
                    );
                })
            };
            batchers.push(batcher);

            let actor_cfg = ActorConfig {
                snapshot_path: config.snapshot_path.clone(),
                recluster_every: config.recluster_every,
                recluster_full_every: config.recluster_full_every,
                snapshot_every: config.snapshot_every,
                tick: config.tick,
                file_size: config.file_size,
                recluster_threads: config.recluster_threads,
                flight_path: config.flight_path.clone(),
                engine: config.engine.clone(),
                wal_dir: config.wal_dir.clone(),
                wal_fsync: config.wal_fsync,
                wal_segment_bytes: config.wal_segment_bytes,
                wal_fail_after: config.wal_fail_after,
                wal_fail_tenant: config.wal_fail_tenant.clone(),
                eval_every: config.eval_every,
                eval_window_secs: config.eval_window_secs,
                eval_budget: config.eval_budget,
                shadow_lru_cap: config.shadow_lru_cap,
                health: HealthConfig {
                    enabled: config.fleet_observability,
                    slo_miss_rate: config.slo_miss_rate,
                    fast_window: config.burn_fast_window,
                    slow_window: config.burn_slow_window,
                    burn_threshold: config.burn_threshold,
                },
                channel_capacity: config.channel_capacity,
            };
            let shard_seed = if i == default_shard {
                seed.take()
            } else {
                None
            };
            let metrics = Arc::clone(&shared.metrics);
            let kill = Arc::clone(&shared.kill);
            let beat = Arc::clone(&beats[i]);
            // `ingest_rx` doubles as a depth probe for Health queries;
            // the actor never receives from it.
            let depth_probe = ingest_rx;
            actors.push(thread::spawn(move || {
                pipeline::run_engine_actor(
                    shard_seed,
                    actor_cfg,
                    apply_rx,
                    control_rx,
                    depth_probe,
                    metrics,
                    kill,
                    beat,
                );
            }));
        }

        let watchdog = if config.fleet_observability && config.watchdog_tick > Duration::ZERO {
            let wcfg = WatchdogConfig {
                tick: config.watchdog_tick,
                stall_after: config.watchdog_stall_after,
                wedge_after: config.watchdog_wedge_after,
                snapshot_stale_after: config.watchdog_snapshot_stale_after,
            };
            let shared = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("seer-watchdog".into())
                    .spawn(move || run_watchdog(&shared, &beats, &wcfg))?,
            )
        } else {
            None
        };

        let listener_threads = listeners
            .into_iter()
            .map(|listener| {
                let shared = Arc::clone(&shared);
                let shards = Arc::clone(&shards);
                let read_buffer = config.read_buffer;
                thread::spawn(move || {
                    hub::run_listener(&listener, &shared, &shards, read_buffer);
                })
            })
            .collect();

        Ok(DaemonHandle {
            shared,
            socket_path: config.socket_path,
            tcp_addr,
            listeners: listener_threads,
            batchers,
            actors,
            watchdog,
        })
    }
}

/// The daemon self-watchdog loop: every tick, evaluate each shard's
/// beat against the thresholds and drive the corresponding `_self`
/// alerts. Exits when shutdown or kill is raised (so a graceful
/// shutdown waits at most one tick for it).
fn run_watchdog(shared: &Shared, beats: &[Arc<ShardBeat>], cfg: &WatchdogConfig) {
    while !(shared.shutdown.load(Ordering::SeqCst) || shared.kill.load(Ordering::SeqCst)) {
        for (i, beat) in beats.iter().enumerate() {
            for f in watchdog_check(i, beat, cfg) {
                shared
                    .metrics
                    .alert(SELF_TENANT, &f.kind, f.firing, || f.message.clone());
            }
        }
        thread::sleep(cfg.tick);
    }
}

/// Engine state reconstructed from a snapshot base plus a WAL replay.
struct Recovered {
    engine: SeerEngine,
    strings: StringTable,
    events_applied: u64,
    /// Generation discontinuities seen during replay; non-zero means the
    /// log does not connect to the base state (e.g. the WAL was enabled
    /// after the snapshotted history had already accumulated).
    gaps: u64,
}

/// Replays the whole log on top of `engine` (already caught up through
/// `events_applied` events). Batches at or below that watermark are
/// skipped, so a snapshot newer than part of the log replays cleanly.
/// The returned string table is rebuilt from the log's intern records —
/// segments are self-contained, so even a compacted log declares every
/// path it references.
fn replay_wal(wal: &Wal, engine: SeerEngine, events_applied: u64) -> Result<Recovered, WalError> {
    let mut rep = Replayer::new(engine, StringTable::new(), events_applied);
    wal.replay(|rec| {
        match rec {
            WalRecord::Interns { base, paths } => rep.declare(base, &paths),
            WalRecord::Batch { generation, events } => {
                rep.apply(generation, &events);
            }
        }
        true
    })?;
    let gaps = rep.gaps();
    let (engine, strings, events_applied) = rep.into_parts();
    Ok(Recovered {
        engine,
        strings,
        events_applied,
        gaps,
    })
}

impl DaemonHandle {
    /// The socket path clients should connect to.
    #[must_use]
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// The bound TCP address, when `tcp_addr` was configured. With port
    /// `0` in the config this is where the kernel actually put us.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// A snapshot of the pipeline counters.
    #[must_use]
    pub fn stats(&self) -> DaemonStats {
        self.shared.metrics.snapshot_view()
    }

    /// A snapshot of the full telemetry registry — every counter, gauge,
    /// and stage-latency histogram the daemon and its engine maintain.
    /// The same data a client gets from the wire protocol's `metrics`
    /// query, without needing a connection.
    #[must_use]
    pub fn metrics(&self) -> RegistrySnapshot {
        self.shared.metrics.touch_uptime();
        self.shared.metrics.registry.snapshot()
    }

    /// Blocks until the daemon exits (a client sent
    /// [`ClientFrame::Shutdown`](seer_trace::wire::ClientFrame::Shutdown),
    /// or [`DaemonHandle::shutdown`] ran on another thread).
    pub fn wait(mut self) -> DaemonStats {
        self.join_all();
        let stats = self.shared.metrics.snapshot_view();
        let _ = std::fs::remove_file(&self.socket_path);
        stats
    }

    /// Gracefully stops the daemon: in-flight batches are applied, a
    /// final snapshot is written, and all threads join.
    pub fn shutdown(mut self) -> DaemonStats {
        self.shared.begin_shutdown();
        self.join_all();
        let stats = self.shared.metrics.snapshot_view();
        let _ = std::fs::remove_file(&self.socket_path);
        stats
    }

    /// Kills the daemon abruptly: pending work is dropped and **no**
    /// final snapshot is written, simulating a crash. Recovery must come
    /// from the last periodic snapshot on disk.
    pub fn kill(mut self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        self.shared.begin_shutdown();
        self.join_all();
        let _ = std::fs::remove_file(&self.socket_path);
    }

    fn join_all(&mut self) {
        for h in self.listeners.drain(..) {
            let _ = h.join();
        }
        for h in self.batchers.drain(..) {
            let _ = h.join();
        }
        for h in self.actors.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        if !(self.listeners.is_empty() && self.batchers.is_empty() && self.actors.is_empty()) {
            self.shared.kill.store(true, Ordering::SeqCst);
            self.shared.begin_shutdown();
            self.join_all();
            let _ = std::fs::remove_file(&self.socket_path);
        }
    }
}
