//! A streaming ingestion daemon for SEER (§4.2's external observer as a
//! long-running service).
//!
//! The paper's SEER runs as user-level daemons fed by an in-kernel trace
//! stream; this crate is the repo's equivalent — scaled from one machine
//! to a fleet. A connection hub accepts [`seer_trace::TraceEvent`]
//! streams over Unix-domain *and* TCP sockets (the protocol of
//! [`seer_trace::wire`]); the v7+ handshake names a tenant, and frames
//! route by tenant to a sharded pool of engine actors, each shard owning
//! one independent SEER instance + WAL + quality plane per tenant:
//!
//! ```text
//!  unix ─┐                          ┌─► shard 0 ─► batcher ─► engine actor (tenants A, D, …)
//!        ├─► accept ─► conn readers ┼─► shard 1 ─► batcher ─► engine actor (tenants B, E, …)
//!  tcp ──┘    (1 thread/conn,       └─► shard N ─► batcher ─► engine actor (…)
//!              route by tenant)          (bounded ingest + apply channels per shard)
//! ```
//!
//! Design properties, mirroring the paper's constraints on an
//! always-running observer (§4.2, §5.3):
//!
//! - **Backpressure, not buffering.** Both channels are bounded; a slow
//!   engine stalls producers all the way back to the client sockets. The
//!   deepest queue depth ever observed is reported in
//!   [`DaemonStats::max_queue_depth`] and can never exceed the
//!   configured capacity.
//! - **Batching.** The observer's per-event cost is what made SEER's
//!   overhead noticeable; the batcher coalesces frames into batches of
//!   up to `batch_max` events so engine locks and table lookups amortize.
//! - **Crash safety.** The engine's knowledge is periodically written
//!   with an atomic temp-file-and-rename snapshot. With a write-ahead
//!   log configured ([`DaemonConfig::wal_dir`]), every acknowledged
//!   batch is also appended to a segmented, checksummed log *before* it
//!   reaches the engine; a killed daemon recovers as snapshot + WAL
//!   replay, so under [`seer_wal::FsyncPolicy::Always`] nothing
//!   acknowledged is lost, and under an interval policy the loss window
//!   is bounded. Without a WAL, recovery falls back to the latest
//!   complete snapshot alone. The log also enables point-in-time
//!   restore ([`DaemonConfig::restore_to`]) and the wire protocol's
//!   `History` query.
//! - **Online queries.** Hoard selection, cluster summaries, stats, and
//!   health probes are answered on the same socket, after an implicit
//!   flush of the querying connection's stream — so an online hoard
//!   query equals an offline replay of the same events. Per-tenant
//!   queries see only their tenant; the `Fleet` query fans out across
//!   shards and merges.
//! - **Blast-radius isolation.** A hostile or broken client (garbage
//!   bytes, oversized frames, mid-frame disconnects) kills only its own
//!   connection, counted in `seer_daemon_connection_errors_total`; a
//!   tenant whose WAL faults (e.g. ENOSPC) stops being acknowledged and
//!   reports unhealthy, without perturbing other tenants.
//! - **Fleet observability.** Every hot-path instrument has a
//!   per-tenant twin (labeled series under `seer_daemon_tenant_*`,
//!   resolved once per tenant so the apply path never re-interns
//!   labels); a health scorer folds each tenant's signals into a 0–100
//!   score with multi-window SLO burn-rate alerts, and a watchdog
//!   thread alerts on the daemon itself (pseudo-tenant `_self`) when a
//!   shard stalls, a background worker wedges, or snapshots go stale.
//!   The v8 `Alerts` query reads the bounded alert ring.

#![warn(missing_docs)]

mod client;
mod health;
mod hub;
mod pipeline;
mod quality;
mod server;
mod snapshot;
mod stats;

pub use client::DaemonClient;
pub use server::{Daemon, DaemonConfig, DaemonError, DaemonHandle};
pub use snapshot::DaemonSnapshot;
pub use stats::DaemonStats;
// Re-exported so daemon embedders configure the WAL without a direct
// seer-wal dependency.
pub use seer_wal::{FsyncPolicy, WalError};

#[cfg(test)]
mod tests {
    use super::*;
    use seer_trace::wire::{QueryRequest, QueryResponse};
    use seer_trace::{OpenMode, Pid, TraceBuilder};
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seer-daemon-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn small_trace() -> seer_trace::Trace {
        let mut b = TraceBuilder::new();
        for round in 0..6u32 {
            let pid = Pid(round + 1);
            b.exec(pid, "/usr/bin/cc");
            b.touch(pid, "/home/u/proj/main.c", OpenMode::Read);
            b.touch(pid, "/home/u/proj/defs.h", OpenMode::Read);
            b.exit(pid);
        }
        b.build()
    }

    #[test]
    fn daemon_round_trip_and_graceful_shutdown() {
        let dir = scratch_dir("rt");
        let mut cfg = DaemonConfig::new(dir.join("sock"));
        cfg.snapshot_path = Some(dir.join("db.json"));
        let handle = Daemon::spawn(cfg).expect("spawn");

        let trace = small_trace();
        let mut client = DaemonClient::connect(handle.socket_path(), "test").expect("connect");
        client.send_trace(&trace, 4).expect("send");
        let applied = client.flush().expect("flush");
        assert_eq!(applied, trace.events.len() as u64);

        match client
            .query(QueryRequest::Hoard {
                budget: 1 << 20,
                fresh: true,
            })
            .expect("query")
        {
            QueryResponse::Hoard { files, .. } => {
                assert!(
                    files.iter().any(|f| f.ends_with("main.c")),
                    "hoard includes the project: {files:?}"
                );
            }
            other => panic!("unexpected response: {other:?}"),
        }

        drop(client);
        let stats = handle.shutdown();
        assert_eq!(stats.events_applied, trace.events.len() as u64);
        assert!(dir.join("db.json").exists(), "final snapshot written");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_frame_stops_the_daemon() {
        let dir = scratch_dir("shutfr");
        let cfg = DaemonConfig::new(dir.join("sock"));
        let handle = Daemon::spawn(cfg).expect("spawn");

        let trace = small_trace();
        let mut client = DaemonClient::connect(handle.socket_path(), "test").expect("connect");
        client.send_trace(&trace, 8).expect("send");
        client.shutdown().expect("shutdown handshake");

        let stats = handle.wait();
        assert_eq!(
            stats.events_applied,
            trace.events.len() as u64,
            "flushed before exit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn health_and_stats_queries_answer() {
        let dir = scratch_dir("health");
        let cfg = DaemonConfig::new(dir.join("sock"));
        let handle = Daemon::spawn(cfg).expect("spawn");
        let mut client = DaemonClient::connect(handle.socket_path(), "probe").expect("connect");
        match client.query(QueryRequest::Health).expect("health") {
            QueryResponse::Health { healthy, .. } => assert!(healthy),
            other => panic!("unexpected response: {other:?}"),
        }
        match client.query(QueryRequest::Stats).expect("stats") {
            QueryResponse::Stats { connections, .. } => assert_eq!(connections, 1),
            other => panic!("unexpected response: {other:?}"),
        }
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
