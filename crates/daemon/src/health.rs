//! Per-tenant health scoring and the daemon self-watchdog.
//!
//! The health scorer folds a tenant's quality and pipeline signals into
//! a single 0–100 score, sampled at a throttled cadence off the apply
//! path and on idle ticks:
//!
//! ```text
//! burn    = max(burn_fast, burn_slow)          // miss+drop rate / SLO budget
//! score   = 100
//!         - 40 · [wal fault present]
//!         - 30 · min(1, burn / (2 · burn_threshold))
//!         - 20 · clamp(ingest queue depth / capacity, 0, 1)
//!         - 10 · [evaluator stale: no eval in 4 · eval_every]
//! ```
//!
//! "Bad ops" for the burn gauge are hoard misses (real + auto-detected,
//! from the quality plane's miss log) plus WAL-dropped events — a tenant
//! whose batches are being dropped unacknowledged is burning its error
//! budget even though it records no misses. The SLO burn alert follows
//! the classic multi-window rule: it **fires** when both the fast and
//! slow windows burn above `burn_threshold`, and **resolves** once the
//! fast window drops back below it.
//!
//! The watchdog side ([`ShardBeat`], [`watchdog_check`]) gives every
//! shard actor a set of atomic timestamps it stamps as it runs; a
//! dedicated daemon thread compares them against thresholds and alerts
//! on the daemon itself as pseudo-tenant [`SELF_TENANT`]. Invariants
//! watched:
//!
//! - **liveness**: each actor stamps its heartbeat once per loop
//!   iteration, so a heartbeat older than `stall_after` means the shard
//!   is stuck inside one message (or deadlocked);
//! - **worker progress**: a recluster or eval job continuously in
//!   flight for longer than `wedge_after` means the background worker
//!   is wedged;
//! - **durability freshness**: unsnapshotted state older than
//!   `snapshot_stale_after` means the periodic snapshot trigger stopped
//!   firing.

use seer_telemetry::BurnGauge;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The pseudo-tenant the watchdog alerts under.
pub const SELF_TENANT: &str = "_self";

/// Health-scorer knobs, per daemon (shared by every tenant).
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Master switch for the fleet observability plane: per-tenant
    /// instruments, health scoring, and burn alerts.
    pub enabled: bool,
    /// SLO error budget: the tolerated bad-op (miss + drop) fraction.
    pub slo_miss_rate: f64,
    /// Fast burn window (sensitive, quick to resolve).
    pub fast_window: Duration,
    /// Slow burn window (suppresses blips).
    pub slow_window: Duration,
    /// Burn rate above which the SLO alert fires (both windows).
    pub burn_threshold: f64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            enabled: true,
            slo_miss_rate: 0.02,
            fast_window: Duration::from_secs(300),
            slow_window: Duration::from_secs(3600),
            burn_threshold: 4.0,
        }
    }
}

impl HealthConfig {
    /// Minimum spacing between burn samples: an eighth of the fast
    /// window, clamped to 50 ms..1 s so shrunken test windows still get
    /// several samples and production windows don't sample needlessly.
    #[must_use]
    pub fn sample_gap(&self) -> Duration {
        (self.fast_window / 8).clamp(Duration::from_millis(50), Duration::from_secs(1))
    }
}

/// Retained health-score history per tenant (sparkline length).
const SCORE_SPARK_CAP: usize = 48;

/// The signals one health observation folds together.
#[derive(Debug, Clone, Copy)]
pub struct HealthSignals {
    /// Cumulative ops: events applied plus WAL-dropped events.
    pub total_ops: u64,
    /// Cumulative bad ops: hoard misses plus WAL-dropped events.
    pub bad_ops: u64,
    /// A WAL fault is latched on this tenant.
    pub wal_fault: bool,
    /// Ingest queue depth as a fraction of capacity (flush lag proxy).
    pub queue_frac: f64,
    /// The quality evaluator has not run within its expected cadence.
    pub eval_stale: bool,
}

/// The outcome of one observation: the new score and the burn rates the
/// caller turns into alert transitions.
#[derive(Debug, Clone, Copy)]
pub struct HealthVerdict {
    /// The folded 0–100 score.
    pub score: f64,
    /// Burn rate over the fast window.
    pub burn_fast: f64,
    /// Burn rate over the slow window.
    pub burn_slow: f64,
}

/// One tenant's health state: burn gauge, current score, and score
/// history for sparklines.
#[derive(Debug)]
pub struct TenantHealth {
    burn: BurnGauge,
    last_sample: Option<Instant>,
    score: f64,
    spark: std::collections::VecDeque<f64>,
}

impl TenantHealth {
    /// Fresh state at full health.
    #[must_use]
    pub fn new(cfg: &HealthConfig) -> TenantHealth {
        TenantHealth {
            burn: BurnGauge::new(cfg.slow_window.as_secs_f64() * 1.25),
            last_sample: None,
            score: 100.0,
            spark: std::collections::VecDeque::new(),
        }
    }

    /// The score from the most recent observation (100.0 before any).
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Recent score samples, oldest first.
    #[must_use]
    pub fn spark(&self) -> Vec<f64> {
        self.spark.iter().copied().collect()
    }

    /// Folds the signals into a new score, throttled to the configured
    /// sample gap. Returns `None` when throttled (state unchanged).
    pub fn observe(&mut self, cfg: &HealthConfig, sig: &HealthSignals) -> Option<HealthVerdict> {
        let now = Instant::now();
        if let Some(last) = self.last_sample {
            if now.duration_since(last) < cfg.sample_gap() {
                return None;
            }
        }
        self.last_sample = Some(now);
        self.burn.sample(sig.total_ops, sig.bad_ops);
        let burn_fast = self
            .burn
            .burn_over(cfg.fast_window.as_secs_f64(), cfg.slo_miss_rate);
        let burn_slow = self
            .burn
            .burn_over(cfg.slow_window.as_secs_f64(), cfg.slo_miss_rate);

        let mut score = 100.0;
        if sig.wal_fault {
            score -= 40.0;
        }
        let burn = burn_fast.max(burn_slow);
        score -= 30.0 * (burn / (2.0 * cfg.burn_threshold)).min(1.0);
        score -= 20.0 * sig.queue_frac.clamp(0.0, 1.0);
        if sig.eval_stale {
            score -= 10.0;
        }
        self.score = score.clamp(0.0, 100.0);
        if self.spark.len() == SCORE_SPARK_CAP {
            self.spark.pop_front();
        }
        self.spark.push_back(self.score);
        Some(HealthVerdict {
            score: self.score,
            burn_fast,
            burn_slow,
        })
    }
}

/// Watchdog knobs, per daemon.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Check cadence; `Duration::ZERO` disables the watchdog thread.
    pub tick: Duration,
    /// Heartbeat age above which a shard counts as stalled.
    pub stall_after: Duration,
    /// Continuous recluster/eval in-flight time above which the worker
    /// counts as wedged.
    pub wedge_after: Duration,
    /// Unsnapshotted-state age above which durability counts as stale.
    pub snapshot_stale_after: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            tick: Duration::from_millis(250),
            stall_after: Duration::from_secs(5),
            wedge_after: Duration::from_secs(60),
            snapshot_stale_after: Duration::from_secs(300),
        }
    }
}

/// Millisecond timestamps a shard actor stamps as it runs, read by the
/// watchdog thread. All times are milliseconds since the beat's own
/// creation; zero means "never" (heartbeat) or "not currently" (busy
/// and dirty marks).
#[derive(Debug)]
pub struct ShardBeat {
    epoch: Instant,
    heartbeat_ms: AtomicU64,
    recluster_busy_ms: AtomicU64,
    eval_busy_ms: AtomicU64,
    snapshot_dirty_ms: AtomicU64,
}

impl Default for ShardBeat {
    fn default() -> ShardBeat {
        ShardBeat::new()
    }
}

impl ShardBeat {
    /// A beat with no stamps yet.
    #[must_use]
    pub fn new() -> ShardBeat {
        ShardBeat {
            epoch: Instant::now(),
            heartbeat_ms: AtomicU64::new(0),
            recluster_busy_ms: AtomicU64::new(0),
            eval_busy_ms: AtomicU64::new(0),
            snapshot_dirty_ms: AtomicU64::new(0),
        }
    }

    /// Milliseconds since this beat was created, clamped to ≥ 1 so a
    /// stamp is never confused with the "never" sentinel.
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis())
            .unwrap_or(u64::MAX)
            .max(1)
    }

    /// Stamps the liveness heartbeat (one relaxed store; called once per
    /// actor loop iteration).
    pub fn stamp_heartbeat(&self) {
        self.heartbeat_ms.store(self.now_ms(), Ordering::Relaxed);
    }

    /// Marks whether any recluster job is in flight on this shard.
    pub fn set_recluster_busy(&self, busy: bool) {
        Self::mark(&self.recluster_busy_ms, busy, self.now_ms());
    }

    /// Marks whether any eval job is in flight on this shard.
    pub fn set_eval_busy(&self, busy: bool) {
        Self::mark(&self.eval_busy_ms, busy, self.now_ms());
    }

    /// Marks whether any tenant on this shard has unsnapshotted state.
    pub fn set_snapshot_dirty(&self, dirty: bool) {
        Self::mark(&self.snapshot_dirty_ms, dirty, self.now_ms());
    }

    /// Latches `now` on the false→true edge, clears on true→false.
    fn mark(cell: &AtomicU64, active: bool, now: u64) {
        if active {
            let _ = cell.compare_exchange(0, now, Ordering::Relaxed, Ordering::Relaxed);
        } else {
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn age(&self, cell: &AtomicU64) -> Option<Duration> {
        match cell.load(Ordering::Relaxed) {
            0 => None,
            t => Some(Duration::from_millis(self.now_ms().saturating_sub(t))),
        }
    }

    /// Age of the last heartbeat (`None` before the first stamp).
    #[must_use]
    pub fn heartbeat_age(&self) -> Option<Duration> {
        self.age(&self.heartbeat_ms)
    }

    /// How long a recluster job has been continuously in flight.
    #[must_use]
    pub fn recluster_busy_for(&self) -> Option<Duration> {
        self.age(&self.recluster_busy_ms)
    }

    /// How long an eval job has been continuously in flight.
    #[must_use]
    pub fn eval_busy_for(&self) -> Option<Duration> {
        self.age(&self.eval_busy_ms)
    }

    /// How long unsnapshotted state has been pending.
    #[must_use]
    pub fn snapshot_dirty_for(&self) -> Option<Duration> {
        self.age(&self.snapshot_dirty_ms)
    }
}

/// One watchdog violation: the alert kind (scoped to a shard) and its
/// firing condition this check round.
pub struct WatchdogFinding {
    /// Alert kind, e.g. `shard0/stalled`.
    pub kind: String,
    /// Whether the invariant is currently violated.
    pub firing: bool,
    /// Explanation, evaluated lazily by the alert center on firing.
    pub message: String,
}

/// Evaluates every watchdog invariant for one shard. Pure so it can be
/// unit-tested without threads; the daemon's watchdog thread feeds the
/// findings to the alert center under [`SELF_TENANT`].
#[must_use]
pub fn watchdog_check(
    shard: usize,
    beat: &ShardBeat,
    cfg: &WatchdogConfig,
) -> Vec<WatchdogFinding> {
    let mut findings = Vec::with_capacity(4);
    let mut push = |name: &str, age: Option<Duration>, limit: Duration, what: &str| {
        let firing = age.is_some_and(|a| a > limit);
        findings.push(WatchdogFinding {
            kind: format!("shard{shard}/{name}"),
            firing,
            message: format!(
                "shard {shard}: {what} for {:.1}s (limit {:.1}s)",
                age.unwrap_or_default().as_secs_f64(),
                limit.as_secs_f64()
            ),
        });
    };
    push(
        "stalled",
        beat.heartbeat_age(),
        cfg.stall_after,
        "no actor heartbeat",
    );
    push(
        "recluster-wedged",
        beat.recluster_busy_for(),
        cfg.wedge_after,
        "recluster job in flight",
    );
    push(
        "eval-wedged",
        beat.eval_busy_for(),
        cfg.wedge_after,
        "eval job in flight",
    );
    push(
        "snapshot-stale",
        beat.snapshot_dirty_for(),
        cfg.snapshot_stale_after,
        "unsnapshotted state pending",
    );
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> HealthConfig {
        HealthConfig {
            enabled: true,
            slo_miss_rate: 0.02,
            fast_window: Duration::from_millis(400),
            slow_window: Duration::from_secs(2),
            burn_threshold: 4.0,
        }
    }

    #[test]
    fn healthy_tenant_scores_high_and_faulted_burning_tenant_low() {
        let cfg = fast_cfg();
        let mut healthy = TenantHealth::new(&cfg);
        let mut sick = TenantHealth::new(&cfg);
        let mut total = 0;
        for _ in 0..4 {
            total += 1000;
            let _ = healthy.observe(
                &cfg,
                &HealthSignals {
                    total_ops: total,
                    bad_ops: 0,
                    wal_fault: false,
                    queue_frac: 0.0,
                    eval_stale: false,
                },
            );
            let _ = sick.observe(
                &cfg,
                &HealthSignals {
                    total_ops: total,
                    bad_ops: total, // everything dropped
                    wal_fault: true,
                    queue_frac: 0.5,
                    eval_stale: true,
                },
            );
            std::thread::sleep(cfg.sample_gap() + Duration::from_millis(5));
        }
        assert!(healthy.score() > 95.0, "healthy: {}", healthy.score());
        // 40 (wal) + 30 (saturated burn) + 10 (queue) + 10 (eval) gone.
        assert!(sick.score() < 15.0, "sick: {}", sick.score());
        assert!(sick.score() < healthy.score());
        assert!(!sick.spark().is_empty(), "score history recorded");
    }

    #[test]
    fn observation_is_throttled_to_the_sample_gap() {
        let cfg = fast_cfg();
        let mut h = TenantHealth::new(&cfg);
        let sig = HealthSignals {
            total_ops: 10,
            bad_ops: 0,
            wal_fault: false,
            queue_frac: 0.0,
            eval_stale: false,
        };
        assert!(h.observe(&cfg, &sig).is_some(), "first sample always lands");
        assert!(h.observe(&cfg, &sig).is_none(), "back-to-back is throttled");
    }

    #[test]
    fn burn_verdict_crosses_threshold_then_decays() {
        let cfg = fast_cfg();
        let mut h = TenantHealth::new(&cfg);
        let mut verdict = None;
        for i in 0..3 {
            let sig = HealthSignals {
                total_ops: (i + 1) * 100,
                bad_ops: (i + 1) * 100,
                wal_fault: false,
                queue_frac: 0.0,
                eval_stale: false,
            };
            verdict = h.observe(&cfg, &sig).or(verdict);
            std::thread::sleep(cfg.sample_gap() + Duration::from_millis(5));
        }
        let v = verdict.expect("sampled");
        assert!(
            v.burn_fast > cfg.burn_threshold && v.burn_slow > cfg.burn_threshold,
            "all-bad traffic burns both windows: {v:?}"
        );
        // Quiet period: flat samples decay the fast window back to zero.
        std::thread::sleep(cfg.fast_window + Duration::from_millis(50));
        let v = h
            .observe(
                &cfg,
                &HealthSignals {
                    total_ops: 300,
                    bad_ops: 300,
                    wal_fault: false,
                    queue_frac: 0.0,
                    eval_stale: false,
                },
            )
            .expect("sampled");
        assert!(
            v.burn_fast < cfg.burn_threshold,
            "fast burn decays when quiet: {v:?}"
        );
    }

    #[test]
    fn watchdog_flags_stall_wedge_and_snapshot_age() {
        let beat = ShardBeat::new();
        let cfg = WatchdogConfig {
            tick: Duration::from_millis(10),
            stall_after: Duration::from_millis(20),
            wedge_after: Duration::from_millis(20),
            snapshot_stale_after: Duration::from_millis(20),
        };
        // Nothing stamped yet: every age is None, nothing fires.
        assert!(watchdog_check(0, &beat, &cfg).iter().all(|f| !f.firing));

        beat.stamp_heartbeat();
        beat.set_recluster_busy(true);
        beat.set_eval_busy(true);
        beat.set_snapshot_dirty(true);
        std::thread::sleep(Duration::from_millis(40));
        let findings = watchdog_check(3, &beat, &cfg);
        assert_eq!(findings.len(), 4);
        assert!(findings.iter().all(|f| f.firing), "all four invariants");
        assert!(findings.iter().all(|f| f.kind.starts_with("shard3/")));

        // Fresh stamps and cleared marks resolve everything.
        beat.stamp_heartbeat();
        beat.set_recluster_busy(false);
        beat.set_eval_busy(false);
        beat.set_snapshot_dirty(false);
        assert!(watchdog_check(3, &beat, &cfg).iter().all(|f| !f.firing));
    }

    #[test]
    fn busy_mark_latches_the_first_edge() {
        let beat = ShardBeat::new();
        beat.set_recluster_busy(true);
        let first = beat.recluster_busy_for().expect("latched");
        std::thread::sleep(Duration::from_millis(15));
        // Re-marking busy must not reset the latch time.
        beat.set_recluster_busy(true);
        let later = beat.recluster_busy_for().expect("still latched");
        assert!(
            later >= first + Duration::from_millis(10),
            "age kept growing"
        );
    }
}
