//! A synchronous client for the daemon's wire protocol.

use seer_trace::wire::{
    self, ClientFrame, DaemonFrame, QueryRequest, QueryResponse, WireError, WIRE_VERSION,
};
use seer_trace::{RawPathId, StringTable, Trace, TraceEvent};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The client side of either transport the daemon's hub listens on.
enum ClientStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl ClientStream {
    fn try_clone(&self) -> std::io::Result<ClientStream> {
        match self {
            ClientStream::Unix(s) => s.try_clone().map(ClientStream::Unix),
            ClientStream::Tcp(s) => s.try_clone().map(ClientStream::Tcp),
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.write(buf),
            ClientStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Unix(s) => s.flush(),
            ClientStream::Tcp(s) => s.flush(),
        }
    }
}

/// The client's write half, counting every byte that reaches the socket
/// so callers can report wire throughput without re-serializing frames.
struct CountingStream {
    inner: ClientStream,
    bytes: Arc<AtomicU64>,
}

impl Write for CountingStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A connection to a running daemon.
///
/// The client keeps its own [`StringTable`] mirroring what it has
/// declared on the wire: events handed to [`DaemonClient::send_events`]
/// are translated from the caller's id space into the connection's, and
/// any paths the daemon has not seen yet are declared with
/// [`ClientFrame::Intern`] frames first. Event frames are buffered and
/// only flushed to the socket when a reply is needed, so streaming many
/// small batches stays cheap.
pub struct DaemonClient {
    r: BufReader<ClientStream>,
    w: BufWriter<CountingStream>,
    bytes: Arc<AtomicU64>,
    strings: StringTable,
    /// Ids below this are already declared on the wire.
    declared: usize,
    sent: u64,
    /// Stamped on every outgoing events/query frame when set, tying the
    /// daemon-side pipeline spans into one causal trace.
    trace_id: Option<u64>,
    /// Whether the daemon welcomed us at v6 or later, enabling binary
    /// events frames. Handshake, interning, and queries stay JSON.
    binary: bool,
}

impl DaemonClient {
    /// Connects over the Unix socket and performs the hello/welcome
    /// handshake, landing on the daemon's default tenant.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the socket cannot be reached and
    /// [`WireError::Format`] on a version mismatch or malformed reply.
    pub fn connect(socket_path: &Path, client: &str) -> Result<DaemonClient, WireError> {
        let stream = UnixStream::connect(socket_path)?;
        DaemonClient::handshake(ClientStream::Unix(stream), client, None)
    }

    /// Connects over the Unix socket as a named tenant: the v7
    /// handshake carries the tenant id, and everything this connection
    /// sends or asks lands on that tenant's engine.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the socket cannot be reached and
    /// [`WireError::Format`] on a version mismatch or malformed reply.
    pub fn connect_tenant(
        socket_path: &Path,
        client: &str,
        tenant: &str,
    ) -> Result<DaemonClient, WireError> {
        let stream = UnixStream::connect(socket_path)?;
        DaemonClient::handshake(ClientStream::Unix(stream), client, Some(tenant))
    }

    /// Connects over TCP (`tenant: None` lands on the default tenant).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the address cannot be reached and
    /// [`WireError::Format`] on a version mismatch or malformed reply.
    pub fn connect_tcp(
        addr: impl ToSocketAddrs,
        client: &str,
        tenant: Option<&str>,
    ) -> Result<DaemonClient, WireError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response with explicit flushes; Nagle only adds latency.
        let _ = stream.set_nodelay(true);
        DaemonClient::handshake(ClientStream::Tcp(stream), client, tenant)
    }

    fn handshake(
        stream: ClientStream,
        client: &str,
        tenant: Option<&str>,
    ) -> Result<DaemonClient, WireError> {
        let reader = stream.try_clone()?;
        let bytes = Arc::new(AtomicU64::new(0));
        let mut c = DaemonClient {
            r: BufReader::new(reader),
            w: BufWriter::new(CountingStream {
                inner: stream,
                bytes: Arc::clone(&bytes),
            }),
            bytes,
            strings: StringTable::new(),
            declared: 0,
            sent: 0,
            trace_id: None,
            binary: false,
        };
        wire::write_frame(
            &mut c.w,
            &ClientFrame::Hello {
                client: client.to_owned(),
                version: WIRE_VERSION,
                tenant: tenant.map(str::to_owned),
            },
        )?;
        c.w.flush()?;
        match c.read_reply()? {
            DaemonFrame::Welcome { version } => {
                c.binary = version >= 6;
                Ok(c)
            }
            other => Err(WireError::Format(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    /// Whether events are being sent as v6 binary frames (the daemon
    /// welcomed at version 6 or later) rather than JSON lines.
    #[must_use]
    pub fn binary_events(&self) -> bool {
        self.binary
    }

    /// Events sent on this connection so far.
    #[must_use]
    pub fn events_sent(&self) -> u64 {
        self.sent
    }

    /// Bytes written to the socket so far (frames that reached the
    /// kernel; data still sitting in the client's buffer is not counted).
    #[must_use]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Stamps every subsequent events and query frame with `trace_id`,
    /// so the daemon records its pipeline spans under that trace.
    /// `None` stops stamping.
    pub fn set_trace_id(&mut self, trace_id: Option<u64>) {
        self.trace_id = trace_id;
    }

    /// The trace id currently stamped on outgoing frames, if any.
    #[must_use]
    pub fn trace_id(&self) -> Option<u64> {
        self.trace_id
    }

    /// Streams a batch of events whose raw-path ids are relative to
    /// `strings` (the caller's table). New paths are declared first.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the socket write fails.
    pub fn send_events(
        &mut self,
        events: &[TraceEvent],
        strings: &StringTable,
    ) -> Result<(), WireError> {
        let local = &mut self.strings;
        let translated: Vec<TraceEvent> = events
            .iter()
            .map(|ev| TraceEvent {
                kind: ev.kind.map_paths(&mut |p| {
                    let raw = strings.resolve(p).unwrap_or("");
                    local.intern(raw)
                }),
                ..*ev
            })
            .collect();
        for idx in self.declared..self.strings.len() {
            let id = idx as u32;
            let path = self
                .strings
                .resolve(RawPathId(id))
                .expect("freshly interned")
                .to_owned();
            wire::write_frame(&mut self.w, &ClientFrame::Intern { id, path })?;
        }
        self.declared = self.strings.len();
        if self.binary {
            let frame = wire::encode_events_binary(&translated, self.trace_id);
            self.w.write_all(&frame)?;
        } else {
            wire::write_frame(
                &mut self.w,
                &ClientFrame::Events {
                    events: translated,
                    trace_id: self.trace_id,
                },
            )?;
        }
        self.sent += events.len() as u64;
        Ok(())
    }

    /// Streams a whole trace in chunks of `chunk` events.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the socket write fails.
    pub fn send_trace(&mut self, trace: &Trace, chunk: usize) -> Result<(), WireError> {
        for c in trace.events.chunks(chunk.max(1)) {
            self.send_events(c, &trace.strings)?;
        }
        Ok(())
    }

    /// Asks the daemon to apply everything sent so far; returns the
    /// connection's applied-event count.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Format`] if the daemon replies with an error.
    pub fn flush(&mut self) -> Result<u64, WireError> {
        wire::write_frame(&mut self.w, &ClientFrame::Flush)?;
        self.w.flush()?;
        match self.read_reply()? {
            DaemonFrame::Flushed { events } => Ok(events),
            other => Err(WireError::Format(format!(
                "expected Flushed, got {other:?}"
            ))),
        }
    }

    /// Poses a query; the daemon applies this connection's stream first.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Format`] if the daemon replies with an error.
    pub fn query(&mut self, query: QueryRequest) -> Result<QueryResponse, WireError> {
        wire::write_frame(
            &mut self.w,
            &ClientFrame::Query {
                query,
                trace_id: self.trace_id,
            },
        )?;
        self.w.flush()?;
        match self.read_reply()? {
            DaemonFrame::Answer { response } => Ok(response),
            other => Err(WireError::Format(format!("expected Answer, got {other:?}"))),
        }
    }

    /// Fetches the daemon's flight-recorder contents: every retained
    /// span plus the count of spans dropped under contention.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Format`] if the daemon replies with an error
    /// (e.g. it predates the `Dump` query).
    pub fn dump_spans(&mut self) -> Result<(Vec<seer_telemetry::SpanRecord>, u64), WireError> {
        match self.query(QueryRequest::Dump)? {
            QueryResponse::Dump { spans, dropped } => Ok((spans, dropped)),
            other => Err(WireError::Format(format!("expected Dump, got {other:?}"))),
        }
    }

    /// Fetches decision provenance for one canonical path: hoard rank,
    /// cluster memberships, and strongest semantic-distance neighbors.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Format`] if the daemon replies with an error
    /// (e.g. the path was never observed).
    pub fn explain(&mut self, path: &str) -> Result<QueryResponse, WireError> {
        match self.query(QueryRequest::Explain {
            path: path.to_owned(),
        })? {
            r @ QueryResponse::Explain { .. } => Ok(r),
            other => Err(WireError::Format(format!(
                "expected Explain, got {other:?}"
            ))),
        }
    }

    /// Fetches the live quality report (SEER vs shadow-LRU miss-free
    /// hoard size) plus the time-series history behind it.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Format`] if the daemon replies with an error
    /// (e.g. the quality plane is disabled).
    pub fn quality(
        &mut self,
    ) -> Result<(wire::QualityReport, seer_telemetry::SeriesSnapshot), WireError> {
        match self.query(QueryRequest::Quality)? {
            QueryResponse::Quality { report, series } => Ok((report, series)),
            other => Err(WireError::Format(format!(
                "expected Quality, got {other:?}"
            ))),
        }
    }

    /// Fetches the daemon's alert ring: SLO burn, WAL fault, and
    /// watchdog alerts with firing/resolved transitions. `tenant`
    /// filters to one tenant (the watchdog's alerts live under
    /// `_self`); `None` returns the whole fleet's. Also returns the
    /// daemon's alert clock (seconds since start) so callers can render
    /// relative ages.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Format`] if the daemon replies with an
    /// error (e.g. it predates the v8 `Alerts` query).
    pub fn alerts(
        &mut self,
        tenant: Option<&str>,
    ) -> Result<(Vec<seer_telemetry::AlertRecord>, f64), WireError> {
        match self.query(QueryRequest::Alerts {
            tenant: tenant.map(str::to_owned),
        })? {
            QueryResponse::Alerts { alerts, now_secs } => Ok((alerts, now_secs)),
            other => Err(WireError::Format(format!("expected Alerts, got {other:?}"))),
        }
    }

    /// Fetches miss postmortems: all retained ones (`id: None`) or one
    /// by id.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Format`] if the daemon replies with an error
    /// (unknown id, or the quality plane is disabled).
    pub fn misses(&mut self, id: Option<u64>) -> Result<Vec<wire::MissPostmortem>, WireError> {
        match self.query(QueryRequest::Miss { id })? {
            QueryResponse::Misses { postmortems } => Ok(postmortems),
            other => Err(WireError::Format(format!("expected Misses, got {other:?}"))),
        }
    }

    /// Asks the daemon to flush, snapshot, and exit; consumes the client.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Format`] on an unexpected reply.
    pub fn shutdown(mut self) -> Result<(), WireError> {
        wire::write_frame(&mut self.w, &ClientFrame::Shutdown)?;
        self.w.flush()?;
        match self.read_reply()? {
            DaemonFrame::ShuttingDown => Ok(()),
            other => Err(WireError::Format(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }

    fn read_reply(&mut self) -> Result<DaemonFrame, WireError> {
        match wire::read_frame::<_, DaemonFrame>(&mut self.r)? {
            Some(DaemonFrame::Error { message }) => {
                Err(WireError::Format(format!("daemon error: {message}")))
            }
            Some(frame) => Ok(frame),
            None => Err(WireError::Format("connection closed by daemon".into())),
        }
    }
}
