//! The connection hub: listeners, transports, and tenant routing.
//!
//! ```text
//!  Unix listener ──┐                        ┌─► shard 0: batcher ─► engine actor (tenants A, D, …)
//!                  ├─► accept ─► serve_conn ┼─► shard 1: batcher ─► engine actor (tenants B, E, …)
//!  TCP listener ───┘      (route by tenant) └─► shard 2: batcher ─► engine actor (tenants C, F, …)
//! ```
//!
//! Both listeners feed the same accept path; every connection gets a
//! reader thread that routes its frames to one shard chosen by hashing
//! the tenant id from the v7 handshake (pre-v7 clients land on the
//! default tenant). Queries flow to the same shard — except `Fleet`,
//! which fans out to every shard and merges the per-shard answers.
//!
//! A connection is a blast-radius boundary: protocol violations,
//! half-finished handshakes, oversized frames, and mid-frame
//! disconnects kill only the offending connection (counted in
//! `seer_daemon_connection_errors_total`), never the daemon.

use crate::pipeline::{self, Control, Ingest, Tenant};
use crate::server::Shared;
use crate::stats::PipelineMetrics;
use crossbeam::channel::{bounded, Sender};
use seer_telemetry::{tlog, Level, SpanContext, TraceId, Tracer};
use seer_trace::wire::{
    self, ClientFrame, DaemonFrame, QueryRequest, QueryResponse, TenantFleetStat, WireError,
    MIN_WIRE_VERSION, WIRE_VERSION,
};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Longest accepted JSON line, matching the binary frame payload cap —
/// a hostile client cannot make the daemon buffer an unbounded line.
const MAX_LINE_BYTES: usize = wire::BINARY_MAX_PAYLOAD;

/// A client connection over either transport. Reading and writing
/// dispatch to the underlying socket; everything above this enum is
/// transport-agnostic.
pub(crate) enum HubStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl HubStream {
    pub(crate) fn try_clone(&self) -> std::io::Result<HubStream> {
        match self {
            HubStream::Unix(s) => s.try_clone().map(HubStream::Unix),
            HubStream::Tcp(s) => s.try_clone().map(HubStream::Tcp),
        }
    }

    /// Closes both directions so a reader parked in `read` unblocks.
    pub(crate) fn shutdown_both(&self) {
        match self {
            HubStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            HubStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for HubStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            HubStream::Unix(s) => s.read(buf),
            HubStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for HubStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            HubStream::Unix(s) => s.write(buf),
            HubStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            HubStream::Unix(s) => s.flush(),
            HubStream::Tcp(s) => s.flush(),
        }
    }
}

/// A listening socket of either transport, polled nonblocking by the
/// accept loop.
pub(crate) enum HubListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl HubListener {
    fn accept(&self) -> std::io::Result<HubStream> {
        match self {
            HubListener::Unix(l) => l.accept().map(|(s, _)| HubStream::Unix(s)),
            HubListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // The wire protocol is request/response with explicit
                // flushes; Nagle only adds latency here.
                let _ = s.set_nodelay(true);
                Ok(HubStream::Tcp(s))
            }
        }
    }
}

/// What a pre-bind probe of the Unix socket path found.
pub(crate) enum SocketProbe {
    /// A live daemon owns the socket — `version` is what its handshake
    /// answered (None if it accepted the connection but never replied).
    Live { version: Option<u32> },
    /// The file exists but nobody is listening: a stale leftover from a
    /// dead daemon, safe to reap.
    Stale,
    /// No socket file at all.
    Absent,
}

/// Probes a Unix socket path before reaping it: connect, and if a
/// listener answers, attempt a wire handshake. Only a refused
/// connection (or a missing file) licenses deleting the path — a
/// successful connect means a live process owns it, handshake or not.
pub(crate) fn probe_unix_socket(path: &Path) -> SocketProbe {
    match UnixStream::connect(path) {
        Ok(stream) => SocketProbe::Live {
            version: probe_handshake(stream),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => SocketProbe::Absent,
        Err(_) => SocketProbe::Stale,
    }
}

/// Sends a Hello on an already-connected probe stream and reads the
/// reply, under short timeouts so a wedged listener cannot stall
/// startup. Returns the daemon's wire version if a handshake answered.
fn probe_handshake(stream: UnixStream) -> Option<u32> {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    stream
        .set_write_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    let reader = stream.try_clone().ok()?;
    let mut w = BufWriter::new(stream);
    wire::write_frame(
        &mut w,
        &ClientFrame::Hello {
            client: "socket-probe".into(),
            version: WIRE_VERSION,
            tenant: None,
        },
    )
    .ok()?;
    w.flush().ok()?;
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    r.read_line(&mut line).ok()?;
    match serde_json::from_str::<DaemonFrame>(line.trim_end()).ok()? {
        DaemonFrame::Welcome { version } => Some(version),
        _ => None,
    }
}

/// One shard's pipeline entrances.
pub(crate) struct ShardHandle {
    pub ingest_tx: Sender<Ingest>,
    pub control_tx: Sender<Control>,
}

/// The routing table: tenant id → shard, by stable hash. A tenant's
/// whole life (ingest, queries, WAL, snapshots) happens on one shard,
/// so per-tenant ordering needs no cross-shard coordination.
pub(crate) struct Shards {
    pub handles: Vec<ShardHandle>,
}

impl Shards {
    pub(crate) fn index_for(&self, tenant: &str) -> usize {
        let mut h = DefaultHasher::new();
        tenant.hash(&mut h);
        (h.finish() % self.handles.len() as u64) as usize
    }

    fn handle_for(&self, tenant: &str) -> &ShardHandle {
        &self.handles[self.index_for(tenant)]
    }
}

/// Accept loop for one listener: polls nonblocking, spawning one reader
/// thread per connection, until shutdown or kill is raised. Exiting
/// drops this thread's clone of the shard senders, which is part of the
/// disconnect cascade (conn readers hold the rest).
pub(crate) fn run_listener(
    listener: &HubListener,
    shared: &Arc<Shared>,
    shards: &Arc<Shards>,
    read_buffer: usize,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.kill.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let conn = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                shared.metrics.connections.inc();
                tlog!(
                    Level::Debug,
                    "seer_daemon::hub",
                    "connection accepted",
                    conn = conn
                );
                if let Ok(dup) = stream.try_clone() {
                    shared.conns.lock().push(dup);
                }
                let shared = Arc::clone(shared);
                let shards = Arc::clone(shards);
                thread::spawn(move || {
                    serve_conn(stream, conn, &shards, &shared, read_buffer);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Sends a flush marker through the tenant's pipeline and waits for the
/// engine actor's acknowledgement, returning the connection's applied
/// count.
fn flush_pipeline(conn: u64, tenant: &Tenant, ingest_tx: &Sender<Ingest>) -> Result<u64, ()> {
    let (ack_tx, ack_rx) = bounded(1);
    ingest_tx
        .send(Ingest::Flush {
            conn,
            tenant: tenant.clone(),
            ack: ack_tx,
        })
        .map_err(|_| ())?;
    ack_rx.recv().map_err(|_| ())
}

/// When reading and decoding a frame started and how long each took —
/// measured before the frame's trace membership is known, so the spans
/// are recorded retroactively once the trace id is in hand.
#[derive(Clone, Copy)]
struct FrameTiming {
    read_start: Instant,
    read_time: Duration,
    decode_start: Instant,
    decode_time: Duration,
    bytes: usize,
}

/// Reads one newline-terminated line into `line`, refusing to buffer
/// more than `cap` bytes — the bound a hostile client's endless line
/// runs into. Returns the bytes consumed; `0` means clean EOF.
fn read_bounded_line(
    r: &mut impl BufRead,
    line: &mut Vec<u8>,
    cap: usize,
) -> Result<usize, WireError> {
    line.clear();
    let mut total = 0usize;
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            // EOF. A partial unterminated line is handed back as-is; the
            // caller's decode turns a half frame into a Format error.
            return Ok(total);
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |p| p + 1);
        if total + take > cap {
            return Err(WireError::Format(format!(
                "JSON line exceeds {cap}-byte cap"
            )));
        }
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        total += take;
        if newline.is_some() {
            return Ok(total);
        }
    }
}

/// Reads one client frame, timing the socket read and the decode as
/// separate pipeline stages. The read timing includes waiting for the
/// client, so its tail shows client pauses, not daemon slowness; the
/// decode timing is pure CPU. `Ok(None)` signals a clean end of stream.
///
/// The framing is sniffed from the first byte: [`wire::BINARY_EVENTS_MAGIC`]
/// introduces a v6 binary events frame (read into `scratch`, reused across
/// calls, and decoded without serde); anything else is a JSON line, so
/// v2–v5 clients keep working on the same code path. Both paths are
/// length-capped, so no client input can balloon the daemon's memory.
fn read_timed_frame(
    r: &mut impl BufRead,
    metrics: &PipelineMetrics,
    scratch: &mut Vec<u8>,
    line: &mut Vec<u8>,
) -> Result<Option<(ClientFrame, FrameTiming)>, WireError> {
    loop {
        let read_start = Instant::now();
        let read_timer = metrics.stage_socket_read.start_timer();
        let first = match r.fill_buf()?.first() {
            Some(&b) => b,
            None => {
                read_timer.stop();
                return Ok(None);
            }
        };
        if first == wire::BINARY_EVENTS_MAGIC {
            let mut header = [0u8; 5];
            r.read_exact(&mut header)?;
            let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
            if len > wire::BINARY_MAX_PAYLOAD {
                return Err(WireError::Format(format!(
                    "binary frame length {len} exceeds cap {}",
                    wire::BINARY_MAX_PAYLOAD
                )));
            }
            scratch.clear();
            scratch.resize(len, 0);
            r.read_exact(scratch)?;
            read_timer.stop();
            let read_time = read_start.elapsed();
            let decode_start = Instant::now();
            let decode_timer = metrics.stage_decode.start_timer();
            let (events, trace_id) = wire::decode_events_binary(scratch)?;
            decode_timer.stop();
            return Ok(Some((
                ClientFrame::Events { events, trace_id },
                FrameTiming {
                    read_start,
                    read_time,
                    decode_start,
                    decode_time: decode_start.elapsed(),
                    bytes: header.len() + len,
                },
            )));
        }
        let n = read_bounded_line(r, line, MAX_LINE_BYTES)?;
        read_timer.stop();
        let read_time = read_start.elapsed();
        if n == 0 {
            return Ok(None);
        }
        let text = std::str::from_utf8(line)
            .map_err(|e| WireError::Format(format!("frame is not valid UTF-8: {e}")))?;
        if !text.trim().is_empty() {
            let decode_start = Instant::now();
            let decode_timer = metrics.stage_decode.start_timer();
            let frame = serde_json::from_str(text.trim_end())?;
            decode_timer.stop();
            return Ok(Some((
                frame,
                FrameTiming {
                    read_start,
                    read_time,
                    decode_start,
                    decode_time: decode_start.elapsed(),
                    bytes: n,
                },
            )));
        }
    }
}

/// Records the retroactive `socket_read` → `decode` chain for a traced
/// events frame, returning the decode span's context for the batcher to
/// continue the chain.
fn record_frame_spans(tracer: &Tracer, trace: TraceId, timing: FrameTiming) -> SpanContext {
    let read_ctx = tracer.record_complete(
        "socket_read",
        trace,
        None,
        timing.read_start,
        timing.read_time,
        &[("bytes", timing.bytes.to_string())],
    );
    tracer.record_complete(
        "decode",
        trace,
        Some(read_ctx.span_id),
        timing.decode_start,
        timing.decode_time,
        &[],
    )
}

/// One connection's reader loop. Runs on its own thread; exits on EOF,
/// protocol error, or pipeline disconnect. Frames route to the shard of
/// the connection's tenant (the default until a v7 Hello names one).
fn serve_conn(
    stream: HubStream,
    conn: u64,
    shards: &Arc<Shards>,
    shared: &Arc<Shared>,
    read_buffer: usize,
) {
    let reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // A buffer that holds a whole frame keeps each frame to one kernel
    // read; see `DaemonConfig::read_buffer`.
    let mut r = BufReader::with_capacity(read_buffer.max(512), reader);
    let mut w = BufWriter::new(stream);
    let mut scratch = Vec::new();
    let mut line = Vec::new();
    let mut tenant: Tenant = pipeline::default_tenant();
    let mut shard = shards.handle_for(&tenant);
    // The per-tenant twin of `connection_errors`, resolved once per
    // connection (and again on a tenant re-handshake) so the error
    // paths below never intern a label set.
    let mut tenant_conn_errors = shared.metrics.tenant_connection_errors(&tenant);
    loop {
        let (frame, timing) =
            match read_timed_frame(&mut r, &shared.metrics, &mut scratch, &mut line) {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(WireError::Format(m)) => {
                    // A protocol violation (garbage bytes, oversized line,
                    // half a handshake) kills this connection and nothing
                    // else — the counter is the blast-radius witness.
                    shared.metrics.connection_errors.inc();
                    tenant_conn_errors.inc();
                    tlog!(
                        Level::Warn,
                        "seer_daemon::hub",
                        "protocol error on connection",
                        conn = conn,
                        error = m.as_str(),
                    );
                    let _ = wire::write_frame(&mut w, &DaemonFrame::Error { message: m });
                    let _ = w.flush();
                    break;
                }
                Err(WireError::Io(_)) => {
                    // A mid-frame disconnect: not a clean EOF (that is
                    // `Ok(None)` above), so count it as a broken client.
                    shared.metrics.connection_errors.inc();
                    tenant_conn_errors.inc();
                    break;
                }
            };
        match frame {
            ClientFrame::Hello {
                version,
                tenant: hello_tenant,
                ..
            } => {
                // v2 differs only by the absence of trace stamps and the
                // Dump query, v3–v6 by queries and framing; all remain
                // fully functional, pinned to the default tenant.
                let reply = if (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                    if let Some(name) = hello_tenant {
                        let next: Tenant = Arc::from(name.as_str());
                        if next != tenant {
                            // Re-handshake onto a new tenant: retire this
                            // connection's state on the old shard first.
                            let _ = shard.ingest_tx.send(Ingest::ConnClosed {
                                conn,
                                tenant: tenant.clone(),
                            });
                            tenant = next;
                            shard = shards.handle_for(&tenant);
                            tenant_conn_errors = shared.metrics.tenant_connection_errors(&tenant);
                        }
                    }
                    DaemonFrame::Welcome {
                        version: WIRE_VERSION,
                    }
                } else {
                    DaemonFrame::Error {
                        message: format!(
                            "wire version mismatch: daemon speaks {MIN_WIRE_VERSION}..={WIRE_VERSION}, client sent {version}"
                        ),
                    }
                };
                if wire::write_frame(&mut w, &reply).is_err() || w.flush().is_err() {
                    break;
                }
            }
            ClientFrame::Intern { id, path } => {
                if shard
                    .ingest_tx
                    .send(Ingest::Intern {
                        conn,
                        tenant: tenant.clone(),
                        local: id,
                        path,
                    })
                    .is_err()
                {
                    break;
                }
            }
            ClientFrame::Events { events, trace_id } => {
                let n = events.len() as u64;
                // Depth *before* this send: with a bounded channel the
                // send below blocks rather than exceed capacity, so this
                // observation can never exceed the configured bound.
                shared.metrics.observe_queue_depth(shard.ingest_tx.len());
                shared.metrics.events_received.add(n);
                let ctx = trace_id
                    .map(|t| record_frame_spans(&shared.metrics.tracer, TraceId(t), timing));
                if shard
                    .ingest_tx
                    .send(Ingest::Events {
                        conn,
                        tenant: tenant.clone(),
                        events,
                        ctx,
                    })
                    .is_err()
                {
                    break;
                }
            }
            ClientFrame::Flush => match flush_pipeline(conn, &tenant, &shard.ingest_tx) {
                Ok(applied) => {
                    if wire::write_frame(&mut w, &DaemonFrame::Flushed { events: applied }).is_err()
                        || w.flush().is_err()
                    {
                        break;
                    }
                }
                Err(()) => {
                    let _ = wire::write_frame(
                        &mut w,
                        &DaemonFrame::Error {
                            message: "pipeline unavailable".into(),
                        },
                    );
                    let _ = w.flush();
                    break;
                }
            },
            ClientFrame::Query { query, trace_id } => {
                let result = if let QueryRequest::Fleet { top_k } = query {
                    run_fleet_query(conn, &tenant, top_k, shards, shard)
                } else {
                    run_query(
                        conn,
                        &tenant,
                        query,
                        trace_id,
                        shard,
                        &shared.metrics.tracer,
                    )
                };
                match result {
                    // An in-band error (e.g. an unanswerable History
                    // query) is an answer about *this query*, not a
                    // connection failure: report it and keep serving.
                    Ok(QueryResponse::Error { message }) => {
                        if wire::write_frame(&mut w, &DaemonFrame::Error { message }).is_err()
                            || w.flush().is_err()
                        {
                            break;
                        }
                    }
                    Ok(response) => {
                        if wire::write_frame(&mut w, &DaemonFrame::Answer { response }).is_err()
                            || w.flush().is_err()
                        {
                            break;
                        }
                    }
                    Err(()) => {
                        let _ = wire::write_frame(
                            &mut w,
                            &DaemonFrame::Error {
                                message: "pipeline unavailable".into(),
                            },
                        );
                        let _ = w.flush();
                        break;
                    }
                }
            }
            ClientFrame::Shutdown => {
                tlog!(
                    Level::Info,
                    "seer_daemon",
                    "shutdown requested by client",
                    conn = conn
                );
                // Flush this connection's stream so nothing it sent is
                // lost, acknowledge, then start the global cascade.
                let _ = flush_pipeline(conn, &tenant, &shard.ingest_tx);
                let _ = wire::write_frame(&mut w, &DaemonFrame::ShuttingDown);
                let _ = w.flush();
                shared.begin_shutdown();
                break;
            }
        }
    }
    tlog!(
        Level::Debug,
        "seer_daemon::hub",
        "connection closed",
        conn = conn
    );
    // Shut the socket down explicitly: the accept loop parked a
    // duplicate handle in `shared.conns` (for the shutdown cascade), so
    // dropping our halves alone would leave the connection half-open —
    // and a peer mid-write (e.g. the hostile client whose oversized
    // frame got it evicted) would block forever instead of seeing EPIPE.
    w.get_ref().shutdown_both();
    let _ = shard.ingest_tx.send(Ingest::ConnClosed {
        conn,
        tenant: tenant.clone(),
    });
}

/// Flushes the connection's stream, then forwards the query to the
/// tenant's engine actor and waits for its answer.
///
/// A traced query gets a root `query` span covering the whole exchange,
/// with a `flush_wait` child for the pipeline drain; the engine actor
/// hangs its `engine_answer` span (and any recluster it triggers) off
/// the root via the forwarded context.
fn run_query(
    conn: u64,
    tenant: &Tenant,
    query: QueryRequest,
    trace_id: Option<u64>,
    shard: &ShardHandle,
    tracer: &Tracer,
) -> Result<QueryResponse, ()> {
    let root = trace_id.map(|t| tracer.span_in("query", TraceId(t), None));
    let ctx = root.as_ref().map(seer_telemetry::Span::context);
    {
        let _flush_span = ctx.map(|c| tracer.child("flush_wait", c));
        flush_pipeline(conn, tenant, &shard.ingest_tx)?;
    }
    let (reply_tx, reply_rx) = bounded(1);
    shard
        .control_tx
        .send(Control::Query {
            query,
            tenant: tenant.clone(),
            ctx,
            reply: reply_tx,
        })
        .map_err(|_| ())?;
    reply_rx.recv().map_err(|_| ())
}

/// A `Fleet` query fans out to every shard (each answers for its local
/// tenants) and merges: totals sum, rows concatenate, and the merged
/// list is re-ranked by miss rate and cut to `top_k`.
fn run_fleet_query(
    conn: u64,
    tenant: &Tenant,
    top_k: Option<usize>,
    shards: &Shards,
    own_shard: &ShardHandle,
) -> Result<QueryResponse, ()> {
    // Flush this connection's stream first, same as any query, so the
    // aggregate includes everything this connection already sent.
    flush_pipeline(conn, tenant, &own_shard.ingest_tx)?;
    let mut tenants = 0usize;
    let mut total_events = 0u64;
    let mut per_tenant: Vec<TenantFleetStat> = Vec::new();
    for shard in &shards.handles {
        let (reply_tx, reply_rx) = bounded(1);
        shard
            .control_tx
            .send(Control::Query {
                query: QueryRequest::Fleet { top_k },
                tenant: tenant.clone(),
                ctx: None,
                reply: reply_tx,
            })
            .map_err(|_| ())?;
        match reply_rx.recv().map_err(|_| ())? {
            QueryResponse::Fleet {
                tenants: t,
                total_events: e,
                per_tenant: rows,
            } => {
                tenants += t;
                total_events += e;
                per_tenant.extend(rows);
            }
            other => return Ok(other),
        }
    }
    per_tenant.sort_by(|a, b| {
        b.miss_rate
            .total_cmp(&a.miss_rate)
            .then_with(|| a.tenant.cmp(&b.tenant))
    });
    if let Some(k) = top_k {
        per_tenant.truncate(k);
    }
    Ok(QueryResponse::Fleet {
        tenants,
        total_events,
        per_tenant,
    })
}
