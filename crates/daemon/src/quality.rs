//! The live hoard-quality plane: online miss-free evaluation against a
//! simulated disconnection window, with a shadow-LRU comparator.
//!
//! The paper's headline result (§5.1.2, Figure 2) is an *offline* number:
//! replay a trace, pick disconnection periods, and compare each manager's
//! miss-free hoard size against the period's working set. This module
//! computes the same number *online*, continuously, inside the daemon —
//! so an operator watching `seer top` sees how big the hoard would have
//! to be right now to survive a disconnection, and how much of that
//! advantage comes from clustering rather than recency.
//!
//! Mechanically the evaluator mirrors the recluster worker: the actor
//! freezes an immutable [`seer_core::EvalInput`] (activity, clustering,
//! and the always-hoard set), ships it to a dedicated `seer-eval` thread
//! over a bounded channel, and installs the resulting [`QualityReport`]
//! when it polls the done channel. Ingest never blocks on evaluation.
//!
//! The LRU baseline of §6.1 is reproduced by a [`ShadowLru`]: a
//! memory-bounded recency list maintained on the apply path. Feeding its
//! order through the very same [`seer_sim::miss_free_size`] metric makes
//! every report an apples-to-apples "SEER vs LRU" comparison.

use crate::stats::SharedMetrics;
use crossbeam::channel::{bounded, Receiver, Sender};
use seer_core::EvalInput;
use seer_replication::MissLog;
use seer_telemetry::SeriesRing;
use seer_trace::wire::{MissPostmortem, QualityReport};
use seer_trace::{FileId, Timestamp};
use std::collections::{HashMap, HashSet, VecDeque};
use std::thread;
use std::time::{Duration, Instant};

/// Retained miss postmortems (ring; oldest evicted first).
pub(crate) const POSTMORTEM_CAP: usize = 64;

/// How many points each quality series keeps for sparklines.
const SERIES_CAPACITY: usize = 240;

/// A memory-bounded shadow of strict-LRU ordering, maintained on the
/// apply path. Holds at most ~`cap * 5/4` entries: eviction is amortized
/// by letting the map overshoot 25% before trimming back down to `cap`,
/// so the common-case touch is one hash insert.
#[derive(Debug)]
pub(crate) struct ShadowLru {
    last: HashMap<FileId, u64>,
    tick: u64,
    cap: usize,
}

impl ShadowLru {
    pub(crate) fn new(cap: usize) -> ShadowLru {
        ShadowLru {
            last: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    /// Marks `file` most-recently-used.
    pub(crate) fn touch(&mut self, file: FileId) {
        self.tick += 1;
        self.last.insert(file, self.tick);
        if self.last.len() > self.cap + self.cap / 4 {
            self.trim();
        }
    }

    fn trim(&mut self) {
        let mut entries: Vec<(FileId, u64)> = self.last.drain().collect();
        // Keep the `cap` most recent ticks.
        entries.sort_unstable_by_key(|&(_, tick)| std::cmp::Reverse(tick));
        entries.truncate(self.cap);
        self.last = entries.into_iter().collect();
    }

    /// The LRU ranking: most recently used first, deterministic tie-break
    /// (ticks are unique, so this is a total order).
    pub(crate) fn order(&self) -> Vec<FileId> {
        let mut entries: Vec<(FileId, u64)> = self.last.iter().map(|(&f, &t)| (f, t)).collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.into_iter().map(|(f, _)| f).collect()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.last.len()
    }
}

/// Everything the evaluator thread needs, frozen at job-construction
/// time so the report is a pure function of the job.
#[derive(Debug)]
pub(crate) struct EvalJob {
    pub input: EvalInput,
    pub shadow: Vec<FileId>,
    pub window_secs: u64,
    pub budget: u64,
    pub file_size: u64,
    pub generation: u64,
    pub clustering_generation: u64,
    pub misses_by_severity: [u64; 5],
    pub auto_misses: u64,
    pub eval_index: u64,
}

/// A finished evaluation, flowing back to the actor.
#[derive(Debug)]
pub(crate) struct EvalDone {
    pub report: QualityReport,
    pub wall: Duration,
}

/// Computes a quality report from a frozen job. Pure: no clocks, no
/// engine access — an offline caller feeding the same activity, ranking,
/// and window gets bit-identical numbers (the equivalence test relies on
/// this).
pub(crate) fn evaluate(job: &EvalJob) -> QualityReport {
    let refs = job.input.activity().export();
    // "Now" is trace time, not wall time: the latest recorded reference.
    let now = refs
        .iter()
        .map(|(_, r)| r.time.as_secs())
        .max()
        .unwrap_or(0);
    let cutoff = now.saturating_sub(job.window_secs);
    // The simulated disconnection's needed set: every file referenced
    // inside the window. (The tracker keeps last references only, so
    // files whose final touch predates the window are — correctly for a
    // recency-driven forecast — assumed not needed.)
    let needed: HashSet<FileId> = refs
        .iter()
        .filter(|(_, r)| r.time.as_secs() > cutoff)
        .map(|(f, _)| *f)
        .collect();
    let fs = job.file_size.max(1);
    let mut sizes = |_f: FileId| fs;
    let working_set_bytes = seer_sim::working_set_bytes(&needed, &mut sizes);
    let seer_rank = job.input.rank();
    let seer = seer_sim::miss_free_size(&seer_rank, &needed, &mut sizes);
    let lru = seer_sim::miss_free_size(&job.shadow, &needed, &mut sizes);

    // Coverage at the configured budget, and a retrospective
    // time-to-first-miss: had the disconnection started at the window
    // boundary with the budget-prefix hoarded, when would the first
    // unhoarded-but-needed file have been touched? (Approximate — only
    // last references are known — but it is the same approximation for
    // both managers.)
    let budget_files = (job.budget / fs) as usize;
    let assess = |ranking: &[FileId]| -> (f64, Option<u64>) {
        if needed.is_empty() {
            return (1.0, None);
        }
        let prefix: HashSet<FileId> = ranking.iter().take(budget_files).copied().collect();
        let covered = needed.iter().filter(|f| prefix.contains(f)).count();
        let coverage = covered as f64 / needed.len() as f64;
        let first_miss = refs
            .iter()
            .filter(|(f, _)| needed.contains(f) && !prefix.contains(f))
            .map(|(_, r)| r.time.as_secs().saturating_sub(cutoff))
            .min();
        (coverage, first_miss)
    };
    let (seer_coverage, seer_first_miss_secs) = assess(&seer_rank);
    let (lru_coverage, lru_first_miss_secs) = assess(&job.shadow);

    QualityReport {
        generation: job.generation,
        clustering_generation: job.clustering_generation,
        window_secs: job.window_secs,
        budget: job.budget,
        needed_files: needed.len(),
        working_set_bytes,
        seer_missfree_bytes: seer.bytes,
        seer_uncovered: seer.uncovered,
        lru_missfree_bytes: lru.bytes,
        lru_uncovered: lru.uncovered,
        seer_coverage,
        lru_coverage,
        seer_first_miss_secs,
        lru_first_miss_secs,
        misses_by_severity: job.misses_by_severity.to_vec(),
        auto_misses: job.auto_misses,
        evals: job.eval_index,
    }
}

/// The evaluator worker loop: mirrors `run_recluster_worker`. Exits when
/// the job channel closes.
fn run_eval_worker(job_rx: Receiver<EvalJob>, done_tx: Sender<EvalDone>) {
    while let Ok(job) = job_rx.recv() {
        let started = Instant::now();
        let report = evaluate(&job);
        let done = EvalDone {
            report,
            wall: started.elapsed(),
        };
        if done_tx.send(done).is_err() {
            break;
        }
    }
}

/// The actor-side state of the quality plane.
pub(crate) struct QualityState {
    pub job_tx: Option<Sender<EvalJob>>,
    pub done_rx: Receiver<EvalDone>,
    pub worker: Option<thread::JoinHandle<()>>,
    pub shadow: ShadowLru,
    pub series: SeriesRing,
    pub latest: Option<QualityReport>,
    pub evals: u64,
    pub inflight: bool,
    pub last_eval: Option<Instant>,
    pub miss_log: MissLog,
    pub postmortems: VecDeque<MissPostmortem>,
    pub next_miss_id: u64,
    pub last_event_time: Timestamp,
    pub every: Duration,
    pub window_secs: u64,
    pub budget: u64,
}

impl QualityState {
    /// Spawns the evaluator worker and returns a ready state.
    pub(crate) fn spawn(
        every: Duration,
        window_secs: u64,
        budget: u64,
        shadow_cap: usize,
        metrics: &SharedMetrics,
    ) -> QualityState {
        let (job_tx, job_rx) = bounded::<EvalJob>(2);
        let (done_tx, done_rx) = bounded::<EvalDone>(2);
        let worker = thread::Builder::new()
            .name("seer-eval".into())
            .spawn(move || run_eval_worker(job_rx, done_tx))
            .expect("spawn eval worker");
        let mut miss_log = MissLog::new();
        miss_log.attach_telemetry(&metrics.registry);
        QualityState {
            job_tx: Some(job_tx),
            done_rx,
            worker: Some(worker),
            shadow: ShadowLru::new(shadow_cap),
            series: SeriesRing::new(SERIES_CAPACITY),
            latest: None,
            evals: 0,
            inflight: false,
            last_eval: None,
            miss_log,
            postmortems: VecDeque::new(),
            next_miss_id: 0,
            last_event_time: Timestamp::ZERO,
            every,
            window_secs,
            budget,
        }
    }

    /// Whether the cadence timer says another background eval is due.
    pub(crate) fn due(&self) -> bool {
        !self.inflight && self.last_eval.is_none_or(|t| t.elapsed() >= self.every)
    }

    /// Folds a finished report into the series rings and latest slot.
    pub(crate) fn install(&mut self, report: QualityReport) {
        self.series
            .record("seer_missfree_bytes", report.seer_missfree_bytes as f64);
        self.series
            .record("lru_missfree_bytes", report.lru_missfree_bytes as f64);
        self.series
            .record("working_set_bytes", report.working_set_bytes as f64);
        self.series.record("seer_coverage", report.seer_coverage);
        self.series.record("lru_coverage", report.lru_coverage);
        self.series
            .record("needed_files", report.needed_files as f64);
        self.evals = self.evals.max(report.evals);
        self.latest = Some(report);
    }

    /// Retains `pm`, evicting the oldest postmortem beyond the cap.
    pub(crate) fn retain_postmortem(&mut self, pm: MissPostmortem) {
        if self.postmortems.len() >= POSTMORTEM_CAP {
            self.postmortems.pop_front();
        }
        self.postmortems.push_back(pm);
    }

    /// Closes the job channel and joins the worker (graceful epilogue).
    pub(crate) fn shutdown(&mut self) {
        self.job_tx = None;
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_lru_orders_by_recency() {
        let mut s = ShadowLru::new(16);
        s.touch(FileId(1));
        s.touch(FileId(2));
        s.touch(FileId(3));
        s.touch(FileId(1)); // re-touch promotes
        assert_eq!(s.order(), vec![FileId(1), FileId(3), FileId(2)]);
    }

    #[test]
    fn shadow_lru_bounds_memory_by_evicting_oldest() {
        let mut s = ShadowLru::new(8);
        for i in 0..100u32 {
            s.touch(FileId(i));
        }
        assert!(s.len() <= 8 + 8 / 4, "never more than 25% over cap");
        let order = s.order();
        assert_eq!(order[0], FileId(99), "most recent survives");
        assert!(
            !order.contains(&FileId(0)),
            "the cold tail was evicted: {order:?}"
        );
    }

    #[test]
    fn shadow_lru_retouch_rescues_from_eviction() {
        let mut s = ShadowLru::new(4);
        s.touch(FileId(0));
        for i in 1..=4u32 {
            s.touch(FileId(i));
            s.touch(FileId(0)); // keep file 0 hot throughout
        }
        assert!(s.order().contains(&FileId(0)));
    }

    fn job_with(
        input: EvalInput,
        shadow: Vec<FileId>,
        window_secs: u64,
        budget: u64,
        file_size: u64,
    ) -> EvalJob {
        EvalJob {
            input,
            shadow,
            window_secs,
            budget,
            file_size,
            generation: 1,
            clustering_generation: 1,
            misses_by_severity: [0; 5],
            auto_misses: 0,
            eval_index: 1,
        }
    }

    fn engine_with_activity() -> seer_core::SeerEngine {
        use seer_trace::{OpenMode, Pid, TraceBuilder};
        let mut b = TraceBuilder::new();
        let pid = Pid(1);
        // Start past t=0 so the oldest reference still lands strictly
        // inside a saturated (cutoff = 0) window.
        b.advance(Timestamp::from_secs(10));
        b.exec(pid, "/bin/sh");
        b.touch(pid, "/w/old.txt", OpenMode::Read);
        b.advance(Timestamp::from_hours(48));
        b.touch(pid, "/w/recent-a.txt", OpenMode::Read);
        b.touch(pid, "/w/recent-b.txt", OpenMode::Read);
        b.exit(pid);
        use seer_trace::EventSink;
        let trace = b.build();
        let mut engine = seer_core::SeerEngine::new(seer_core::SeerConfig::default());
        for ev in &trace.events {
            engine.on_event(ev, &trace.strings);
        }
        engine.recluster();
        engine
    }

    #[test]
    fn evaluate_windows_the_needed_set_by_trace_time() {
        let engine = engine_with_activity();
        let input = engine.eval_input();
        // A 1-hour window sees only the two recent files (plus whatever
        // the correlator attributes inside it); 1000 hours sees old.txt.
        let narrow = evaluate(&job_with(input.clone(), vec![], 3600, 1 << 20, 1024));
        let wide = evaluate(&job_with(input, vec![], 3600 * 1000, 1 << 20, 1024));
        assert!(narrow.needed_files < wide.needed_files);
        assert!(wide.working_set_bytes > narrow.working_set_bytes);
        assert_eq!(narrow.evals, 1);
    }

    #[test]
    fn evaluate_scores_both_managers_with_the_same_metric() {
        let engine = engine_with_activity();
        let input = engine.eval_input();
        // Shadow order equal to SEER's own ranking must yield identical
        // miss-free bytes: the metric is manager-agnostic.
        let rank = input.rank();
        let report = evaluate(&job_with(input, rank, 3600 * 1000, 1 << 20, 1024));
        assert_eq!(report.seer_missfree_bytes, report.lru_missfree_bytes);
        assert_eq!(report.seer_uncovered, 0, "seer ranks every known file");
        assert!(report.seer_coverage > 0.99);
    }

    #[test]
    fn evaluate_charges_an_empty_shadow_the_working_set() {
        let engine = engine_with_activity();
        let input = engine.eval_input();
        let report = evaluate(&job_with(input, vec![], 3600 * 1000, 1 << 20, 1024));
        // An LRU that has seen nothing covers nothing.
        assert_eq!(report.lru_missfree_bytes, report.working_set_bytes);
        assert_eq!(report.lru_uncovered, report.needed_files);
        assert_eq!(report.lru_coverage, 0.0);
        let first = report
            .lru_first_miss_secs
            .expect("everything needed misses");
        assert!(
            first <= report.window_secs,
            "first miss lands inside the window: {first}"
        );
    }

    #[test]
    fn evaluate_reports_no_first_miss_at_full_coverage() {
        let engine = engine_with_activity();
        let input = engine.eval_input();
        let report = evaluate(&job_with(input, vec![], 3600 * 1000, 1 << 30, 1024));
        assert!(report.seer_coverage > 0.99);
        assert_eq!(report.seer_first_miss_secs, None);
    }
}
