//! The daemon's bounded, batched ingestion pipeline.
//!
//! ```text
//! conn readers ──► ingest (bounded) ──► batcher ──► apply (bounded) ──► engine actor
//!                                                      control (queries) ──┘
//! ```
//!
//! Both channels are bounded: when the engine falls behind, the apply
//! channel fills, the batcher stalls, the ingest channel fills, and the
//! connection readers block in `send` — backpressure propagates all the
//! way to the client sockets instead of growing an unbounded queue.
//!
//! The batcher coalesces consecutive event frames from the same
//! connection into batches of up to `batch_max` events, so a client
//! streaming one event per frame still reaches the engine in large
//! batches. Any ordering-sensitive message (intern declarations, flush
//! markers, connection teardown) flushes the pending batch first, which
//! preserves per-connection order end to end.

use crate::snapshot::DaemonSnapshot;
use crate::stats::SharedMetrics;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use seer_core::SeerEngine;
use seer_telemetry::{tlog, Histogram, Level};
use seer_trace::wire::{QueryRequest, QueryResponse};
use seer_trace::{EventSink, RawPathId, StringTable, TraceEvent};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Messages from connection readers into the pipeline.
pub(crate) enum Ingest {
    /// Declare a connection-local raw-path id.
    Intern { conn: u64, local: u32, path: String },
    /// Events to apply, ids in the connection's local space.
    Events { conn: u64, events: Vec<TraceEvent> },
    /// Ordered marker: everything this connection sent before it must be
    /// applied before `ack` fires with the connection's applied count.
    Flush { conn: u64, ack: Sender<u64> },
    /// The connection hung up; its remap table can be dropped.
    ConnClosed { conn: u64 },
}

/// Batched messages from the batcher to the engine actor.
pub(crate) enum Apply {
    Interns {
        conn: u64,
        entries: Vec<(u32, String)>,
    },
    Batch {
        conn: u64,
        events: Vec<TraceEvent>,
    },
    Flush {
        conn: u64,
        ack: Sender<u64>,
    },
    ConnClosed {
        conn: u64,
    },
}

/// Out-of-band requests answered by the engine actor.
pub(crate) enum Control {
    Query {
        query: QueryRequest,
        reply: Sender<QueryResponse>,
    },
}

/// Tunables the actor needs (a subset of the server's `DaemonConfig`).
pub(crate) struct ActorConfig {
    pub snapshot_path: Option<PathBuf>,
    pub recluster_every: u64,
    pub snapshot_every: u64,
    pub tick: Duration,
    pub file_size: u64,
}

/// Coalesces ingest messages into batches and forwards them downstream.
/// Exits when the ingest channel disconnects (graceful shutdown), the
/// apply channel disconnects (actor died), or `kill` is raised.
pub(crate) fn run_batcher(
    batch_max: usize,
    batch_max_wait: Duration,
    ingest_rx: Receiver<Ingest>,
    apply_tx: Sender<Apply>,
    flush_timer: Histogram,
    kill: Arc<AtomicBool>,
) {
    let mut pending_events: Option<(u64, Vec<TraceEvent>)> = None;
    let mut pending_interns: Option<(u64, Vec<(u32, String)>)> = None;
    // Timing the send captures backpressure: a full apply channel shows
    // up here as batcher-flush latency, not as silent queue growth.
    let flush_events = |p: &mut Option<(u64, Vec<TraceEvent>)>, tx: &Sender<Apply>| -> bool {
        match p.take() {
            Some((conn, events)) => {
                let _t = flush_timer.start_timer();
                tx.send(Apply::Batch { conn, events }).is_ok()
            }
            None => true,
        }
    };
    let flush_interns = |p: &mut Option<(u64, Vec<(u32, String)>)>, tx: &Sender<Apply>| -> bool {
        match p.take() {
            Some((conn, entries)) => tx.send(Apply::Interns { conn, entries }).is_ok(),
            None => true,
        }
    };
    loop {
        if kill.load(Ordering::Relaxed) {
            return;
        }
        match ingest_rx.recv_timeout(batch_max_wait) {
            Ok(Ingest::Intern { conn, local, path }) => {
                if !flush_events(&mut pending_events, &apply_tx) {
                    return;
                }
                match &mut pending_interns {
                    Some((c, entries)) if *c == conn => entries.push((local, path)),
                    _ => {
                        if !flush_interns(&mut pending_interns, &apply_tx) {
                            return;
                        }
                        pending_interns = Some((conn, vec![(local, path)]));
                    }
                }
            }
            Ok(Ingest::Events { conn, mut events }) => {
                if !flush_interns(&mut pending_interns, &apply_tx) {
                    return;
                }
                match &mut pending_events {
                    Some((c, buf)) if *c == conn => buf.append(&mut events),
                    _ => {
                        if !flush_events(&mut pending_events, &apply_tx) {
                            return;
                        }
                        pending_events = Some((conn, events));
                    }
                }
                if pending_events
                    .as_ref()
                    .is_some_and(|(_, b)| b.len() >= batch_max)
                    && !flush_events(&mut pending_events, &apply_tx)
                {
                    return;
                }
            }
            Ok(Ingest::Flush { conn, ack }) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                    || apply_tx.send(Apply::Flush { conn, ack }).is_err()
                {
                    return;
                }
            }
            Ok(Ingest::ConnClosed { conn }) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                    || apply_tx.send(Apply::ConnClosed { conn }).is_err()
                {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let _ = flush_interns(&mut pending_interns, &apply_tx);
                let _ = flush_events(&mut pending_events, &apply_tx);
                return;
            }
        }
    }
}

/// State owned by the engine actor thread.
struct Actor {
    engine: SeerEngine,
    strings: StringTable,
    /// Per-connection translation from wire-local ids to global ids.
    remap: HashMap<u64, Vec<Option<RawPathId>>>,
    /// Per-connection count of events applied (for flush acks).
    per_conn: HashMap<u64, u64>,
    events_applied: u64,
    since_recluster: u64,
    since_snapshot: u64,
    cfg: ActorConfig,
    metrics: SharedMetrics,
}

impl Actor {
    fn apply(&mut self, item: Apply) {
        match item {
            Apply::Interns { conn, entries } => {
                let table = self.remap.entry(conn).or_default();
                for (local, path) in entries {
                    let global = self.strings.intern(&path);
                    let idx = local as usize;
                    if table.len() <= idx {
                        table.resize(idx + 1, None);
                    }
                    table[idx] = Some(global);
                }
            }
            Apply::Batch { conn, events } => {
                let apply_timer = self.metrics.stage_engine_apply.start_timer();
                let n = events.len() as u64;
                let table = self.remap.entry(conn).or_default();
                // Translate into the global id space; an undeclared id is a
                // protocol slip, mapped to a visible sentinel path rather
                // than silently dropped so counts stay consistent.
                let strings = &mut self.strings;
                let remapped: Vec<TraceEvent> = events
                    .into_iter()
                    .map(|ev| TraceEvent {
                        kind: ev.kind.map_paths(&mut |p| {
                            table.get(p.index()).copied().flatten().unwrap_or_else(|| {
                                strings.intern(&format!("/?undeclared/{conn}/{}", p.0))
                            })
                        }),
                        ..ev
                    })
                    .collect();
                self.engine.on_batch(&remapped, &self.strings);
                self.events_applied += n;
                *self.per_conn.entry(conn).or_default() += n;
                self.since_recluster += n;
                self.since_snapshot += n;
                self.metrics.events_applied.add(n);
                self.metrics.batches_applied.inc();
                drop(apply_timer);
                if self.since_recluster >= self.cfg.recluster_every {
                    self.recluster();
                }
                if self.since_snapshot >= self.cfg.snapshot_every {
                    self.write_snapshot();
                }
            }
            Apply::Flush { conn, ack } => {
                let applied = self.per_conn.get(&conn).copied().unwrap_or(0);
                let _ = ack.send(applied);
            }
            Apply::ConnClosed { conn } => {
                self.remap.remove(&conn);
            }
        }
    }

    fn recluster(&mut self) {
        let _t = self.metrics.stage_recluster.start_timer();
        let clusters = self.engine.recluster().len();
        self.since_recluster = 0;
        self.metrics.reclusters.inc();
        tlog!(
            Level::Debug,
            "seer_daemon::pipeline",
            "reclustered",
            clusters = clusters,
            events_applied = self.events_applied,
        );
    }

    fn write_snapshot(&mut self) {
        if let Some(path) = &self.cfg.snapshot_path {
            let _t = self.metrics.stage_snapshot_write.start_timer();
            let snap = DaemonSnapshot {
                engine: self.engine.snapshot(),
                events_applied: self.events_applied,
            };
            match snap.write_atomic(path) {
                Ok(()) => {
                    self.metrics.snapshots.inc();
                    tlog!(
                        Level::Info,
                        "seer_daemon::pipeline",
                        "snapshot written",
                        path = path.display().to_string(),
                        events_applied = self.events_applied,
                    );
                }
                Err(e) => {
                    tlog!(
                        Level::Warn,
                        "seer_daemon::pipeline",
                        "snapshot write failed",
                        path = path.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
        self.since_snapshot = 0;
    }

    fn answer(&mut self, query: QueryRequest, ingest_depth: usize, alive: bool) -> QueryResponse {
        match query {
            QueryRequest::Hoard { budget } => {
                // Recluster so the answer reflects everything applied so
                // far — this makes an online hoard query equivalent to an
                // offline replay followed by recluster + choose_hoard.
                self.recluster();
                let file_size = self.cfg.file_size;
                let sel = self.engine.choose_hoard(budget, &|_| file_size);
                let files = sel
                    .files
                    .iter()
                    .filter_map(|&f| self.engine.paths().resolve(f).map(str::to_owned))
                    .collect();
                QueryResponse::Hoard {
                    files,
                    bytes: sel.bytes,
                    clusters_taken: sel.clusters_taken,
                    clusters_skipped: sel.clusters_skipped,
                }
            }
            QueryRequest::Clusters => {
                if self.engine.clustering().is_none() || self.since_recluster > 0 {
                    self.recluster();
                }
                let clustering = self.engine.clustering().expect("reclustered above");
                let mut largest: Vec<usize> = clustering.clusters.iter().map(|c| c.len()).collect();
                largest.sort_unstable_by(|a, b| b.cmp(a));
                largest.truncate(8);
                QueryResponse::Clusters {
                    count: clustering.len(),
                    largest,
                    files_known: self.engine.paths().len(),
                }
            }
            QueryRequest::Stats => {
                let s = self.metrics.snapshot_view();
                QueryResponse::Stats {
                    events_received: s.events_received,
                    events_applied: s.events_applied,
                    batches_applied: s.batches_applied,
                    max_queue_depth: s.max_queue_depth,
                    reclusters: s.reclusters,
                    snapshots: s.snapshots,
                    connections: s.connections,
                }
            }
            QueryRequest::Metrics => {
                self.metrics.observe_queue_depth(ingest_depth);
                self.metrics.touch_uptime();
                QueryResponse::Metrics {
                    snapshot: self.metrics.registry.snapshot(),
                }
            }
            QueryRequest::Health => QueryResponse::Health {
                healthy: alive,
                events_applied: self.events_applied,
                queue_depth: ingest_depth,
            },
        }
    }
}

/// Runs the engine actor until the apply channel disconnects (graceful
/// shutdown: drain, recluster, snapshot, exit) or `kill` is raised
/// (abrupt: exit immediately *without* snapshotting, leaving the last
/// on-disk snapshot as the recovery point).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_engine_actor(
    engine: SeerEngine,
    events_applied: u64,
    cfg: ActorConfig,
    apply_rx: Receiver<Apply>,
    control_rx: Receiver<Control>,
    ingest_depth: Receiver<Ingest>,
    metrics: SharedMetrics,
    kill: Arc<AtomicBool>,
) {
    let tick = cfg.tick;
    let mut actor = Actor {
        engine,
        strings: StringTable::new(),
        remap: HashMap::new(),
        per_conn: HashMap::new(),
        events_applied,
        since_recluster: 0,
        since_snapshot: 0,
        cfg,
        metrics,
    };
    // A recovered snapshot's applied count seeds the counter so restart
    // does not appear to reset progress.
    actor.metrics.events_applied.set_total(actor.events_applied);
    loop {
        if kill.load(Ordering::Relaxed) {
            // Abrupt death: no snapshot. Recovery resumes from the last
            // one written, which write_atomic guarantees is intact.
            return;
        }
        while let Ok(Control::Query { query, reply }) = control_rx.try_recv() {
            let depth = ingest_depth.len();
            let answer = actor.answer(query, depth, true);
            let _ = reply.send(answer);
        }
        match apply_rx.recv_timeout(tick) {
            Ok(item) => actor.apply(item),
            Err(RecvTimeoutError::Timeout) => {
                // Idle tick: fold in anything pending so queries and
                // snapshots don't go stale during quiet periods.
                if actor.since_recluster > 0 {
                    actor.recluster();
                }
                if actor.since_snapshot > 0 {
                    actor.write_snapshot();
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Graceful epilogue: every producer is gone and the queue is drained.
    while let Ok(Control::Query { query, reply }) = control_rx.try_recv() {
        let answer = actor.answer(query, 0, false);
        let _ = reply.send(answer);
    }
    if actor.since_recluster > 0 {
        actor.recluster();
    }
    actor.write_snapshot();
}
