//! The daemon's bounded, batched ingestion pipeline — one shard of it.
//!
//! ```text
//! conn readers ──► ingest (bounded) ──► batcher ──► apply (bounded) ──► engine actor
//!                                                      control (queries) ──┘
//! ```
//!
//! The hub (`crate::hub`) routes every connection's frames to one shard
//! by tenant id; each shard runs this pipeline. Both channels are
//! bounded: when the engine falls behind, the apply channel fills, the
//! batcher stalls, the ingest channel fills, and the connection readers
//! block in `send` — backpressure propagates all the way to the client
//! sockets instead of growing an unbounded queue.
//!
//! The batcher coalesces consecutive event frames from the same
//! connection into batches of up to `batch_max` events, so a client
//! streaming one event per frame still reaches the engine in large
//! batches. Any ordering-sensitive message (intern declarations, flush
//! markers, connection teardown) flushes the pending batch first, which
//! preserves per-connection order end to end.
//!
//! A shard's engine actor owns one [`TenantState`] per tenant routed to
//! it: a full SEER instance with its own string table, WAL, snapshot
//! path, and quality plane. Tenants other than the default are created
//! lazily on first contact, restoring from their own snapshot + WAL.

use crate::health::{HealthConfig, HealthSignals, ShardBeat, TenantHealth};
use crate::quality::{self, QualityState};
use crate::snapshot::DaemonSnapshot;
use crate::stats::{SharedMetrics, TenantMetrics};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TrySendError};
use seer_core::{
    Clustering, PairCountCache, ReclusterInput, Replayer, SeerConfig, SeerEngine, TableDirty,
};
use seer_telemetry::{tlog, Histogram, Level, SpanContext, Tracer};
use seer_trace::wire::{
    ExplainNeighbor, MissPostmortem, QualityReport, QueryRequest, QueryResponse, TenantFleetStat,
};
use seer_trace::{EventSink, FileId, RawPathId, StringTable, TraceEvent};
use seer_wal::{FsyncPolicy, Wal, WalConfig, WalRecord};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A tenant id as routed by the hub. `Arc<str>` so every message clones
/// a pointer, not a string; pre-v7 connections land on the default.
pub(crate) type Tenant = Arc<str>;

/// The tenant that v2–v6 clients (no tenant in their handshake) map to.
pub(crate) const DEFAULT_TENANT: &str = "default";

/// The default tenant id, ready to stamp on messages.
pub(crate) fn default_tenant() -> Tenant {
    Arc::from(DEFAULT_TENANT)
}

/// A tenant name reduced to `[A-Za-z0-9._-]` for use in file-system
/// paths (snapshot suffixes, WAL directory names). Anything else maps
/// to `_`; an empty or all-dots name becomes a single `_` so it can
/// never alias `.` or `..`.
pub(crate) fn sanitize_tenant(tenant: &str) -> String {
    let mut out: String = tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().all(|c| c == '.') {
        out = "_".into();
    }
    out
}

/// The snapshot path for a tenant. The default tenant keeps the
/// configured path exactly (compatibility with every pre-hub daemon on
/// disk); other tenants get a `.<tenant>` suffixed sibling.
pub(crate) fn tenant_snapshot_path(base: &Path, tenant: &str) -> PathBuf {
    if tenant == DEFAULT_TENANT {
        base.to_path_buf()
    } else {
        PathBuf::from(format!("{}.{}", base.display(), sanitize_tenant(tenant)))
    }
}

/// The WAL directory for a tenant. The default tenant keeps the
/// configured directory; other tenants get a `-<tenant>` suffixed
/// sibling directory (a sibling, not a subdirectory, so the log's own
/// segment scan never sees foreign entries).
pub(crate) fn tenant_wal_dir(base: &Path, tenant: &str) -> PathBuf {
    if tenant == DEFAULT_TENANT {
        base.to_path_buf()
    } else {
        PathBuf::from(format!("{}-{}", base.display(), sanitize_tenant(tenant)))
    }
}

/// Messages from connection readers into the pipeline.
pub(crate) enum Ingest {
    /// Declare a connection-local raw-path id.
    Intern {
        conn: u64,
        tenant: Tenant,
        local: u32,
        path: String,
    },
    /// Events to apply, ids in the connection's local space. `ctx` is
    /// the decode span of a traced frame; downstream stages parent their
    /// spans under it, extending the causal chain.
    Events {
        conn: u64,
        tenant: Tenant,
        events: Vec<TraceEvent>,
        ctx: Option<SpanContext>,
    },
    /// Ordered marker: everything this connection sent before it must be
    /// applied before `ack` fires with the connection's applied count.
    Flush {
        conn: u64,
        tenant: Tenant,
        ack: Sender<u64>,
    },
    /// The connection hung up; its remap table can be dropped.
    ConnClosed { conn: u64, tenant: Tenant },
}

/// Batched messages from the batcher to the engine actor.
pub(crate) enum Apply {
    Interns {
        conn: u64,
        tenant: Tenant,
        entries: Vec<(u32, String)>,
    },
    Batch {
        conn: u64,
        tenant: Tenant,
        events: Vec<TraceEvent>,
        /// The batcher-flush span this batch was coalesced under, if any
        /// frame in it was traced; parents the `engine_apply` span.
        ctx: Option<SpanContext>,
    },
    Flush {
        conn: u64,
        tenant: Tenant,
        ack: Sender<u64>,
    },
    ConnClosed {
        conn: u64,
        tenant: Tenant,
    },
}

/// Out-of-band requests answered by the engine actor.
pub(crate) enum Control {
    Query {
        query: QueryRequest,
        tenant: Tenant,
        /// The connection's `query` root span; the actor's `engine_answer`
        /// span (and any recluster it triggers) parents under it.
        ctx: Option<SpanContext>,
        reply: Sender<QueryResponse>,
    },
}

/// Tunables the actor needs (a subset of the server's `DaemonConfig`).
pub(crate) struct ActorConfig {
    /// Base snapshot path; per-tenant paths derive from it (see
    /// [`tenant_snapshot_path`]).
    pub snapshot_path: Option<PathBuf>,
    pub recluster_every: u64,
    /// Force a full shared-neighbor recount after this many consecutive
    /// incremental reclusterings (defense in depth against cache drift;
    /// `0` never forces one — incremental maintenance is exact either
    /// way, falling back to full on structural change by itself).
    pub recluster_full_every: u64,
    pub snapshot_every: u64,
    pub tick: Duration,
    pub file_size: u64,
    pub recluster_threads: usize,
    /// Where to dump the flight-recorder ring (JSON lines) when the
    /// actor exits, gracefully or by kill. `None` skips the dump.
    pub flight_path: Option<PathBuf>,
    /// Engine configuration for cold starts of lazily created tenants
    /// and the *cold* base of a `History` replay.
    pub engine: SeerConfig,
    /// Base WAL directory; per-tenant directories derive from it (see
    /// [`tenant_wal_dir`]). `None` runs every tenant without a WAL.
    pub wal_dir: Option<PathBuf>,
    pub wal_fsync: FsyncPolicy,
    pub wal_segment_bytes: u64,
    /// Fault injection for tests: after this many successful appends,
    /// every WAL append for `wal_fail_tenant` fails. `None` disables.
    pub wal_fail_after: Option<u64>,
    /// The tenant whose WAL the injection above targets; `None` means
    /// the default tenant.
    pub wal_fail_tenant: Option<String>,
    /// Cadence of background quality evaluations; `Duration::ZERO`
    /// disables the whole quality plane (evaluator, shadow LRU, and
    /// postmortem capture).
    pub eval_every: Duration,
    /// Simulated-disconnection window the evaluator scores against,
    /// in trace seconds.
    pub eval_window_secs: u64,
    /// Byte budget for the evaluator's coverage-at-budget numbers.
    pub eval_budget: u64,
    /// Entry cap of the shadow-LRU comparator.
    pub shadow_lru_cap: usize,
    /// Health-scorer knobs; `health.enabled` is the master switch for
    /// the fleet observability plane (per-tenant instruments, scoring,
    /// burn alerts).
    pub health: HealthConfig,
    /// Capacity of the bounded ingest channel, so queue depth converts
    /// to a 0–1 fraction in health signals.
    pub channel_capacity: usize,
}

/// A frozen reclustering job handed to the background worker. The input
/// is an immutable copy of one tenant engine's neighbor lists and path
/// table; the actor keeps applying batches while the worker computes.
struct ReclusterJob {
    tenant: Tenant,
    input: ReclusterInput,
    /// The neighbor-table delta since the previous job's view (drained
    /// at the same moment `input` was captured), letting the worker
    /// maintain its pair-count cache incrementally. `None` forces a
    /// full recount.
    dirty: Option<TableDirty>,
    /// `events_applied` at snapshot time — the generation the finished
    /// clustering will be tagged with.
    generation: u64,
    /// For a fresh-query-triggered job, the query's `engine_answer` span;
    /// a periodic job has no inbound context and starts its own trace.
    ctx: Option<SpanContext>,
}

/// A finished clustering coming back from the worker. Carries the raw
/// timings instead of recorded spans: the *actor* records the
/// `recluster`/`shard_count` spans at install time, where it knows
/// whether a traced query ended up waiting on this job — an untraced
/// periodic job a fresh query reuses still lands in that query's trace.
struct ReclusterDone {
    tenant: Tenant,
    clustering: Clustering,
    generation: u64,
    /// When the worker started computing.
    started: Instant,
    /// Wall-clock time of the whole computation.
    wall: Duration,
    /// Per-shard duration of the shared-neighbor counting phase.
    shard_seconds: Vec<Duration>,
    /// Offset from `started` at which each counting shard began.
    shard_start_offsets: Vec<Duration>,
    /// Whether the counting phase ran incrementally off the worker's
    /// pair-count cache (vs a full recount).
    incremental: bool,
    /// The context the job was *requested* with, if any.
    ctx: Option<SpanContext>,
}

/// The recluster worker: receives frozen jobs, computes clusterings with
/// the configured shard count, and sends them back. Exits when the job
/// channel disconnects (actor gone) or the done channel does.
///
/// The worker only computes and times; span recording happens on the
/// actor when the result is installed (see [`ReclusterDone`]).
fn run_recluster_worker(
    job_rx: &Receiver<ReclusterJob>,
    done_tx: &Sender<ReclusterDone>,
    threads: usize,
    full_every: u64,
) {
    // Pre-relation pair counts carried between consecutive jobs, keyed
    // by tenant: the queue is FIFO and each job's dirty delta spans
    // exactly the gap to *that tenant's* previous job's view, so each
    // per-tenant cache chain stays valid even when tenants interleave.
    // Every `full_every` incremental runs a tenant's cache is dropped to
    // force a fresh full recount.
    let mut caches: HashMap<Tenant, (Option<PairCountCache>, u64)> = HashMap::new();
    while let Ok(job) = job_rx.recv() {
        let (cache, since_full) = caches.entry(job.tenant.clone()).or_insert((None, 0));
        if full_every > 0 && *since_full >= full_every {
            *cache = None;
        }
        let started = Instant::now();
        let run = job
            .input
            .compute_incremental(threads, job.dirty.as_ref(), cache);
        *since_full = if run.incremental { *since_full + 1 } else { 0 };
        let wall = started.elapsed();
        let done = ReclusterDone {
            tenant: job.tenant,
            clustering: run.clustering,
            generation: job.generation,
            started,
            wall,
            shard_seconds: run.shard_count_seconds,
            shard_start_offsets: run.shard_start_offsets,
            incremental: run.incremental,
            ctx: job.ctx,
        };
        if done_tx.send(done).is_err() {
            return;
        }
    }
}

/// Coalesces ingest messages into batches and forwards them downstream.
/// Exits when the ingest channel disconnects (graceful shutdown), the
/// apply channel disconnects (actor died), or `kill` is raised.
pub(crate) fn run_batcher(
    batch_max: usize,
    batch_max_wait: Duration,
    ingest_rx: Receiver<Ingest>,
    apply_tx: Sender<Apply>,
    flush_timer: Histogram,
    tracer: Tracer,
    kill: Arc<AtomicBool>,
) {
    // A pending batch remembers the first traced frame coalesced into it;
    // the flush span continues that frame's causal chain. Coalescing is
    // keyed by (conn, tenant): conn ids are daemon-unique, but a
    // connection that re-handshakes onto a new tenant must not leak a
    // pending batch across the boundary.
    type PendingEvents = (u64, Tenant, Vec<TraceEvent>, Option<SpanContext>);
    type PendingInterns = (u64, Tenant, Vec<(u32, String)>);
    let mut pending_events: Option<PendingEvents> = None;
    let mut pending_interns: Option<PendingInterns> = None;
    // Timing the send captures backpressure: a full apply channel shows
    // up here as batcher-flush latency, not as silent queue growth.
    let flush_events = |p: &mut Option<PendingEvents>, tx: &Sender<Apply>| -> bool {
        match p.take() {
            Some((conn, tenant, events, ctx)) => {
                let _t = flush_timer.start_timer();
                // The span covers the send, so backpressure blocking is
                // visible on the trace timeline too.
                let span = ctx.map(|c| {
                    let mut s = tracer.child("batcher_flush", c);
                    s.attr("events", events.len());
                    s
                });
                let flush_ctx = span.as_ref().map(seer_telemetry::Span::context);
                tx.send(Apply::Batch {
                    conn,
                    tenant,
                    events,
                    ctx: flush_ctx,
                })
                .is_ok()
            }
            None => true,
        }
    };
    let flush_interns = |p: &mut Option<PendingInterns>, tx: &Sender<Apply>| -> bool {
        match p.take() {
            Some((conn, tenant, entries)) => tx
                .send(Apply::Interns {
                    conn,
                    tenant,
                    entries,
                })
                .is_ok(),
            None => true,
        }
    };
    loop {
        if kill.load(Ordering::Relaxed) {
            return;
        }
        match ingest_rx.recv_timeout(batch_max_wait) {
            Ok(Ingest::Intern {
                conn,
                tenant,
                local,
                path,
            }) => {
                if !flush_events(&mut pending_events, &apply_tx) {
                    return;
                }
                match &mut pending_interns {
                    Some((c, t, entries)) if *c == conn && *t == tenant => {
                        entries.push((local, path));
                    }
                    _ => {
                        if !flush_interns(&mut pending_interns, &apply_tx) {
                            return;
                        }
                        pending_interns = Some((conn, tenant, vec![(local, path)]));
                    }
                }
            }
            Ok(Ingest::Events {
                conn,
                tenant,
                mut events,
                ctx,
            }) => {
                if !flush_interns(&mut pending_interns, &apply_tx) {
                    return;
                }
                match &mut pending_events {
                    Some((c, t, buf, pending_ctx)) if *c == conn && *t == tenant => {
                        buf.append(&mut events);
                        if pending_ctx.is_none() {
                            *pending_ctx = ctx;
                        }
                    }
                    _ => {
                        if !flush_events(&mut pending_events, &apply_tx) {
                            return;
                        }
                        pending_events = Some((conn, tenant, events, ctx));
                    }
                }
                if pending_events
                    .as_ref()
                    .is_some_and(|(_, _, b, _)| b.len() >= batch_max)
                    && !flush_events(&mut pending_events, &apply_tx)
                {
                    return;
                }
            }
            Ok(Ingest::Flush { conn, tenant, ack }) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                    || apply_tx.send(Apply::Flush { conn, tenant, ack }).is_err()
                {
                    return;
                }
            }
            Ok(Ingest::ConnClosed { conn, tenant }) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                    || apply_tx.send(Apply::ConnClosed { conn, tenant }).is_err()
                {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let _ = flush_interns(&mut pending_interns, &apply_tx);
                let _ = flush_events(&mut pending_events, &apply_tx);
                return;
            }
        }
    }
}

/// One tenant's complete engine state: a full SEER instance plus its
/// string table, per-connection remaps, WAL, and quality plane. Each
/// tenant is isolated — a WAL fault or hostile client on one can never
/// reach into another's state.
pub(crate) struct TenantState {
    name: Tenant,
    engine: SeerEngine,
    strings: StringTable,
    /// Per-connection translation from wire-local ids to global ids.
    remap: HashMap<u64, Vec<Option<RawPathId>>>,
    /// Per-connection count of events applied (for flush acks).
    per_conn: HashMap<u64, u64>,
    events_applied: u64,
    since_recluster: u64,
    since_snapshot: u64,
    /// `events_applied` when the installed clustering was snapshotted;
    /// a query is *stale* when this lags the live counter.
    clustering_generation: u64,
    /// Generations of jobs handed to the worker, oldest first. The
    /// worker is FIFO, so completions arrive in this order per tenant.
    inflight: VecDeque<u64>,
    /// A drained dirty delta whose job never reached the worker (full
    /// queue); merged into the next job so the worker's pair-count
    /// cache chain stays unbroken.
    pending_dirty: Option<TableDirty>,
    /// The write-ahead log, when the daemon runs with one. Appended
    /// before each batch reaches the engine; compacted after snapshots.
    wal: Option<Wal>,
    /// Set on the first WAL append/sync failure. A faulted tenant stops
    /// applying (and acknowledging) batches — acknowledged state must
    /// stay replayable — and surfaces the fault in Health answers.
    wal_fault: Option<String>,
    /// Successful appends so far (drives fault injection in tests).
    wal_appends: u64,
    /// The quality plane: evaluator worker, shadow LRU, series rings,
    /// miss log, and retained postmortems. `None` when disabled.
    quality: Option<QualityState>,
    /// Per-tenant instrument handles, resolved (label sets interned)
    /// exactly once here so the apply path only touches atomics.
    tm: TenantMetrics,
    /// Health scorer state: burn gauge, current score, sparkline.
    health: TenantHealth,
    /// Events inside batches dropped unacknowledged under a WAL
    /// fault — they count as "bad ops"
    /// against the SLO burn budget alongside hoard misses.
    dropped_events: u64,
}

/// Recovered state for the default tenant, restored eagerly by the
/// server before the socket binds (so snapshot/WAL/restore errors fail
/// startup instead of surfacing mid-flight).
pub(crate) struct DefaultSeed {
    pub engine: SeerEngine,
    pub strings: StringTable,
    pub events_applied: u64,
    pub wal: Option<Wal>,
}

/// Builds a tenant's state from its on-disk snapshot + WAL, or cold.
/// Lazy-path errors cannot fail a running daemon: a snapshot that will
/// not load falls back (previous snapshot, then cold), and a WAL that
/// will not open or replay leaves the tenant running *without* a log
/// but with `wal_fault` set, so the degradation is visible in Health
/// and the tenant never acknowledges batches it could not make durable.
fn create_tenant_state(name: Tenant, cfg: &ActorConfig, metrics: &SharedMetrics) -> TenantState {
    let (mut engine, mut events_applied) = match &cfg.snapshot_path {
        Some(base) => {
            let path = tenant_snapshot_path(base, &name);
            let _ = crate::snapshot::clean_stale(&path);
            let (snap, warnings) = DaemonSnapshot::load_with_fallback(&path);
            for warning in &warnings {
                tlog!(
                    Level::Warn,
                    "seer_daemon::pipeline",
                    "tenant snapshot recovery degraded",
                    tenant = name.as_ref(),
                    detail = warning.as_str(),
                );
            }
            match snap {
                Some(s) => (SeerEngine::from_snapshot(s.engine), s.events_applied),
                None => (SeerEngine::new(cfg.engine.clone()), 0),
            }
        }
        None => (SeerEngine::new(cfg.engine.clone()), 0),
    };
    let mut strings = StringTable::new();
    let mut wal = None;
    let mut wal_fault = None;
    if let Some(base) = &cfg.wal_dir {
        let dir = tenant_wal_dir(base, &name);
        match Wal::open(WalConfig {
            dir,
            fsync: cfg.wal_fsync,
            segment_max_bytes: cfg.wal_segment_bytes,
        }) {
            Ok((w, _report)) => {
                let mut rep = Replayer::new(engine, StringTable::new(), events_applied);
                let replayed = w.replay(|rec| {
                    match rec {
                        WalRecord::Interns { base, paths } => rep.declare(base, &paths),
                        WalRecord::Batch { generation, events } => {
                            rep.apply(generation, &events);
                        }
                    }
                    true
                });
                let gaps = rep.gaps();
                let (e, s, n) = rep.into_parts();
                engine = e;
                strings = s;
                events_applied = n;
                match replayed {
                    Ok(_) => {
                        if gaps > 0 {
                            tlog!(
                                Level::Warn,
                                "seer_daemon::pipeline",
                                "tenant wal replay incomplete",
                                tenant = name.as_ref(),
                                gaps = gaps,
                            );
                        }
                        wal = Some(w);
                    }
                    Err(err) => {
                        // A log we could not read back is not one we can
                        // safely keep appending to.
                        wal_fault = Some(format!("wal replay failed: {err}"));
                    }
                }
            }
            Err(err) => {
                wal_fault = Some(format!("wal open failed: {err}"));
            }
        }
    }
    engine.attach_telemetry(&metrics.registry);
    let tm = metrics.tenant(&name);
    if events_applied > 0 {
        // A lazily restored tenant's history counts toward the fleet
        // total, same as the default seed's `set_total` at startup.
        metrics.events_applied.add(events_applied);
        tm.events_applied.set_total(events_applied);
    }
    if wal_fault.is_some() {
        metrics.wal_append_errors.inc();
    }
    TenantState {
        name,
        engine,
        strings,
        remap: HashMap::new(),
        per_conn: HashMap::new(),
        events_applied,
        since_recluster: 0,
        since_snapshot: 0,
        clustering_generation: 0,
        inflight: VecDeque::new(),
        pending_dirty: None,
        wal,
        wal_fault,
        wal_appends: 0,
        quality: spawn_quality(cfg, metrics),
        tm,
        health: TenantHealth::new(&cfg.health),
        dropped_events: 0,
    }
}

fn spawn_quality(cfg: &ActorConfig, metrics: &SharedMetrics) -> Option<QualityState> {
    if cfg.eval_every > Duration::ZERO {
        Some(QualityState::spawn(
            cfg.eval_every,
            cfg.eval_window_secs,
            cfg.eval_budget,
            cfg.shadow_lru_cap,
            metrics,
        ))
    } else {
        None
    }
}

/// State owned by one shard's engine actor thread: every tenant routed
/// to this shard, plus the shard's recluster worker channels.
struct Actor {
    tenants: HashMap<Tenant, TenantState>,
    job_tx: Sender<ReclusterJob>,
    done_rx: Receiver<ReclusterDone>,
    cfg: ActorConfig,
    metrics: SharedMetrics,
}

impl Actor {
    /// Creates the tenant's state on first contact (lazy restore from
    /// its snapshot + WAL); a no-op for known tenants.
    fn ensure_tenant(&mut self, tenant: &Tenant) {
        if self.tenants.contains_key(tenant) {
            return;
        }
        tlog!(
            Level::Info,
            "seer_daemon::pipeline",
            "tenant created",
            tenant = tenant.as_ref(),
        );
        let ts = create_tenant_state(tenant.clone(), &self.cfg, &self.metrics);
        self.tenants.insert(tenant.clone(), ts);
        self.metrics.tenants.add(1);
    }

    fn update_inflight_gauge(&self) {
        let total: usize = self.tenants.values().map(|t| t.inflight.len()).sum();
        self.metrics
            .recluster_inflight
            .set(i64::try_from(total).unwrap_or(i64::MAX));
    }

    /// Folds one tenant's live signals into its health score and drives
    /// its `slo-burn` and `wal-fault` alerts. Called from the apply path
    /// (both success and drop) and the idle tick; throttled inside
    /// [`TenantHealth::observe`] so at most one sample lands per gap. A
    /// single branch when the plane is disabled.
    fn observe_tenant_health(&mut self, tenant: &Tenant, ingest_depth: usize) {
        if !self.cfg.health.enabled {
            return;
        }
        let Some(ts) = self.tenants.get_mut(tenant) else {
            return;
        };
        let misses = tenant_misses(ts);
        let eval_stale = ts.quality.as_ref().is_some_and(|q| {
            q.last_eval
                .is_some_and(|t| t.elapsed() > self.cfg.eval_every * 4)
        });
        let queue_frac = if self.cfg.channel_capacity > 0 {
            ingest_depth as f64 / self.cfg.channel_capacity as f64
        } else {
            0.0
        };
        let sig = HealthSignals {
            total_ops: ts.events_applied + ts.dropped_events,
            bad_ops: misses + ts.dropped_events,
            wal_fault: ts.wal_fault.is_some(),
            queue_frac,
            eval_stale,
        };
        let Some(verdict) = ts.health.observe(&self.cfg.health, &sig) else {
            return;
        };
        // Mirror the miss log into the per-tenant counter at sampling
        // cadence (the log is the source of truth; the counter is its
        // scrapeable twin).
        ts.tm.misses.set_total(misses);
        ts.tm.health_score.set(verdict.score.round() as i64);
        let name = ts.name.clone();
        let wal_fault = ts.wal_fault.clone();
        let th = self.cfg.health.burn_threshold;
        // Multi-window burn rule with hysteresis: fire only when both
        // the fast and slow windows burn above threshold, resolve once
        // the fast window cools; in between, leave the alert as is.
        if verdict.burn_fast > th && verdict.burn_slow > th {
            self.metrics.alert(&name, "slo-burn", true, || {
                format!(
                    "error budget burning at {:.1}x (fast) / {:.1}x (slow) the SLO rate \
                     (threshold {th:.1}x)",
                    verdict.burn_fast, verdict.burn_slow
                )
            });
        } else if verdict.burn_fast < th {
            self.metrics.alert(&name, "slo-burn", false, String::new);
        }
        self.metrics
            .alert(&name, "wal-fault", wal_fault.is_some(), || {
                wal_fault.clone().unwrap_or_default()
            });
    }

    /// Publishes this shard's busy/dirty marks for the watchdog: any
    /// recluster generation in flight, any eval job in flight, any
    /// tenant with unsnapshotted state (only meaningful when periodic
    /// snapshots are configured). Edge-latched inside [`ShardBeat`], so
    /// re-marking while busy keeps the original start time.
    fn refresh_beats(&self, beat: &ShardBeat) {
        beat.set_recluster_busy(self.tenants.values().any(|t| !t.inflight.is_empty()));
        beat.set_eval_busy(
            self.tenants
                .values()
                .any(|t| t.quality.as_ref().is_some_and(|q| q.inflight)),
        );
        beat.set_snapshot_dirty(
            self.cfg.snapshot_every > 0 && self.tenants.values().any(|t| t.since_snapshot > 0),
        );
    }

    fn apply(&mut self, item: Apply, depth: usize) {
        match item {
            Apply::Interns {
                conn,
                tenant,
                entries,
            } => {
                self.ensure_tenant(&tenant);
                let ts = self.tenants.get_mut(&tenant).expect("ensured above");
                let table = ts.remap.entry(conn).or_default();
                for (local, path) in entries {
                    let global = ts.strings.intern(&path);
                    let idx = local as usize;
                    if table.len() <= idx {
                        table.resize(idx + 1, None);
                    }
                    table[idx] = Some(global);
                }
            }
            Apply::Batch {
                conn,
                tenant,
                events,
                ctx,
            } => self.apply_batch(conn, &tenant, events, ctx, depth),
            Apply::Flush { conn, tenant, ack } => {
                let ts = self.tenants.get(&tenant);
                if self.cfg.health.enabled {
                    if let Some(ts) = ts {
                        ts.tm.flushes.inc();
                    }
                }
                let applied = ts
                    .and_then(|ts| ts.per_conn.get(&conn).copied())
                    .unwrap_or(0);
                let _ = ack.send(applied);
            }
            Apply::ConnClosed { conn, tenant } => {
                if let Some(ts) = self.tenants.get_mut(&tenant) {
                    ts.remap.remove(&conn);
                }
            }
        }
    }

    fn apply_batch(
        &mut self,
        conn: u64,
        tenant: &Tenant,
        events: Vec<TraceEvent>,
        ctx: Option<SpanContext>,
        depth: usize,
    ) {
        self.ensure_tenant(tenant);
        let apply_timer = self.metrics.stage_engine_apply.start_timer();
        let tenant_apply_start = self.cfg.health.enabled.then(Instant::now);
        let mut span = ctx.map(|c| self.metrics.tracer.child("engine_apply", c));
        let n = events.len() as u64;
        let ts = self.tenants.get_mut(tenant).expect("ensured above");
        if ts.wal_fault.is_some() {
            // A faulted log can no longer record this batch; applying it
            // would hand out state a restart cannot reproduce. Drop it
            // unacknowledged — the client's flush count stops advancing
            // and Health carries the fault.
            self.metrics.wal_dropped_batches.inc();
            ts.dropped_events += n;
            if self.cfg.health.enabled {
                ts.tm.wal_dropped_batches.inc();
            }
            self.observe_tenant_health(tenant, depth);
            return;
        }
        let table = ts.remap.entry(conn).or_default();
        // Translate into the global id space; an undeclared id is a
        // protocol slip, mapped to a visible sentinel path rather
        // than silently dropped so counts stay consistent.
        let strings = &mut ts.strings;
        let remapped: Vec<TraceEvent> =
            events
                .into_iter()
                .map(|ev| TraceEvent {
                    kind: ev.kind.map_paths(&mut |p| {
                        table.get(p.index()).copied().flatten().unwrap_or_else(|| {
                            strings.intern(&format!("/?undeclared/{conn}/{}", p.0))
                        })
                    }),
                    ..ev
                })
                .collect();
        // Durability first: the batch (and the intern deltas that make
        // its ids meaningful) hits the log before the engine, so an
        // acknowledged batch is replayable. WAL time stays inside the
        // engine_apply stage timer — the ingest latency clients
        // experience includes it. A failed append faults the tenant:
        // the batch is dropped rather than applied un-durably.
        if let Some(wal) = ts.wal.as_mut() {
            let parent = span.as_ref().map(seer_telemetry::Span::context);
            let generation = ts.events_applied + n;
            let injected = matches!(self.cfg.wal_fail_after, Some(limit) if ts.wal_appends >= limit)
                && self
                    .cfg
                    .wal_fail_tenant
                    .as_deref()
                    .unwrap_or(DEFAULT_TENANT)
                    == ts.name.as_ref();
            let append_timer = self.metrics.stage_wal_append.start_timer();
            let started = Instant::now();
            let result = if injected {
                Err(format!(
                    "injected append failure (after {} appends)",
                    ts.wal_appends
                ))
            } else {
                wal.append_batch(&ts.strings, generation, &remapped)
                    .map_err(|e| e.to_string())
            };
            drop(append_timer);
            if self.cfg.health.enabled {
                ts.tm.stage_wal_append.observe(started.elapsed());
            }
            match result {
                Ok(out) => {
                    ts.wal_appends += 1;
                    self.metrics.wal_records.add(u64::from(out.records));
                    if self.cfg.health.enabled {
                        ts.tm.wal_records.add(u64::from(out.records));
                    }
                    self.metrics.wal_appended_bytes.add(out.bytes);
                    if out.rotated {
                        self.metrics.wal_rotations.inc();
                    }
                    if let Some(d) = out.fsync {
                        self.metrics.stage_wal_fsync.observe(d);
                    }
                    if let Some(c) = parent {
                        self.metrics.tracer.record_complete(
                            "wal_append",
                            c.trace_id,
                            Some(c.span_id),
                            started,
                            started.elapsed(),
                            &[("bytes", out.bytes.to_string())],
                        );
                    }
                    if out.rotated {
                        self.wal_update_gauges();
                        // Re-borrow after the gauge refresh released it.
                    }
                }
                Err(msg) => {
                    let fault = format!("wal append failed: {msg}");
                    self.metrics.wal_append_errors.inc();
                    self.metrics.wal_dropped_batches.inc();
                    tlog!(
                        Level::Warn,
                        "seer_daemon::pipeline",
                        "wal append failed; tenant faulted",
                        tenant = ts.name.as_ref(),
                        generation = generation,
                        error = msg.as_str(),
                    );
                    ts.wal_fault = Some(fault);
                    ts.dropped_events += n;
                    if self.cfg.health.enabled {
                        ts.tm.wal_dropped_batches.inc();
                    }
                    self.observe_tenant_health(tenant, depth);
                    return;
                }
            }
        }
        let ts = self.tenants.get_mut(tenant).expect("ensured above");
        ts.engine.on_batch(&remapped, &ts.strings);
        quality_ingest(ts, &remapped);
        ts.events_applied += n;
        *ts.per_conn.entry(conn).or_default() += n;
        ts.since_recluster += n;
        ts.since_snapshot += n;
        if self.cfg.health.enabled {
            ts.tm.events_applied.add(n);
            ts.tm.batches_applied.inc();
            if let Some(t0) = tenant_apply_start {
                ts.tm.stage_engine_apply.observe(t0.elapsed());
            }
        }
        let (events_applied, clustering_generation) = (ts.events_applied, ts.clustering_generation);
        self.metrics.events_applied.add(n);
        self.metrics.batches_applied.inc();
        if let Some(s) = &mut span {
            s.attr("events", n);
            s.attr("events_applied", events_applied);
        }
        drop(span);
        drop(apply_timer);
        self.metrics
            .observe_generation_lag(events_applied, clustering_generation);
        self.observe_tenant_health(tenant, depth);
        self.capture_postmortems(tenant);
        self.poll_recluster_done();
        self.poll_eval_done(tenant);
        self.maybe_request_eval(tenant);
        let ts = self.tenants.get(tenant).expect("ensured above");
        if self.cfg.recluster_every > 0
            && ts.since_recluster >= self.cfg.recluster_every
            && ts.inflight.is_empty()
        {
            self.request_recluster(tenant, None);
        }
        let ts = self.tenants.get(tenant).expect("ensured above");
        if self.cfg.snapshot_every > 0 && ts.since_snapshot >= self.cfg.snapshot_every {
            self.write_snapshot(tenant);
        }
    }

    /// Hands the worker a frozen copy of one tenant engine's tables.
    /// Returns `false` only when the worker is gone (channel
    /// disconnected); a full job queue counts as success because the
    /// queued jobs will finish first and the caller re-requests.
    fn request_recluster(&mut self, tenant: &Tenant, ctx: Option<SpanContext>) -> bool {
        let Some(ts) = self.tenants.get_mut(tenant) else {
            return true;
        };
        // The dirty delta is drained at the same moment the view is
        // frozen, so it describes exactly the changes since the previous
        // drain; any delta stranded by an earlier full queue merges in.
        let mut dirty = ts.engine.take_dirty();
        if let Some(prev) = ts.pending_dirty.take() {
            dirty.merge(prev);
        }
        let job = ReclusterJob {
            tenant: tenant.clone(),
            input: ts.engine.recluster_input(),
            dirty: Some(dirty),
            generation: ts.events_applied,
            ctx,
        };
        let ok = match self.job_tx.try_send(job) {
            Ok(()) => {
                let generation = ts.events_applied;
                ts.inflight.push_back(generation);
                ts.since_recluster = 0;
                true
            }
            Err(TrySendError::Full(job)) => {
                // The worker never saw this delta; carry it forward so
                // the next job's delta still spans the full gap.
                ts.pending_dirty = job.dirty;
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        };
        self.update_inflight_gauge();
        ok
    }

    /// Installs a finished clustering delivered by the worker. The
    /// worker is FIFO and each tenant's generations are requested in
    /// non-decreasing order, so installs never regress the generation.
    ///
    /// Records the `recluster` span (with `shard_count` children) here,
    /// retroactively: under the job's own context when it was requested
    /// by a traced query, else under `waiter_ctx` when a traced query is
    /// blocked on this install, else under a fresh root trace.
    fn install_recluster(&mut self, done: ReclusterDone, waiter_ctx: Option<SpanContext>) {
        let Some(ts) = self.tenants.get_mut(&done.tenant) else {
            return;
        };
        if let Some(pos) = ts.inflight.iter().position(|&g| g == done.generation) {
            ts.inflight.remove(pos);
        }
        let clusters = ts
            .engine
            .install_clustering(done.clustering, done.wall, &done.shard_seconds)
            .len();
        let (trace, parent) = match done.ctx.or(waiter_ctx) {
            Some(c) => (c.trace_id, Some(c.span_id)),
            None => (seer_telemetry::new_trace_id(), None),
        };
        let recluster_ctx = self.metrics.tracer.record_complete(
            "recluster",
            trace,
            parent,
            done.started,
            done.wall,
            &[
                ("generation", done.generation.to_string()),
                ("clusters", clusters.to_string()),
                ("incremental", done.incremental.to_string()),
            ],
        );
        for (i, (&shard_wall, &offset)) in done
            .shard_seconds
            .iter()
            .zip(&done.shard_start_offsets)
            .enumerate()
        {
            if let Some(shard_start) = done.started.checked_add(offset) {
                self.metrics.tracer.record_complete(
                    "shard_count",
                    trace,
                    Some(recluster_ctx.span_id),
                    shard_start,
                    shard_wall,
                    &[("shard", i.to_string())],
                );
            }
        }
        ts.clustering_generation = done.generation;
        let (events_applied, clustering_generation) = (ts.events_applied, ts.clustering_generation);
        self.metrics.reclusters.inc();
        if done.incremental {
            self.metrics.reclusters_incremental.inc();
        }
        self.metrics.stage_recluster.observe(done.wall);
        self.metrics
            .observe_generation_lag(events_applied, clustering_generation);
        self.update_inflight_gauge();
        tlog!(
            Level::Debug,
            "seer_daemon::pipeline",
            "reclustered",
            tenant = done.tenant.as_ref(),
            clusters = clusters,
            generation = done.generation,
            events_applied = events_applied,
        );
    }

    /// Folds in any clusterings the worker has finished, without blocking.
    fn poll_recluster_done(&mut self) {
        self.poll_recluster_done_for(None);
    }

    /// Like [`Self::poll_recluster_done`], but on behalf of a traced
    /// fresh query: a pending result for the *same tenant* covering the
    /// query's target generation is the clustering the query will answer
    /// from, so its span is adopted into the query's trace.
    fn poll_recluster_done_for(&mut self, waiter: Option<(&Tenant, u64, SpanContext)>) {
        while let Ok(done) = self.done_rx.try_recv() {
            let ctx = match waiter {
                Some((t, target, c)) if done.tenant == *t && done.generation >= target => Some(c),
                _ => None,
            };
            self.install_recluster(done, ctx);
        }
    }

    /// Reclusters on the actor thread — the fallback when the worker is
    /// unavailable. Still uses the configured shard count.
    fn recluster_in_place(&mut self, tenant: &Tenant, ctx: Option<SpanContext>) {
        let Some(ts) = self.tenants.get_mut(tenant) else {
            return;
        };
        ts.inflight.clear();
        let started = Instant::now();
        let clusters = ts
            .engine
            .recluster_with_threads(self.cfg.recluster_threads)
            .len();
        ts.clustering_generation = ts.events_applied;
        ts.since_recluster = 0;
        let (events_applied, clustering_generation) = (ts.events_applied, ts.clustering_generation);
        self.metrics.reclusters.inc();
        self.metrics.stage_recluster.observe(started.elapsed());
        self.metrics
            .observe_generation_lag(events_applied, clustering_generation);
        self.update_inflight_gauge();
        let (trace, parent) = match ctx {
            Some(c) => (c.trace_id, Some(c.span_id)),
            None => (seer_telemetry::new_trace_id(), None),
        };
        self.metrics.tracer.record_complete(
            "recluster",
            trace,
            parent,
            started,
            started.elapsed(),
            &[
                ("generation", clustering_generation.to_string()),
                ("in_place", "true".to_owned()),
            ],
        );
        tlog!(
            Level::Debug,
            "seer_daemon::pipeline",
            "reclustered in place",
            tenant = tenant.as_ref(),
            clusters = clusters,
            events_applied = events_applied,
        );
    }

    /// Blocks until a clustering at the tenant's *current* generation is
    /// installed. Reuses an in-flight background job when one covers the
    /// target; falls back to an in-place recluster if the worker died.
    /// Results for other tenants arriving in the meantime are installed
    /// as they surface — waiting never starves a neighbor.
    fn ensure_fresh_clustering(&mut self, tenant: &Tenant, ctx: Option<SpanContext>) {
        let Some(ts) = self.tenants.get(tenant) else {
            return;
        };
        let target = ts.events_applied;
        self.poll_recluster_done_for(ctx.map(|c| (tenant, target, c)));
        loop {
            let (fresh, covered) = {
                let Some(ts) = self.tenants.get(tenant) else {
                    return;
                };
                (
                    ts.engine.clustering().is_some() && ts.clustering_generation >= target,
                    ts.inflight.back().is_some_and(|&g| g >= target),
                )
            };
            if fresh {
                return;
            }
            if !covered && !self.request_recluster(tenant, ctx) {
                self.recluster_in_place(tenant, ctx);
                return;
            }
            match self.done_rx.recv() {
                // A done covering the target is causally part of this
                // query even if the job predates it (an untraced
                // periodic job the query reused): chain it under `ctx`.
                Ok(done) => {
                    let waiter = if done.tenant == *tenant && done.generation >= target {
                        ctx
                    } else {
                        None
                    };
                    self.install_recluster(done, waiter);
                }
                Err(_) => {
                    self.recluster_in_place(tenant, ctx);
                    return;
                }
            }
        }
    }

    fn write_snapshot(&mut self, tenant: &Tenant) {
        let Some(ts) = self.tenants.get_mut(tenant) else {
            return;
        };
        let mut written = false;
        if let Some(base) = &self.cfg.snapshot_path {
            let path = tenant_snapshot_path(base, tenant);
            let _t = self.metrics.stage_snapshot_write.start_timer();
            let snap = DaemonSnapshot {
                engine: ts.engine.snapshot(),
                events_applied: ts.events_applied,
            };
            match snap.write_atomic(&path) {
                Ok(()) => {
                    written = true;
                    self.metrics.snapshots.inc();
                    tlog!(
                        Level::Info,
                        "seer_daemon::pipeline",
                        "snapshot written",
                        tenant = tenant.as_ref(),
                        path = path.display().to_string(),
                        events_applied = ts.events_applied,
                    );
                }
                Err(e) => {
                    tlog!(
                        Level::Warn,
                        "seer_daemon::pipeline",
                        "snapshot write failed",
                        tenant = tenant.as_ref(),
                        path = path.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
        // A durable snapshot covers every batch at or below its
        // generation, so sealed WAL segments entirely below it are dead
        // weight. Compaction never runs after a *failed* write — the
        // log must keep covering whatever the last good snapshot missed.
        if written {
            if let Some(wal) = &mut ts.wal {
                match wal.compact(ts.events_applied) {
                    Ok(report) if report.segments_dropped > 0 => {
                        self.metrics
                            .wal_segments_compacted
                            .add(report.segments_dropped as u64);
                        tlog!(
                            Level::Debug,
                            "seer_daemon::pipeline",
                            "wal compacted",
                            tenant = tenant.as_ref(),
                            segments_dropped = report.segments_dropped as u64,
                            bytes_dropped = report.bytes_dropped,
                        );
                    }
                    Ok(_) => {}
                    Err(e) => {
                        tlog!(
                            Level::Warn,
                            "seer_daemon::pipeline",
                            "wal compaction failed",
                            tenant = tenant.as_ref(),
                            error = e.to_string(),
                        );
                    }
                }
            }
            self.wal_update_gauges();
        }
        if let Some(ts) = self.tenants.get_mut(tenant) {
            ts.since_snapshot = 0;
        }
    }

    /// Idle-tick WAL maintenance for every tenant: under an interval
    /// fsync policy, sync if the window elapsed with appends
    /// outstanding, so a quiet daemon still bounds its loss window. A
    /// failed idle sync faults the tenant like a failed append would.
    fn wal_idle(&mut self) {
        for ts in self.tenants.values_mut() {
            if ts.wal_fault.is_some() {
                continue;
            }
            if let Some(wal) = &mut ts.wal {
                match wal.maybe_sync() {
                    Ok(Some(d)) => self.metrics.stage_wal_fsync.observe(d),
                    Ok(None) => {}
                    Err(e) => {
                        self.metrics.wal_append_errors.inc();
                        tlog!(
                            Level::Warn,
                            "seer_daemon::pipeline",
                            "wal idle sync failed; tenant faulted",
                            tenant = ts.name.as_ref(),
                            error = e.to_string(),
                        );
                        ts.wal_fault = Some(format!("wal sync failed: {e}"));
                    }
                }
            }
        }
    }

    /// Refreshes the WAL size gauges from every tenant log's accounting.
    fn wal_update_gauges(&self) {
        let (mut segments, mut disk_bytes) = (0u64, 0u64);
        let mut any = false;
        for ts in self.tenants.values() {
            if let Some(wal) = &ts.wal {
                let status = wal.status();
                segments += status.segments as u64;
                disk_bytes += status.disk_bytes;
                any = true;
            }
        }
        if any {
            self.metrics
                .wal_segments
                .set(i64::try_from(segments).unwrap_or(i64::MAX));
            self.metrics
                .wal_disk_bytes
                .set(i64::try_from(disk_bytes).unwrap_or(i64::MAX));
        }
    }

    /// Answers a `History` query: replay the tenant's WAL (from its
    /// newest snapshot at or below `target`, else from generation zero)
    /// into a fresh engine, stop after the last batch at or below
    /// `target`, recluster, and select a hoard — exactly what the live
    /// daemon would have answered at that generation.
    ///
    /// Runs on the actor thread, which is what makes reading the live
    /// log safe: no append can race the replay. The flush that precedes
    /// every query means the log already contains everything this
    /// connection sent.
    fn answer_history(&mut self, tenant: &Tenant, target: u64, budget: u64) -> QueryResponse {
        let err = |message: String| QueryResponse::Error { message };
        let snapshot_base = self
            .cfg
            .snapshot_path
            .as_deref()
            .map(|p| tenant_snapshot_path(p, tenant));
        let recluster_threads = self.cfg.recluster_threads.max(1);
        let (engine_cfg, file_size) = (self.cfg.engine.clone(), self.cfg.file_size);
        let Some(ts) = self.tenants.get_mut(tenant) else {
            return err("history unavailable: tenant has no state".into());
        };
        let Some(wal) = &mut ts.wal else {
            return err("history unavailable: daemon is running without a WAL".into());
        };
        if target > ts.events_applied {
            return err(format!(
                "generation {target} is in the future (events applied: {})",
                ts.events_applied
            ));
        }
        if let Err(e) = wal.sync() {
            return err(format!("history unavailable: wal sync failed: {e}"));
        }
        let compacted = wal.compacted_through();
        // Base state: prefer the newest on-disk snapshot when it is at
        // or below the target (fewer batches to replay); otherwise fall
        // back to a cold engine, which needs the log to reach all the
        // way back to generation zero.
        let snap_base = snapshot_base
            .as_deref()
            .and_then(|p| match DaemonSnapshot::load(p) {
                Ok(Some(s)) if s.events_applied <= target => Some(s),
                _ => None,
            });
        let (base_engine, base_gen) = match snap_base {
            Some(s) => (SeerEngine::from_snapshot(s.engine), s.events_applied),
            None if compacted == 0 => (SeerEngine::new(engine_cfg), 0),
            None => {
                return err(format!(
                    "generation {target} unreachable: log compacted through {compacted} \
                     and no snapshot at or below the target exists"
                ));
            }
        };
        let mut rep = Replayer::new(base_engine, StringTable::new(), base_gen);
        let stats = match wal.replay(|rec| match rec {
            WalRecord::Interns { base, paths } => {
                rep.declare(base, &paths);
                true
            }
            WalRecord::Batch { generation, events } => {
                if generation > target {
                    return false;
                }
                rep.apply(generation, &events);
                true
            }
        }) {
            Ok(stats) => stats,
            Err(e) => return err(format!("history replay failed: {e}")),
        };
        if stats.damaged && rep.events_applied() < target {
            return err(format!(
                "history incomplete: log damage stopped replay at generation {}",
                rep.events_applied()
            ));
        }
        if rep.gaps() > 0 {
            return err(format!(
                "history incomplete: log does not connect to the base state \
                 ({} generation gaps; the log may not reach back to generation {base_gen})",
                rep.gaps()
            ));
        }
        let (mut engine, _strings, achieved) = rep.into_parts();
        let clusters = engine.recluster_with_threads(recluster_threads).len();
        let sel = engine.choose_hoard(budget, &|_| file_size);
        let files = sel
            .files
            .iter()
            .filter_map(|&f| engine.paths().resolve(f).map(str::to_owned))
            .collect();
        QueryResponse::History {
            generation: achieved,
            files,
            bytes: sel.bytes,
            clusters_taken: sel.clusters_taken,
            clusters_skipped: sel.clusters_skipped,
            clusters,
            files_known: engine.paths().len(),
        }
    }

    /// Drains newly detected hoard misses into the tenant's miss log and
    /// captures a provenance postmortem for each: rank, clusters, and
    /// strongest neighbors *as they are right now*, plus the WAL
    /// generation so `History` can replay the hoard as of the miss.
    fn capture_postmortems(&mut self, tenant: &Tenant) {
        let Some(ts) = self.tenants.get_mut(tenant) else {
            return;
        };
        if ts.quality.is_none() {
            return;
        }
        let auto = ts.engine.take_misses();
        let q = ts.quality.as_mut().expect("checked above");
        for f in auto {
            q.miss_log.record_auto(f, q.last_event_time);
        }
        // The daemon has no reconnection cycle to consume the
        // hoard-next queue; drain it so it cannot grow without bound.
        let _ = q.miss_log.take_pending();
        let recent: Vec<seer_replication::MissRecord> = q.miss_log.take_recent().to_vec();
        if recent.is_empty() {
            return;
        }
        let engine = &ts.engine;
        let rank = engine.rank();
        let pos: HashMap<FileId, usize> = rank.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        for rec in recent {
            let path = engine
                .paths()
                .resolve(rec.file)
                .unwrap_or("<unknown>")
                .to_owned();
            let pm = MissPostmortem {
                id: q.next_miss_id,
                path,
                generation: ts.events_applied,
                clustering_generation: ts.clustering_generation,
                time_secs: rec.time.as_secs(),
                severity: rec.severity.map(seer_replication::Severity::code),
                auto: rec.severity.is_none(),
                rank: pos.get(&rec.file).copied(),
                ranked: rank.len(),
                clusters: engine
                    .clustering()
                    .map(|c| c.membership_summary(rec.file))
                    .unwrap_or_default(),
                neighbors: neighbor_evidence(engine, rec.file, 5),
            };
            q.next_miss_id += 1;
            q.retain_postmortem(pm);
        }
    }

    /// Records a finished evaluation: stage timer, gauges, and the
    /// series rings backing `seer top` sparklines.
    fn install_eval(&mut self, tenant: &Tenant, report: QualityReport, wall: Duration) {
        self.metrics.stage_evaluate.observe(wall);
        self.metrics.quality_evals.inc();
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        self.metrics
            .quality_seer_missfree_bytes
            .set(clamp(report.seer_missfree_bytes));
        self.metrics
            .quality_lru_missfree_bytes
            .set(clamp(report.lru_missfree_bytes));
        self.metrics
            .quality_working_set_bytes
            .set(clamp(report.working_set_bytes));
        self.metrics
            .quality_needed_files
            .set(clamp(report.needed_files as u64));
        if let Some(q) = self
            .tenants
            .get_mut(tenant)
            .and_then(|ts| ts.quality.as_mut())
        {
            q.install(report);
        }
    }

    /// Folds in any evaluations the tenant's worker finished, without
    /// blocking.
    fn poll_eval_done(&mut self, tenant: &Tenant) {
        let Some(q) = self
            .tenants
            .get_mut(tenant)
            .and_then(|ts| ts.quality.as_mut())
        else {
            return;
        };
        let mut finished = Vec::new();
        while let Ok(done) = q.done_rx.try_recv() {
            q.inflight = false;
            finished.push(done);
        }
        for d in finished {
            self.install_eval(tenant, d.report, d.wall);
        }
    }

    /// Hands the tenant's evaluator a fresh job when the cadence timer
    /// says one is due and none is in flight.
    fn maybe_request_eval(&mut self, tenant: &Tenant) {
        let Some(ts) = self.tenants.get(tenant) else {
            return;
        };
        let due = ts.quality.as_ref().is_some_and(QualityState::due);
        if !due || ts.events_applied == 0 {
            return;
        }
        let job = build_eval_job(ts, &self.cfg);
        let ts = self.tenants.get_mut(tenant).expect("checked above");
        let q = ts.quality.as_mut().expect("checked above");
        if let Some(tx) = &q.job_tx {
            if tx.try_send(job).is_ok() {
                q.inflight = true;
                q.last_eval = Some(Instant::now());
            }
        }
    }

    /// Answers an `Explain` query: the file's decision provenance.
    fn answer_explain(
        &mut self,
        tenant: &Tenant,
        path: &str,
        ctx: Option<SpanContext>,
    ) -> QueryResponse {
        let found = self
            .tenants
            .get(tenant)
            .and_then(|ts| ts.engine.paths().get(path));
        let Some(file) = found else {
            return QueryResponse::Error {
                message: format!("unknown path: {path} (never observed by the daemon)"),
            };
        };
        let (generation, stale) = self.prepare_clustering(tenant, false, ctx);
        let ts = self.tenants.get(tenant).expect("found above");
        let rank_vec = ts.engine.rank();
        let rank = rank_vec.iter().position(|&f| f == file);
        let last = ts.engine.correlator().activity().last_ref(file);
        QueryResponse::Explain {
            path: path.to_owned(),
            rank,
            ranked: rank_vec.len(),
            always_hoard: ts.engine.always_hoard().contains(&file),
            last_ref_secs: last.map(|r| r.time.as_secs()),
            ref_count: last.map_or(0, |r| r.count),
            clusters: ts
                .engine
                .clustering()
                .map(|c| c.membership_summary(file))
                .unwrap_or_default(),
            neighbors: neighbor_evidence(&ts.engine, file, 8),
            generation,
            stale,
        }
    }

    /// Answers a `Quality` query by evaluating *inline* on the actor,
    /// so after a flush the answer reflects everything applied — an
    /// online quality query equals an offline evaluation of the same
    /// events (the equivalence test pins this).
    fn answer_quality(&mut self, tenant: &Tenant) -> QueryResponse {
        let Some(ts) = self.tenants.get(tenant) else {
            return QueryResponse::Error {
                message: "quality plane disabled (run with a nonzero eval interval)".into(),
            };
        };
        if ts.quality.is_none() {
            return QueryResponse::Error {
                message: "quality plane disabled (run with a nonzero eval interval)".into(),
            };
        }
        let job = build_eval_job(ts, &self.cfg);
        let started = Instant::now();
        let report = quality::evaluate(&job);
        self.install_eval(tenant, report.clone(), started.elapsed());
        let q = self
            .tenants
            .get(tenant)
            .and_then(|ts| ts.quality.as_ref())
            .expect("checked above");
        QueryResponse::Quality {
            report,
            series: q.series.snapshot(),
        }
    }

    /// Answers a `Miss` query from the tenant's retained postmortems.
    fn answer_miss(&self, tenant: &Tenant, id: Option<u64>) -> QueryResponse {
        let Some(q) = self.tenants.get(tenant).and_then(|ts| ts.quality.as_ref()) else {
            return QueryResponse::Error {
                message: "miss postmortems unavailable: quality plane disabled".into(),
            };
        };
        match id {
            None => QueryResponse::Misses {
                postmortems: q.postmortems.iter().cloned().collect(),
            },
            Some(want) => match q.postmortems.iter().find(|p| p.id == want) {
                Some(p) => QueryResponse::Misses {
                    postmortems: vec![p.clone()],
                },
                None => QueryResponse::Error {
                    message: format!(
                        "no postmortem with id {want} (retaining {} of {} recorded)",
                        q.postmortems.len(),
                        q.next_miss_id
                    ),
                },
            },
        }
    }

    /// Answers a `Fleet` query with this shard's local tenants; the
    /// connection layer merges the per-shard answers into the fleet view.
    fn answer_fleet(&self, top_k: Option<usize>) -> QueryResponse {
        let mut per_tenant: Vec<TenantFleetStat> = self
            .tenants
            .values()
            .map(|ts| tenant_fleet_stat(ts, &self.metrics))
            .collect();
        per_tenant.sort_by(|a, b| {
            b.miss_rate
                .total_cmp(&a.miss_rate)
                .then_with(|| a.tenant.cmp(&b.tenant))
        });
        // Truncating per shard is sound: a tenant lives on exactly one
        // shard, so the global top-k is a subset of the shard top-ks.
        if let Some(k) = top_k {
            per_tenant.truncate(k);
        }
        QueryResponse::Fleet {
            tenants: self.tenants.len(),
            total_events: self.tenants.values().map(|t| t.events_applied).sum(),
            per_tenant,
        }
    }

    /// Prepares the tenant's clustering for a hoard/clusters answer.
    /// `fresh` blocks until the clustering reflects everything applied
    /// so far — this makes an online hoard query equivalent to an
    /// offline replay followed by recluster + choose_hoard. A non-fresh
    /// query reuses the cached clustering (counting it as stale when the
    /// generation lags), so it never waits on a recluster.
    fn prepare_clustering(
        &mut self,
        tenant: &Tenant,
        fresh: bool,
        ctx: Option<SpanContext>,
    ) -> (u64, bool) {
        let Some(ts) = self.tenants.get(tenant) else {
            return (0, false);
        };
        let waiter = if fresh {
            ctx.map(|c| (tenant, ts.events_applied, c))
        } else {
            None
        };
        self.poll_recluster_done_for(waiter);
        let ts = self.tenants.get(tenant).expect("checked above");
        if fresh || ts.engine.clustering().is_none() {
            self.ensure_fresh_clustering(tenant, ctx);
        }
        let ts = self.tenants.get(tenant).expect("checked above");
        let stale = ts.clustering_generation < ts.events_applied;
        if stale {
            self.metrics.stale_queries.inc();
        }
        self.metrics
            .observe_generation_lag(ts.events_applied, ts.clustering_generation);
        (ts.clustering_generation, stale)
    }

    fn answer(
        &mut self,
        tenant: &Tenant,
        query: QueryRequest,
        ctx: Option<SpanContext>,
        ingest_depth: usize,
        alive: bool,
    ) -> QueryResponse {
        // Tenant-scoped queries create the tenant on first contact, so a
        // freshly restarted daemon answers for any tenant with on-disk
        // state without waiting for that tenant to send events first.
        if !matches!(
            query,
            QueryRequest::Stats
                | QueryRequest::Metrics
                | QueryRequest::Dump
                | QueryRequest::Fleet { .. }
                | QueryRequest::Alerts { .. }
        ) {
            self.ensure_tenant(tenant);
        }
        // The answer span covers everything the actor does for the query;
        // a recluster forced by `fresh` chains under it.
        let mut span = ctx.map(|c| self.metrics.tracer.child("engine_answer", c));
        let span_ctx = span.as_ref().map(seer_telemetry::Span::context);
        if let Some(s) = &mut span {
            s.attr("query", query.name());
            s.attr("tenant", tenant.as_ref());
        }
        match query {
            QueryRequest::Hoard { budget, fresh } => {
                let (generation, stale) = self.prepare_clustering(tenant, fresh, span_ctx);
                let file_size = self.cfg.file_size;
                let ts = self.tenants.get_mut(tenant).expect("ensured above");
                let sel = ts.engine.choose_hoard(budget, &|_| file_size);
                let files = sel
                    .files
                    .iter()
                    .filter_map(|&f| ts.engine.paths().resolve(f).map(str::to_owned))
                    .collect();
                QueryResponse::Hoard {
                    files,
                    bytes: sel.bytes,
                    clusters_taken: sel.clusters_taken,
                    clusters_skipped: sel.clusters_skipped,
                    generation,
                    stale,
                }
            }
            QueryRequest::Clusters { fresh } => {
                let (generation, stale) = self.prepare_clustering(tenant, fresh, span_ctx);
                let ts = self.tenants.get(tenant).expect("ensured above");
                let clustering = ts.engine.clustering().expect("prepared above");
                let mut largest: Vec<usize> = clustering.clusters.iter().map(|c| c.len()).collect();
                largest.sort_unstable_by(|a, b| b.cmp(a));
                largest.truncate(8);
                QueryResponse::Clusters {
                    count: clustering.len(),
                    largest,
                    files_known: ts.engine.paths().len(),
                    generation,
                    stale,
                }
            }
            QueryRequest::Stats => {
                let s = self.metrics.snapshot_view();
                QueryResponse::Stats {
                    events_received: s.events_received,
                    events_applied: s.events_applied,
                    batches_applied: s.batches_applied,
                    max_queue_depth: s.max_queue_depth,
                    reclusters: s.reclusters,
                    snapshots: s.snapshots,
                    connections: s.connections,
                }
            }
            QueryRequest::Metrics => {
                self.metrics.observe_queue_depth(ingest_depth);
                self.metrics.touch_uptime();
                QueryResponse::Metrics {
                    snapshot: self.metrics.registry.snapshot(),
                }
            }
            QueryRequest::Health => {
                let ts = self.tenants.get(tenant).expect("ensured above");
                QueryResponse::Health {
                    healthy: alive && ts.wal_fault.is_none(),
                    events_applied: ts.events_applied,
                    queue_depth: ingest_depth,
                    wal_fault: ts.wal_fault.clone(),
                }
            }
            QueryRequest::Dump => QueryResponse::Dump {
                spans: self.metrics.tracer.snapshot(),
                dropped: self.metrics.tracer.dropped(),
            },
            QueryRequest::History { generation, budget } => {
                self.answer_history(tenant, generation, budget)
            }
            QueryRequest::Explain { path } => self.answer_explain(tenant, &path, span_ctx),
            QueryRequest::Quality => self.answer_quality(tenant),
            QueryRequest::Miss { id } => self.answer_miss(tenant, id),
            QueryRequest::Fleet { top_k } => self.answer_fleet(top_k),
            QueryRequest::Alerts { tenant: filter } => {
                // The ring is daemon-global (shared by every shard), so
                // any one shard answers for the whole fleet, including
                // the watchdog's `_self` pseudo-tenant.
                QueryResponse::Alerts {
                    alerts: self.metrics.alerts.snapshot(filter.as_deref()),
                    now_secs: self.metrics.alerts.uptime_secs(),
                }
            }
        }
    }
}

/// Quality-plane work on the ingest path: advance trace time and feed
/// every referenced path into the shadow-LRU comparator. A no-op (one
/// branch) when the plane is disabled.
///
/// Paths resolve through the *canonical* table, so references the
/// observer filtered out (or paths it rewrote during canonicalization)
/// are skipped — the shadow only ranks files SEER itself could have
/// hoarded, keeping the comparison fair.
fn quality_ingest(ts: &mut TenantState, events: &[TraceEvent]) {
    let Some(q) = ts.quality.as_mut() else {
        return;
    };
    let strings = &ts.strings;
    let engine = &ts.engine;
    for ev in events {
        if ev.time > q.last_event_time {
            q.last_event_time = ev.time;
        }
        let _ = ev.kind.map_paths(&mut |p| {
            if let Some(s) = strings.resolve(p) {
                if let Some(f) = engine.paths().get(s) {
                    q.shadow.touch(f);
                }
            }
            p
        });
    }
}

/// Freezes everything the tenant's evaluator needs into a job.
fn build_eval_job(ts: &TenantState, cfg: &ActorConfig) -> quality::EvalJob {
    let q = ts.quality.as_ref().expect("quality enabled");
    quality::EvalJob {
        input: ts.engine.eval_input(),
        shadow: q.shadow.order(),
        window_secs: q.window_secs,
        budget: q.budget,
        file_size: cfg.file_size,
        generation: ts.events_applied,
        clustering_generation: ts.clustering_generation,
        misses_by_severity: q.miss_log.severity_histogram(),
        auto_misses: q.miss_log.auto_count() as u64,
        eval_index: q.evals + 1,
    }
}

/// Cumulative hoard misses (real + auto-detected) from the quality
/// plane's miss log; zero with the plane disabled.
fn tenant_misses(ts: &TenantState) -> u64 {
    ts.quality.as_ref().map_or(0, |q| {
        q.miss_log.severity_histogram().iter().sum::<u64>() + q.miss_log.auto_count() as u64
    })
}

/// One tenant's row in a fleet answer.
fn tenant_fleet_stat(ts: &TenantState, metrics: &SharedMetrics) -> TenantFleetStat {
    let misses = tenant_misses(ts);
    let miss_rate = if ts.events_applied > 0 {
        misses as f64 / ts.events_applied as f64
    } else {
        0.0
    };
    TenantFleetStat {
        tenant: ts.name.to_string(),
        events_applied: ts.events_applied,
        files_known: ts.engine.paths().len(),
        misses,
        miss_rate,
        wal_fault: ts.wal_fault.clone(),
        health_score: ts.health.score(),
        alerts_firing: metrics.alerts.firing_count_for(&ts.name) as u64,
        score_spark: ts.health.spark(),
    }
}

/// The strongest semantic-distance neighbors of `file`, resolved to
/// canonical paths with their evidence counts — the shared provenance
/// payload of `Explain` answers and miss postmortems.
fn neighbor_evidence(engine: &SeerEngine, file: FileId, k: usize) -> Vec<ExplainNeighbor> {
    engine
        .correlator()
        .distance()
        .table()
        .strongest_neighbors(file, k)
        .into_iter()
        .filter_map(|(to, distance, evidence)| {
            engine.paths().resolve(to).map(|p| ExplainNeighbor {
                path: p.to_owned(),
                distance,
                evidence,
            })
        })
        .collect()
}

/// Runs one shard's engine actor until the apply channel disconnects
/// (graceful shutdown: drain, recluster, snapshot every tenant, exit)
/// or `kill` is raised (abrupt: exit immediately *without*
/// snapshotting, leaving the last on-disk snapshots as the recovery
/// points). `seed` is the eagerly restored default tenant — present on
/// exactly the shard the default tenant routes to.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_engine_actor(
    seed: Option<DefaultSeed>,
    cfg: ActorConfig,
    apply_rx: Receiver<Apply>,
    control_rx: Receiver<Control>,
    ingest_depth: Receiver<Ingest>,
    metrics: SharedMetrics,
    kill: Arc<AtomicBool>,
    beat: Arc<ShardBeat>,
) {
    let tick = cfg.tick;
    // The recluster worker owns the expensive computation; both channels
    // are small because the actor keeps at most one periodic job and one
    // fresh-query job outstanding per tenant at a time.
    let (job_tx, job_rx) = crossbeam::channel::bounded::<ReclusterJob>(4);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<ReclusterDone>(4);
    let worker = {
        let threads = cfg.recluster_threads.max(1);
        let full_every = cfg.recluster_full_every;
        thread::Builder::new()
            .name("seer-recluster".into())
            .spawn(move || run_recluster_worker(&job_rx, &done_tx, threads, full_every))
            .ok()
    };
    let mut actor = Actor {
        tenants: HashMap::new(),
        job_tx,
        done_rx,
        cfg,
        metrics,
    };
    if let Some(seed) = seed {
        let name = default_tenant();
        let quality = spawn_quality(&actor.cfg, &actor.metrics);
        // A recovered snapshot's applied count seeds the counter so
        // restart does not appear to reset progress.
        actor.metrics.events_applied.set_total(seed.events_applied);
        let tm = actor.metrics.tenant(&name);
        tm.events_applied.set_total(seed.events_applied);
        let health = TenantHealth::new(&actor.cfg.health);
        actor.tenants.insert(
            name.clone(),
            TenantState {
                name,
                engine: seed.engine,
                strings: seed.strings,
                remap: HashMap::new(),
                per_conn: HashMap::new(),
                events_applied: seed.events_applied,
                since_recluster: 0,
                since_snapshot: 0,
                clustering_generation: 0,
                inflight: VecDeque::new(),
                pending_dirty: None,
                wal: seed.wal,
                wal_fault: None,
                wal_appends: 0,
                quality,
                tm,
                health,
                dropped_events: 0,
            },
        );
        actor.metrics.tenants.add(1);
        actor.wal_update_gauges();
    }
    loop {
        // Liveness stamp: one relaxed store per loop iteration. A
        // heartbeat older than the watchdog's `stall_after` means the
        // actor is stuck inside a single message below.
        beat.stamp_heartbeat();
        if kill.load(Ordering::Relaxed) {
            // Abrupt death: no snapshot — but the flight recorder is
            // exactly for reconstructing what led up to a crash, so dump
            // it before abandoning everything.
            dump_flight(&actor);
            return;
        }
        while let Ok(Control::Query {
            query,
            tenant,
            ctx,
            reply,
        }) = control_rx.try_recv()
        {
            let depth = ingest_depth.len();
            let answer = actor.answer(&tenant, query, ctx, depth, true);
            let _ = reply.send(answer);
        }
        match apply_rx.recv_timeout(tick) {
            Ok(item) => {
                let depth = ingest_depth.len();
                actor.apply(item, depth);
            }
            Err(RecvTimeoutError::Timeout) => {
                // Idle tick: fold in finished clusterings and quality
                // evaluations, start background reclusters for tenants
                // whose cache went stale, keep the evaluator cadences
                // alive, and snapshot pending work so quiet periods
                // converge — for every tenant on this shard. Health is
                // sampled here too so burn windows decay (and alerts
                // resolve) while a tenant is quiet.
                actor.poll_recluster_done();
                let tenants: Vec<Tenant> = actor.tenants.keys().cloned().collect();
                for tenant in &tenants {
                    actor.poll_eval_done(tenant);
                    let ts = actor.tenants.get(tenant).expect("listed above");
                    if actor.cfg.recluster_every > 0
                        && ts.since_recluster > 0
                        && ts.inflight.is_empty()
                    {
                        actor.request_recluster(tenant, None);
                    }
                    actor.maybe_request_eval(tenant);
                    actor.observe_tenant_health(tenant, ingest_depth.len());
                    let ts = actor.tenants.get(tenant).expect("listed above");
                    if actor.cfg.snapshot_every > 0 && ts.since_snapshot > 0 {
                        actor.write_snapshot(tenant);
                    }
                }
                actor.wal_idle();
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        actor.refresh_beats(&beat);
    }
    // Graceful epilogue: every producer is gone and the queue is drained.
    while let Ok(Control::Query {
        query,
        tenant,
        ctx,
        reply,
    }) = control_rx.try_recv()
    {
        let answer = actor.answer(&tenant, query, ctx, 0, false);
        let _ = reply.send(answer);
    }
    actor.poll_recluster_done();
    let tenants: Vec<Tenant> = actor.tenants.keys().cloned().collect();
    for tenant in &tenants {
        let ts = actor.tenants.get(tenant).expect("listed above");
        if ts.engine.clustering().is_none() || ts.clustering_generation < ts.events_applied {
            actor.ensure_fresh_clustering(tenant, None);
        }
        actor.write_snapshot(tenant);
        // The log's tail may still be unsynced under an interval policy;
        // a graceful exit leaves nothing for the fsync window to lose.
        if let Some(ts) = actor.tenants.get_mut(tenant) {
            if let Some(wal) = &mut ts.wal {
                if let Err(e) = wal.sync() {
                    tlog!(
                        Level::Warn,
                        "seer_daemon::pipeline",
                        "wal final sync failed",
                        tenant = tenant.as_ref(),
                        error = e.to_string(),
                    );
                }
            }
        }
    }
    dump_flight(&actor);
    // Dropping the job sender lets the worker's recv disconnect; join so
    // a graceful shutdown leaves no thread behind. (The kill path above
    // returns without joining — the workers notice the disconnect and
    // exit on their own.)
    let Actor {
        job_tx, tenants, ..
    } = actor;
    drop(job_tx);
    for (_, ts) in tenants {
        if let Some(mut q) = ts.quality {
            q.shutdown();
        }
    }
    if let Some(handle) = worker {
        let _ = handle.join();
    }
}

/// Writes the flight-recorder ring to the configured dump path, one
/// JSON line per span. Failures are logged, never fatal — the dump is a
/// diagnostic of last resort, not part of the data path.
fn dump_flight(actor: &Actor) {
    let Some(path) = &actor.cfg.flight_path else {
        return;
    };
    if !actor.metrics.tracer.enabled() {
        return;
    }
    let spans = actor.metrics.tracer.snapshot();
    let result = std::fs::File::create(path).and_then(|f| {
        let mut w = std::io::BufWriter::new(f);
        seer_telemetry::write_flight_jsonl(&mut w, &spans)?;
        std::io::Write::flush(&mut w)
    });
    match result {
        Ok(()) => tlog!(
            Level::Info,
            "seer_daemon::pipeline",
            "flight recorder dumped",
            path = path.display().to_string(),
            spans = spans.len() as u64,
            dropped = actor.metrics.tracer.dropped(),
        ),
        Err(e) => tlog!(
            Level::Warn,
            "seer_daemon::pipeline",
            "flight recorder dump failed",
            path = path.display().to_string(),
            error = e.to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_telemetry::TraceId;

    fn test_cfg() -> ActorConfig {
        ActorConfig {
            snapshot_path: None,
            recluster_every: 0,
            recluster_full_every: 0,
            snapshot_every: 0,
            tick: Duration::from_millis(50),
            file_size: 1,
            recluster_threads: 1,
            flight_path: None,
            engine: SeerConfig::default(),
            wal_dir: None,
            wal_fsync: FsyncPolicy::Never,
            wal_segment_bytes: 8 * 1024 * 1024,
            wal_fail_after: None,
            wal_fail_tenant: None,
            eval_every: Duration::ZERO,
            eval_window_secs: 0,
            eval_budget: 0,
            shadow_lru_cap: 0,
            health: HealthConfig::default(),
            channel_capacity: 1024,
        }
    }

    /// An actor holding one default tenant at `events_applied` with the
    /// given in-flight recluster generations.
    fn test_actor(
        engine: SeerEngine,
        events_applied: u64,
        inflight: VecDeque<u64>,
        job_tx: Sender<ReclusterJob>,
        done_rx: Receiver<ReclusterDone>,
    ) -> Actor {
        let name = default_tenant();
        let cfg = test_cfg();
        let metrics = crate::stats::new_shared_with(Tracer::new(64, Duration::from_secs(1)));
        let mut tenants = HashMap::new();
        tenants.insert(
            name.clone(),
            TenantState {
                tm: metrics.tenant(&name),
                name,
                engine,
                strings: StringTable::new(),
                remap: HashMap::new(),
                per_conn: HashMap::new(),
                events_applied,
                since_recluster: 0,
                since_snapshot: 0,
                clustering_generation: 0,
                inflight,
                pending_dirty: None,
                wal: None,
                wal_fault: None,
                wal_appends: 0,
                quality: None,
                health: TenantHealth::new(&cfg.health),
                dropped_events: 0,
            },
        );
        Actor {
            tenants,
            job_tx,
            done_rx,
            cfg,
            metrics,
        }
    }

    fn done_for(
        tenant: Tenant,
        clustering: Clustering,
        shard_seconds: Vec<Duration>,
        shard_start_offsets: Vec<Duration>,
        generation: u64,
        wall: Duration,
    ) -> ReclusterDone {
        ReclusterDone {
            tenant,
            clustering,
            generation,
            started: Instant::now(),
            wall,
            shard_seconds,
            shard_start_offsets,
            incremental: false,
            ctx: None,
        }
    }

    /// A traced fresh query that reuses an in-flight recluster job
    /// *requested without a context* (a periodic or idle-tick job) must
    /// adopt it: the `recluster` span recorded at install time lands in
    /// the query's trace, parented under the waiting context.
    #[test]
    fn waiting_query_adopts_untraced_recluster_job() {
        let (job_tx, _job_rx) = crossbeam::channel::bounded::<ReclusterJob>(1);
        let (done_tx, done_rx) = crossbeam::channel::bounded::<ReclusterDone>(1);
        let engine = SeerEngine::default();
        let run = engine.recluster_input().compute(1);
        // One untraced job already in flight, covering the target
        // generation — exactly what the idle tick leaves behind.
        let mut actor = test_actor(engine, 5, VecDeque::from([5u64]), job_tx, done_rx);
        let tenant = default_tenant();
        // The worker stand-in finishes the job only once the query is
        // already blocked waiting on it.
        let done = done_for(
            tenant.clone(),
            run.clustering,
            run.shard_count_seconds,
            run.shard_start_offsets,
            5,
            Duration::from_millis(3),
        );
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            done_tx.send(done).expect("actor is waiting");
        });

        let ctx = actor.metrics.tracer.record_complete(
            "engine_answer",
            TraceId(42),
            None,
            Instant::now(),
            Duration::ZERO,
            &[],
        );
        actor.ensure_fresh_clustering(&tenant, Some(ctx));
        sender.join().expect("worker stand-in");

        assert_eq!(actor.tenants[&tenant].clustering_generation, 5);
        let spans = actor.metrics.tracer.snapshot();
        let recluster = spans
            .iter()
            .find(|s| s.name == "recluster")
            .expect("install recorded the adopted job's span");
        assert_eq!(recluster.trace_id, 42, "span joins the waiting trace");
        assert_eq!(recluster.parent_id, Some(ctx.span_id.0));
        for shard in spans.iter().filter(|s| s.name == "shard_count") {
            assert_eq!(shard.parent_id, Some(recluster.span_id));
        }
    }

    /// A traced fresh query whose covering job *already finished* — the
    /// done is sitting in the channel when the query polls — still
    /// adopts it: the clustering being installed is the one the query
    /// answers from, so its span belongs in the query's trace.
    #[test]
    fn traced_query_adopts_already_finished_recluster() {
        let (job_tx, _job_rx) = crossbeam::channel::bounded::<ReclusterJob>(1);
        let (done_tx, done_rx) = crossbeam::channel::bounded::<ReclusterDone>(1);
        let engine = SeerEngine::default();
        let run = engine.recluster_input().compute(1);
        let mut actor = test_actor(engine, 7, VecDeque::from([7u64]), job_tx, done_rx);
        let tenant = default_tenant();
        done_tx
            .send(done_for(
                tenant.clone(),
                run.clustering,
                run.shard_count_seconds,
                run.shard_start_offsets,
                7,
                Duration::from_millis(2),
            ))
            .expect("bounded(1) has room");

        let ctx = actor.metrics.tracer.record_complete(
            "engine_answer",
            TraceId(77),
            None,
            Instant::now(),
            Duration::ZERO,
            &[],
        );
        let (generation, stale) = actor.prepare_clustering(&tenant, true, Some(ctx));
        assert_eq!(generation, 7);
        assert!(!stale);

        let spans = actor.metrics.tracer.snapshot();
        let recluster = spans
            .iter()
            .find(|s| s.name == "recluster")
            .expect("poll recorded the pending job's span");
        assert_eq!(recluster.trace_id, 77, "span joins the querying trace");
        assert_eq!(recluster.parent_id, Some(ctx.span_id.0));
    }

    /// The same install with nobody waiting starts its own root trace —
    /// background reclusters never alias an unrelated query's trace.
    #[test]
    fn background_recluster_records_under_fresh_trace() {
        let (job_tx, _job_rx) = crossbeam::channel::bounded::<ReclusterJob>(1);
        let (done_tx, done_rx) = crossbeam::channel::bounded::<ReclusterDone>(1);
        let engine = SeerEngine::default();
        let run = engine.recluster_input().compute(1);
        let mut actor = test_actor(engine, 3, VecDeque::from([3u64]), job_tx, done_rx);
        let tenant = default_tenant();
        done_tx
            .send(done_for(
                tenant,
                run.clustering,
                run.shard_count_seconds,
                run.shard_start_offsets,
                3,
                Duration::from_millis(1),
            ))
            .expect("bounded(1) has room");
        actor.poll_recluster_done();

        let spans = actor.metrics.tracer.snapshot();
        let recluster = spans
            .iter()
            .find(|s| s.name == "recluster")
            .expect("install recorded the background job's span");
        assert_eq!(recluster.parent_id, None, "root of its own trace");
        assert_ne!(recluster.trace_id, 0);
    }

    /// A hostile tenant name cannot escape into path tricks; the default
    /// tenant keeps the exact legacy paths.
    #[test]
    fn tenant_paths_are_sanitized_and_default_preserves_legacy() {
        let base = Path::new("/tmp/seer.snap");
        assert_eq!(tenant_snapshot_path(base, DEFAULT_TENANT), base);
        assert_eq!(
            tenant_snapshot_path(base, "machine-a"),
            PathBuf::from("/tmp/seer.snap.machine-a")
        );
        assert_eq!(
            tenant_snapshot_path(base, "../../etc/passwd"),
            PathBuf::from("/tmp/seer.snap..._.._etc_passwd")
        );
        assert_eq!(sanitize_tenant(".."), "_");
        assert_eq!(sanitize_tenant(""), "_");
        let wal = Path::new("/tmp/wal");
        assert_eq!(tenant_wal_dir(wal, DEFAULT_TENANT), wal);
        assert_eq!(
            tenant_wal_dir(wal, "machine b"),
            PathBuf::from("/tmp/wal-machine_b")
        );
    }
}
