//! The daemon's bounded, batched ingestion pipeline.
//!
//! ```text
//! conn readers ──► ingest (bounded) ──► batcher ──► apply (bounded) ──► engine actor
//!                                                      control (queries) ──┘
//! ```
//!
//! Both channels are bounded: when the engine falls behind, the apply
//! channel fills, the batcher stalls, the ingest channel fills, and the
//! connection readers block in `send` — backpressure propagates all the
//! way to the client sockets instead of growing an unbounded queue.
//!
//! The batcher coalesces consecutive event frames from the same
//! connection into batches of up to `batch_max` events, so a client
//! streaming one event per frame still reaches the engine in large
//! batches. Any ordering-sensitive message (intern declarations, flush
//! markers, connection teardown) flushes the pending batch first, which
//! preserves per-connection order end to end.

use crate::quality::{self, QualityState};
use crate::snapshot::DaemonSnapshot;
use crate::stats::SharedMetrics;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TrySendError};
use seer_core::{
    Clustering, PairCountCache, ReclusterInput, Replayer, SeerConfig, SeerEngine, TableDirty,
};
use seer_telemetry::{tlog, Histogram, Level, SpanContext, Tracer};
use seer_trace::wire::{
    ExplainNeighbor, MissPostmortem, QualityReport, QueryRequest, QueryResponse,
};
use seer_trace::{EventSink, FileId, RawPathId, StringTable, TraceEvent};
use seer_wal::{Wal, WalRecord};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Messages from connection readers into the pipeline.
pub(crate) enum Ingest {
    /// Declare a connection-local raw-path id.
    Intern { conn: u64, local: u32, path: String },
    /// Events to apply, ids in the connection's local space. `ctx` is
    /// the decode span of a traced frame; downstream stages parent their
    /// spans under it, extending the causal chain.
    Events {
        conn: u64,
        events: Vec<TraceEvent>,
        ctx: Option<SpanContext>,
    },
    /// Ordered marker: everything this connection sent before it must be
    /// applied before `ack` fires with the connection's applied count.
    Flush { conn: u64, ack: Sender<u64> },
    /// The connection hung up; its remap table can be dropped.
    ConnClosed { conn: u64 },
}

/// Batched messages from the batcher to the engine actor.
pub(crate) enum Apply {
    Interns {
        conn: u64,
        entries: Vec<(u32, String)>,
    },
    Batch {
        conn: u64,
        events: Vec<TraceEvent>,
        /// The batcher-flush span this batch was coalesced under, if any
        /// frame in it was traced; parents the `engine_apply` span.
        ctx: Option<SpanContext>,
    },
    Flush {
        conn: u64,
        ack: Sender<u64>,
    },
    ConnClosed {
        conn: u64,
    },
}

/// Out-of-band requests answered by the engine actor.
pub(crate) enum Control {
    Query {
        query: QueryRequest,
        /// The connection's `query` root span; the actor's `engine_answer`
        /// span (and any recluster it triggers) parents under it.
        ctx: Option<SpanContext>,
        reply: Sender<QueryResponse>,
    },
}

/// Tunables the actor needs (a subset of the server's `DaemonConfig`).
pub(crate) struct ActorConfig {
    pub snapshot_path: Option<PathBuf>,
    pub recluster_every: u64,
    /// Force a full shared-neighbor recount after this many consecutive
    /// incremental reclusterings (defense in depth against cache drift;
    /// `0` never forces one — incremental maintenance is exact either
    /// way, falling back to full on structural change by itself).
    pub recluster_full_every: u64,
    pub snapshot_every: u64,
    pub tick: Duration,
    pub file_size: u64,
    pub recluster_threads: usize,
    /// Where to dump the flight-recorder ring (JSON lines) when the
    /// actor exits, gracefully or by kill. `None` skips the dump.
    pub flight_path: Option<PathBuf>,
    /// Engine configuration for the *cold* base of a `History` replay
    /// (mirrors the server's cold-start configuration).
    pub engine: SeerConfig,
    /// Cadence of background quality evaluations; `Duration::ZERO`
    /// disables the whole quality plane (evaluator, shadow LRU, and
    /// postmortem capture).
    pub eval_every: Duration,
    /// Simulated-disconnection window the evaluator scores against,
    /// in trace seconds.
    pub eval_window_secs: u64,
    /// Byte budget for the evaluator's coverage-at-budget numbers.
    pub eval_budget: u64,
    /// Entry cap of the shadow-LRU comparator.
    pub shadow_lru_cap: usize,
}

/// A frozen reclustering job handed to the background worker. The input
/// is an immutable copy of the engine's neighbor lists and path table;
/// the actor keeps applying batches while the worker computes.
struct ReclusterJob {
    input: ReclusterInput,
    /// The neighbor-table delta since the previous job's view (drained
    /// at the same moment `input` was captured), letting the worker
    /// maintain its pair-count cache incrementally. `None` forces a
    /// full recount.
    dirty: Option<TableDirty>,
    /// `events_applied` at snapshot time — the generation the finished
    /// clustering will be tagged with.
    generation: u64,
    /// For a fresh-query-triggered job, the query's `engine_answer` span;
    /// a periodic job has no inbound context and starts its own trace.
    ctx: Option<SpanContext>,
}

/// A finished clustering coming back from the worker. Carries the raw
/// timings instead of recorded spans: the *actor* records the
/// `recluster`/`shard_count` spans at install time, where it knows
/// whether a traced query ended up waiting on this job — an untraced
/// periodic job a fresh query reuses still lands in that query's trace.
struct ReclusterDone {
    clustering: Clustering,
    generation: u64,
    /// When the worker started computing.
    started: Instant,
    /// Wall-clock time of the whole computation.
    wall: Duration,
    /// Per-shard duration of the shared-neighbor counting phase.
    shard_seconds: Vec<Duration>,
    /// Offset from `started` at which each counting shard began.
    shard_start_offsets: Vec<Duration>,
    /// Whether the counting phase ran incrementally off the worker's
    /// pair-count cache (vs a full recount).
    incremental: bool,
    /// The context the job was *requested* with, if any.
    ctx: Option<SpanContext>,
}

/// The recluster worker: receives frozen jobs, computes clusterings with
/// the configured shard count, and sends them back. Exits when the job
/// channel disconnects (actor gone) or the done channel does.
///
/// The worker only computes and times; span recording happens on the
/// actor when the result is installed (see [`ReclusterDone`]).
fn run_recluster_worker(
    job_rx: &Receiver<ReclusterJob>,
    done_tx: &Sender<ReclusterDone>,
    threads: usize,
    full_every: u64,
) {
    // Pre-relation pair counts carried between consecutive jobs. The
    // queue is FIFO and each job's dirty delta spans exactly the gap to
    // the previous job's view, so the cache chain stays valid; every
    // `full_every` incremental runs the cache is dropped to force a
    // fresh full recount.
    let mut cache: Option<PairCountCache> = None;
    let mut since_full: u64 = 0;
    while let Ok(job) = job_rx.recv() {
        if full_every > 0 && since_full >= full_every {
            cache = None;
        }
        let started = Instant::now();
        let run = job
            .input
            .compute_incremental(threads, job.dirty.as_ref(), &mut cache);
        since_full = if run.incremental { since_full + 1 } else { 0 };
        let wall = started.elapsed();
        let done = ReclusterDone {
            clustering: run.clustering,
            generation: job.generation,
            started,
            wall,
            shard_seconds: run.shard_count_seconds,
            shard_start_offsets: run.shard_start_offsets,
            incremental: run.incremental,
            ctx: job.ctx,
        };
        if done_tx.send(done).is_err() {
            return;
        }
    }
}

/// Coalesces ingest messages into batches and forwards them downstream.
/// Exits when the ingest channel disconnects (graceful shutdown), the
/// apply channel disconnects (actor died), or `kill` is raised.
pub(crate) fn run_batcher(
    batch_max: usize,
    batch_max_wait: Duration,
    ingest_rx: Receiver<Ingest>,
    apply_tx: Sender<Apply>,
    flush_timer: Histogram,
    tracer: Tracer,
    kill: Arc<AtomicBool>,
) {
    // A pending batch remembers the first traced frame coalesced into it;
    // the flush span continues that frame's causal chain.
    type PendingEvents = (u64, Vec<TraceEvent>, Option<SpanContext>);
    let mut pending_events: Option<PendingEvents> = None;
    let mut pending_interns: Option<(u64, Vec<(u32, String)>)> = None;
    // Timing the send captures backpressure: a full apply channel shows
    // up here as batcher-flush latency, not as silent queue growth.
    let flush_events = |p: &mut Option<PendingEvents>, tx: &Sender<Apply>| -> bool {
        match p.take() {
            Some((conn, events, ctx)) => {
                let _t = flush_timer.start_timer();
                // The span covers the send, so backpressure blocking is
                // visible on the trace timeline too.
                let span = ctx.map(|c| {
                    let mut s = tracer.child("batcher_flush", c);
                    s.attr("events", events.len());
                    s
                });
                let flush_ctx = span.as_ref().map(seer_telemetry::Span::context);
                tx.send(Apply::Batch {
                    conn,
                    events,
                    ctx: flush_ctx,
                })
                .is_ok()
            }
            None => true,
        }
    };
    let flush_interns = |p: &mut Option<(u64, Vec<(u32, String)>)>, tx: &Sender<Apply>| -> bool {
        match p.take() {
            Some((conn, entries)) => tx.send(Apply::Interns { conn, entries }).is_ok(),
            None => true,
        }
    };
    loop {
        if kill.load(Ordering::Relaxed) {
            return;
        }
        match ingest_rx.recv_timeout(batch_max_wait) {
            Ok(Ingest::Intern { conn, local, path }) => {
                if !flush_events(&mut pending_events, &apply_tx) {
                    return;
                }
                match &mut pending_interns {
                    Some((c, entries)) if *c == conn => entries.push((local, path)),
                    _ => {
                        if !flush_interns(&mut pending_interns, &apply_tx) {
                            return;
                        }
                        pending_interns = Some((conn, vec![(local, path)]));
                    }
                }
            }
            Ok(Ingest::Events {
                conn,
                mut events,
                ctx,
            }) => {
                if !flush_interns(&mut pending_interns, &apply_tx) {
                    return;
                }
                match &mut pending_events {
                    Some((c, buf, pending_ctx)) if *c == conn => {
                        buf.append(&mut events);
                        if pending_ctx.is_none() {
                            *pending_ctx = ctx;
                        }
                    }
                    _ => {
                        if !flush_events(&mut pending_events, &apply_tx) {
                            return;
                        }
                        pending_events = Some((conn, events, ctx));
                    }
                }
                if pending_events
                    .as_ref()
                    .is_some_and(|(_, b, _)| b.len() >= batch_max)
                    && !flush_events(&mut pending_events, &apply_tx)
                {
                    return;
                }
            }
            Ok(Ingest::Flush { conn, ack }) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                    || apply_tx.send(Apply::Flush { conn, ack }).is_err()
                {
                    return;
                }
            }
            Ok(Ingest::ConnClosed { conn }) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                    || apply_tx.send(Apply::ConnClosed { conn }).is_err()
                {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !flush_interns(&mut pending_interns, &apply_tx)
                    || !flush_events(&mut pending_events, &apply_tx)
                {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let _ = flush_interns(&mut pending_interns, &apply_tx);
                let _ = flush_events(&mut pending_events, &apply_tx);
                return;
            }
        }
    }
}

/// State owned by the engine actor thread.
struct Actor {
    engine: SeerEngine,
    strings: StringTable,
    /// Per-connection translation from wire-local ids to global ids.
    remap: HashMap<u64, Vec<Option<RawPathId>>>,
    /// Per-connection count of events applied (for flush acks).
    per_conn: HashMap<u64, u64>,
    events_applied: u64,
    since_recluster: u64,
    since_snapshot: u64,
    /// `events_applied` when the installed clustering was snapshotted;
    /// a query is *stale* when this lags the live counter.
    clustering_generation: u64,
    /// Generations of jobs handed to the worker, oldest first. The
    /// worker is FIFO, so completions arrive in this order.
    inflight: VecDeque<u64>,
    /// A drained dirty delta whose job never reached the worker (full
    /// queue); merged into the next job so the worker's pair-count
    /// cache chain stays unbroken.
    pending_dirty: Option<TableDirty>,
    job_tx: Sender<ReclusterJob>,
    done_rx: Receiver<ReclusterDone>,
    cfg: ActorConfig,
    metrics: SharedMetrics,
    /// The write-ahead log, when the daemon runs with one. Appended
    /// before each batch reaches the engine; compacted after snapshots.
    wal: Option<Wal>,
    /// The quality plane: evaluator worker, shadow LRU, series rings,
    /// miss log, and retained postmortems. `None` when disabled.
    quality: Option<QualityState>,
}

impl Actor {
    fn apply(&mut self, item: Apply) {
        match item {
            Apply::Interns { conn, entries } => {
                let table = self.remap.entry(conn).or_default();
                for (local, path) in entries {
                    let global = self.strings.intern(&path);
                    let idx = local as usize;
                    if table.len() <= idx {
                        table.resize(idx + 1, None);
                    }
                    table[idx] = Some(global);
                }
            }
            Apply::Batch { conn, events, ctx } => {
                let apply_timer = self.metrics.stage_engine_apply.start_timer();
                let mut span = ctx.map(|c| self.metrics.tracer.child("engine_apply", c));
                let n = events.len() as u64;
                let table = self.remap.entry(conn).or_default();
                // Translate into the global id space; an undeclared id is a
                // protocol slip, mapped to a visible sentinel path rather
                // than silently dropped so counts stay consistent.
                let strings = &mut self.strings;
                let remapped: Vec<TraceEvent> = events
                    .into_iter()
                    .map(|ev| TraceEvent {
                        kind: ev.kind.map_paths(&mut |p| {
                            table.get(p.index()).copied().flatten().unwrap_or_else(|| {
                                strings.intern(&format!("/?undeclared/{conn}/{}", p.0))
                            })
                        }),
                        ..ev
                    })
                    .collect();
                // Durability first: the batch (and the intern deltas
                // that make its ids meaningful) hits the log before the
                // engine, so an acknowledged batch is replayable. WAL
                // time stays inside the engine_apply stage timer — the
                // ingest latency clients experience includes it.
                if self.wal.is_some() {
                    let parent = span.as_ref().map(seer_telemetry::Span::context);
                    self.wal_append(self.events_applied + n, &remapped, parent);
                }
                self.engine.on_batch(&remapped, &self.strings);
                self.quality_ingest(&remapped);
                self.events_applied += n;
                *self.per_conn.entry(conn).or_default() += n;
                self.since_recluster += n;
                self.since_snapshot += n;
                self.metrics.events_applied.add(n);
                self.metrics.batches_applied.inc();
                if let Some(s) = &mut span {
                    s.attr("events", n);
                    s.attr("events_applied", self.events_applied);
                }
                drop(span);
                drop(apply_timer);
                self.metrics
                    .observe_generation_lag(self.events_applied, self.clustering_generation);
                self.capture_postmortems();
                self.poll_recluster_done();
                self.poll_eval_done();
                self.maybe_request_eval();
                if self.cfg.recluster_every > 0
                    && self.since_recluster >= self.cfg.recluster_every
                    && self.inflight.is_empty()
                {
                    self.request_recluster(None);
                }
                if self.cfg.snapshot_every > 0 && self.since_snapshot >= self.cfg.snapshot_every {
                    self.write_snapshot();
                }
            }
            Apply::Flush { conn, ack } => {
                let applied = self.per_conn.get(&conn).copied().unwrap_or(0);
                let _ = ack.send(applied);
            }
            Apply::ConnClosed { conn } => {
                self.remap.remove(&conn);
            }
        }
    }

    /// Hands the worker a frozen copy of the engine's tables. Returns
    /// `false` only when the worker is gone (channel disconnected);
    /// a full job queue counts as success because the queued jobs will
    /// finish first and the caller re-requests as needed.
    fn request_recluster(&mut self, ctx: Option<SpanContext>) -> bool {
        // The dirty delta is drained at the same moment the view is
        // frozen, so it describes exactly the changes since the previous
        // drain; any delta stranded by an earlier full queue merges in.
        let mut dirty = self.engine.take_dirty();
        if let Some(prev) = self.pending_dirty.take() {
            dirty.merge(prev);
        }
        let job = ReclusterJob {
            input: self.engine.recluster_input(),
            dirty: Some(dirty),
            generation: self.events_applied,
            ctx,
        };
        match self.job_tx.try_send(job) {
            Ok(()) => {
                self.inflight.push_back(self.events_applied);
                self.metrics
                    .recluster_inflight
                    .set(self.inflight.len() as i64);
                self.since_recluster = 0;
                true
            }
            Err(TrySendError::Full(job)) => {
                // The worker never saw this delta; carry it forward so
                // the next job's delta still spans the full gap.
                self.pending_dirty = job.dirty;
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    }

    /// Installs a finished clustering delivered by the worker. The
    /// worker is FIFO and generations are requested in non-decreasing
    /// order, so installs never regress the generation.
    ///
    /// Records the `recluster` span (with `shard_count` children) here,
    /// retroactively: under the job's own context when it was requested
    /// by a traced query, else under `waiter_ctx` when a traced query is
    /// blocked on this install, else under a fresh root trace.
    fn install_recluster(&mut self, done: ReclusterDone, waiter_ctx: Option<SpanContext>) {
        if let Some(pos) = self.inflight.iter().position(|&g| g == done.generation) {
            self.inflight.remove(pos);
        }
        self.metrics
            .recluster_inflight
            .set(self.inflight.len() as i64);
        let clusters = self
            .engine
            .install_clustering(done.clustering, done.wall, &done.shard_seconds)
            .len();
        let (trace, parent) = match done.ctx.or(waiter_ctx) {
            Some(c) => (c.trace_id, Some(c.span_id)),
            None => (seer_telemetry::new_trace_id(), None),
        };
        let recluster_ctx = self.metrics.tracer.record_complete(
            "recluster",
            trace,
            parent,
            done.started,
            done.wall,
            &[
                ("generation", done.generation.to_string()),
                ("clusters", clusters.to_string()),
                ("incremental", done.incremental.to_string()),
            ],
        );
        for (i, (&shard_wall, &offset)) in done
            .shard_seconds
            .iter()
            .zip(&done.shard_start_offsets)
            .enumerate()
        {
            if let Some(shard_start) = done.started.checked_add(offset) {
                self.metrics.tracer.record_complete(
                    "shard_count",
                    trace,
                    Some(recluster_ctx.span_id),
                    shard_start,
                    shard_wall,
                    &[("shard", i.to_string())],
                );
            }
        }
        self.clustering_generation = done.generation;
        self.metrics.reclusters.inc();
        if done.incremental {
            self.metrics.reclusters_incremental.inc();
        }
        self.metrics.stage_recluster.observe(done.wall);
        self.metrics
            .observe_generation_lag(self.events_applied, self.clustering_generation);
        tlog!(
            Level::Debug,
            "seer_daemon::pipeline",
            "reclustered",
            clusters = clusters,
            generation = done.generation,
            events_applied = self.events_applied,
        );
    }

    /// Folds in any clusterings the worker has finished, without blocking.
    fn poll_recluster_done(&mut self) {
        self.poll_recluster_done_for(None);
    }

    /// Like [`Self::poll_recluster_done`], but on behalf of a traced
    /// fresh query: a pending result covering the query's target
    /// generation is the clustering the query will answer from, so its
    /// span is adopted into the query's trace.
    fn poll_recluster_done_for(&mut self, waiter: Option<(u64, SpanContext)>) {
        while let Ok(done) = self.done_rx.try_recv() {
            let ctx = match waiter {
                Some((target, c)) if done.generation >= target => Some(c),
                _ => None,
            };
            self.install_recluster(done, ctx);
        }
    }

    /// Reclusters on the actor thread — the fallback when the worker is
    /// unavailable. Still uses the configured shard count.
    fn recluster_in_place(&mut self, ctx: Option<SpanContext>) {
        let started = Instant::now();
        let clusters = self
            .engine
            .recluster_with_threads(self.cfg.recluster_threads)
            .len();
        self.clustering_generation = self.events_applied;
        self.since_recluster = 0;
        self.metrics.reclusters.inc();
        self.metrics.stage_recluster.observe(started.elapsed());
        self.metrics
            .observe_generation_lag(self.events_applied, self.clustering_generation);
        let (trace, parent) = match ctx {
            Some(c) => (c.trace_id, Some(c.span_id)),
            None => (seer_telemetry::new_trace_id(), None),
        };
        self.metrics.tracer.record_complete(
            "recluster",
            trace,
            parent,
            started,
            started.elapsed(),
            &[
                ("generation", self.clustering_generation.to_string()),
                ("in_place", "true".to_owned()),
            ],
        );
        tlog!(
            Level::Debug,
            "seer_daemon::pipeline",
            "reclustered in place",
            clusters = clusters,
            events_applied = self.events_applied,
        );
    }

    /// Blocks until a clustering at the *current* generation is
    /// installed. Reuses an in-flight background job when one covers the
    /// target; falls back to an in-place recluster if the worker died.
    fn ensure_fresh_clustering(&mut self, ctx: Option<SpanContext>) {
        let target = self.events_applied;
        self.poll_recluster_done_for(ctx.map(|c| (target, c)));
        while self.engine.clustering().is_none() || self.clustering_generation < target {
            let covered = self.inflight.back().is_some_and(|&g| g >= target);
            if !covered && !self.request_recluster(ctx) {
                self.inflight.clear();
                self.metrics.recluster_inflight.set(0);
                self.recluster_in_place(ctx);
                return;
            }
            match self.done_rx.recv() {
                // A done covering the target is causally part of this
                // query even if the job predates it (an untraced
                // periodic job the query reused): chain it under `ctx`.
                Ok(done) => {
                    let waiter = if done.generation >= target { ctx } else { None };
                    self.install_recluster(done, waiter);
                }
                Err(_) => {
                    self.inflight.clear();
                    self.metrics.recluster_inflight.set(0);
                    self.recluster_in_place(ctx);
                    return;
                }
            }
        }
    }

    fn write_snapshot(&mut self) {
        let mut written = false;
        if let Some(path) = &self.cfg.snapshot_path {
            let _t = self.metrics.stage_snapshot_write.start_timer();
            let snap = DaemonSnapshot {
                engine: self.engine.snapshot(),
                events_applied: self.events_applied,
            };
            match snap.write_atomic(path) {
                Ok(()) => {
                    written = true;
                    self.metrics.snapshots.inc();
                    tlog!(
                        Level::Info,
                        "seer_daemon::pipeline",
                        "snapshot written",
                        path = path.display().to_string(),
                        events_applied = self.events_applied,
                    );
                }
                Err(e) => {
                    tlog!(
                        Level::Warn,
                        "seer_daemon::pipeline",
                        "snapshot write failed",
                        path = path.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
        // A durable snapshot covers every batch at or below its
        // generation, so sealed WAL segments entirely below it are dead
        // weight. Compaction never runs after a *failed* write — the
        // log must keep covering whatever the last good snapshot missed.
        if written {
            if let Some(wal) = &mut self.wal {
                match wal.compact(self.events_applied) {
                    Ok(report) if report.segments_dropped > 0 => {
                        self.metrics
                            .wal_segments_compacted
                            .add(report.segments_dropped as u64);
                        tlog!(
                            Level::Debug,
                            "seer_daemon::pipeline",
                            "wal compacted",
                            segments_dropped = report.segments_dropped as u64,
                            bytes_dropped = report.bytes_dropped,
                        );
                    }
                    Ok(_) => {}
                    Err(e) => {
                        tlog!(
                            Level::Warn,
                            "seer_daemon::pipeline",
                            "wal compaction failed",
                            error = e.to_string(),
                        );
                    }
                }
            }
            self.wal_update_gauges();
        }
        self.since_snapshot = 0;
    }

    /// Appends one remapped batch (and any newly interned strings) to
    /// the WAL. `generation` is the applied-event count *after* the
    /// batch. Failures degrade durability, not availability: they are
    /// logged and counted, and ingest continues.
    fn wal_append(&mut self, generation: u64, events: &[TraceEvent], ctx: Option<SpanContext>) {
        let Some(wal) = &mut self.wal else {
            return;
        };
        let append_timer = self.metrics.stage_wal_append.start_timer();
        let started = Instant::now();
        match wal.append_batch(&self.strings, generation, events) {
            Ok(out) => {
                drop(append_timer);
                self.metrics.wal_records.add(u64::from(out.records));
                self.metrics.wal_appended_bytes.add(out.bytes);
                if out.rotated {
                    self.metrics.wal_rotations.inc();
                }
                if let Some(d) = out.fsync {
                    self.metrics.stage_wal_fsync.observe(d);
                }
                if let Some(c) = ctx {
                    self.metrics.tracer.record_complete(
                        "wal_append",
                        c.trace_id,
                        Some(c.span_id),
                        started,
                        started.elapsed(),
                        &[("bytes", out.bytes.to_string())],
                    );
                }
                if out.rotated {
                    self.wal_update_gauges();
                }
            }
            Err(e) => {
                drop(append_timer);
                self.metrics.wal_append_errors.inc();
                tlog!(
                    Level::Warn,
                    "seer_daemon::pipeline",
                    "wal append failed",
                    generation = generation,
                    error = e.to_string(),
                );
            }
        }
    }

    /// Idle-tick WAL maintenance: under an interval fsync policy, sync
    /// if the window elapsed with appends outstanding, so a quiet daemon
    /// still bounds its loss window.
    fn wal_idle(&mut self) {
        if let Some(wal) = &mut self.wal {
            match wal.maybe_sync() {
                Ok(Some(d)) => self.metrics.stage_wal_fsync.observe(d),
                Ok(None) => {}
                Err(e) => {
                    self.metrics.wal_append_errors.inc();
                    tlog!(
                        Level::Warn,
                        "seer_daemon::pipeline",
                        "wal idle sync failed",
                        error = e.to_string(),
                    );
                }
            }
        }
    }

    /// Refreshes the WAL size gauges from the log's own accounting.
    fn wal_update_gauges(&self) {
        if let Some(wal) = &self.wal {
            let status = wal.status();
            self.metrics
                .wal_segments
                .set(i64::try_from(status.segments).unwrap_or(i64::MAX));
            self.metrics
                .wal_disk_bytes
                .set(i64::try_from(status.disk_bytes).unwrap_or(i64::MAX));
        }
    }

    /// Answers a `History` query: replay the WAL (from the newest
    /// snapshot at or below `target`, else from generation zero) into a
    /// fresh engine, stop after the last batch at or below `target`,
    /// recluster, and select a hoard — exactly what the live daemon
    /// would have answered at that generation.
    ///
    /// Runs on the actor thread, which is what makes reading the live
    /// log safe: no append can race the replay. The flush that precedes
    /// every query means the log already contains everything this
    /// connection sent.
    fn answer_history(&mut self, target: u64, budget: u64) -> QueryResponse {
        let err = |message: String| QueryResponse::Error { message };
        let Some(wal) = &mut self.wal else {
            return err("history unavailable: daemon is running without a WAL".into());
        };
        if target > self.events_applied {
            return err(format!(
                "generation {target} is in the future (events applied: {})",
                self.events_applied
            ));
        }
        if let Err(e) = wal.sync() {
            return err(format!("history unavailable: wal sync failed: {e}"));
        }
        let compacted = wal.compacted_through();
        // Base state: prefer the newest on-disk snapshot when it is at
        // or below the target (fewer batches to replay); otherwise fall
        // back to a cold engine, which needs the log to reach all the
        // way back to generation zero.
        let snap_base =
            self.cfg
                .snapshot_path
                .as_deref()
                .and_then(|p| match DaemonSnapshot::load(p) {
                    Ok(Some(s)) if s.events_applied <= target => Some(s),
                    _ => None,
                });
        let (base_engine, base_gen) = match snap_base {
            Some(s) => (SeerEngine::from_snapshot(s.engine), s.events_applied),
            None if compacted == 0 => (SeerEngine::new(self.cfg.engine.clone()), 0),
            None => {
                return err(format!(
                    "generation {target} unreachable: log compacted through {compacted} \
                     and no snapshot at or below the target exists"
                ));
            }
        };
        let mut rep = Replayer::new(base_engine, StringTable::new(), base_gen);
        let wal = self.wal.as_ref().expect("checked above");
        let stats = match wal.replay(|rec| match rec {
            WalRecord::Interns { base, paths } => {
                rep.declare(base, &paths);
                true
            }
            WalRecord::Batch { generation, events } => {
                if generation > target {
                    return false;
                }
                rep.apply(generation, &events);
                true
            }
        }) {
            Ok(stats) => stats,
            Err(e) => return err(format!("history replay failed: {e}")),
        };
        if stats.damaged && rep.events_applied() < target {
            return err(format!(
                "history incomplete: log damage stopped replay at generation {}",
                rep.events_applied()
            ));
        }
        if rep.gaps() > 0 {
            return err(format!(
                "history incomplete: log does not connect to the base state \
                 ({} generation gaps; the log may not reach back to generation {base_gen})",
                rep.gaps()
            ));
        }
        let (mut engine, _strings, achieved) = rep.into_parts();
        let clusters = engine
            .recluster_with_threads(self.cfg.recluster_threads.max(1))
            .len();
        let file_size = self.cfg.file_size;
        let sel = engine.choose_hoard(budget, &|_| file_size);
        let files = sel
            .files
            .iter()
            .filter_map(|&f| engine.paths().resolve(f).map(str::to_owned))
            .collect();
        QueryResponse::History {
            generation: achieved,
            files,
            bytes: sel.bytes,
            clusters_taken: sel.clusters_taken,
            clusters_skipped: sel.clusters_skipped,
            clusters,
            files_known: engine.paths().len(),
        }
    }

    /// Quality-plane work on the ingest path: advance trace time and
    /// feed every referenced path into the shadow-LRU comparator. A
    /// no-op (one branch) when the plane is disabled.
    ///
    /// Paths resolve through the *canonical* table, so references the
    /// observer filtered out (or paths it rewrote during
    /// canonicalization) are skipped — the shadow only ranks files SEER
    /// itself could have hoarded, keeping the comparison fair.
    fn quality_ingest(&mut self, events: &[TraceEvent]) {
        let Some(q) = self.quality.as_mut() else {
            return;
        };
        let strings = &self.strings;
        let engine = &self.engine;
        for ev in events {
            if ev.time > q.last_event_time {
                q.last_event_time = ev.time;
            }
            let _ = ev.kind.map_paths(&mut |p| {
                if let Some(s) = strings.resolve(p) {
                    if let Some(f) = engine.paths().get(s) {
                        q.shadow.touch(f);
                    }
                }
                p
            });
        }
    }

    /// Drains newly detected hoard misses into the miss log and captures
    /// a provenance postmortem for each: rank, clusters, and strongest
    /// neighbors *as they are right now*, plus the WAL generation so
    /// `History` can replay the hoard as of the miss.
    fn capture_postmortems(&mut self) {
        if self.quality.is_none() {
            return;
        }
        let auto = self.engine.take_misses();
        let q = self.quality.as_mut().expect("checked above");
        for f in auto {
            q.miss_log.record_auto(f, q.last_event_time);
        }
        // The daemon has no reconnection cycle to consume the
        // hoard-next queue; drain it so it cannot grow without bound.
        let _ = q.miss_log.take_pending();
        let recent: Vec<seer_replication::MissRecord> = q.miss_log.take_recent().to_vec();
        if recent.is_empty() {
            return;
        }
        let engine = &self.engine;
        let rank = engine.rank();
        let pos: HashMap<FileId, usize> = rank.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        for rec in recent {
            let path = engine
                .paths()
                .resolve(rec.file)
                .unwrap_or("<unknown>")
                .to_owned();
            let pm = MissPostmortem {
                id: q.next_miss_id,
                path,
                generation: self.events_applied,
                clustering_generation: self.clustering_generation,
                time_secs: rec.time.as_secs(),
                severity: rec.severity.map(seer_replication::Severity::code),
                auto: rec.severity.is_none(),
                rank: pos.get(&rec.file).copied(),
                ranked: rank.len(),
                clusters: engine
                    .clustering()
                    .map(|c| c.membership_summary(rec.file))
                    .unwrap_or_default(),
                neighbors: neighbor_evidence(engine, rec.file, 5),
            };
            q.next_miss_id += 1;
            q.retain_postmortem(pm);
        }
    }

    /// Freezes everything the evaluator needs into a job.
    fn build_eval_job(&self) -> quality::EvalJob {
        let q = self.quality.as_ref().expect("quality enabled");
        quality::EvalJob {
            input: self.engine.eval_input(),
            shadow: q.shadow.order(),
            window_secs: q.window_secs,
            budget: q.budget,
            file_size: self.cfg.file_size,
            generation: self.events_applied,
            clustering_generation: self.clustering_generation,
            misses_by_severity: q.miss_log.severity_histogram(),
            auto_misses: q.miss_log.auto_count() as u64,
            eval_index: q.evals + 1,
        }
    }

    /// Records a finished evaluation: stage timer, gauges, and the
    /// series rings backing `seer top` sparklines.
    fn install_eval(&mut self, report: QualityReport, wall: Duration) {
        self.metrics.stage_evaluate.observe(wall);
        self.metrics.quality_evals.inc();
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        self.metrics
            .quality_seer_missfree_bytes
            .set(clamp(report.seer_missfree_bytes));
        self.metrics
            .quality_lru_missfree_bytes
            .set(clamp(report.lru_missfree_bytes));
        self.metrics
            .quality_working_set_bytes
            .set(clamp(report.working_set_bytes));
        self.metrics
            .quality_needed_files
            .set(clamp(report.needed_files as u64));
        if let Some(q) = self.quality.as_mut() {
            q.install(report);
        }
    }

    /// Folds in any evaluations the worker finished, without blocking.
    fn poll_eval_done(&mut self) {
        let Some(q) = self.quality.as_mut() else {
            return;
        };
        let mut finished = Vec::new();
        while let Ok(done) = q.done_rx.try_recv() {
            q.inflight = false;
            finished.push(done);
        }
        for d in finished {
            self.install_eval(d.report, d.wall);
        }
    }

    /// Hands the evaluator a fresh job when the cadence timer says one
    /// is due and none is in flight.
    fn maybe_request_eval(&mut self) {
        let due = self.quality.as_ref().is_some_and(QualityState::due);
        if !due || self.events_applied == 0 {
            return;
        }
        let job = self.build_eval_job();
        let q = self.quality.as_mut().expect("checked above");
        if let Some(tx) = &q.job_tx {
            if tx.try_send(job).is_ok() {
                q.inflight = true;
                q.last_eval = Some(Instant::now());
            }
        }
    }

    /// Answers an `Explain` query: the file's decision provenance.
    fn answer_explain(&mut self, path: &str, ctx: Option<SpanContext>) -> QueryResponse {
        let Some(file) = self.engine.paths().get(path) else {
            return QueryResponse::Error {
                message: format!("unknown path: {path} (never observed by the daemon)"),
            };
        };
        let (generation, stale) = self.prepare_clustering(false, ctx);
        let rank_vec = self.engine.rank();
        let rank = rank_vec.iter().position(|&f| f == file);
        let last = self.engine.correlator().activity().last_ref(file);
        QueryResponse::Explain {
            path: path.to_owned(),
            rank,
            ranked: rank_vec.len(),
            always_hoard: self.engine.always_hoard().contains(&file),
            last_ref_secs: last.map(|r| r.time.as_secs()),
            ref_count: last.map_or(0, |r| r.count),
            clusters: self
                .engine
                .clustering()
                .map(|c| c.membership_summary(file))
                .unwrap_or_default(),
            neighbors: neighbor_evidence(&self.engine, file, 8),
            generation,
            stale,
        }
    }

    /// Answers a `Quality` query by evaluating *inline* on the actor,
    /// so after a flush the answer reflects everything applied — an
    /// online quality query equals an offline evaluation of the same
    /// events (the equivalence test pins this).
    fn answer_quality(&mut self) -> QueryResponse {
        if self.quality.is_none() {
            return QueryResponse::Error {
                message: "quality plane disabled (run with a nonzero eval interval)".into(),
            };
        }
        let job = self.build_eval_job();
        let started = Instant::now();
        let report = quality::evaluate(&job);
        self.install_eval(report.clone(), started.elapsed());
        let q = self.quality.as_ref().expect("checked above");
        QueryResponse::Quality {
            report,
            series: q.series.snapshot(),
        }
    }

    /// Answers a `Miss` query from the retained postmortems.
    fn answer_miss(&self, id: Option<u64>) -> QueryResponse {
        let Some(q) = self.quality.as_ref() else {
            return QueryResponse::Error {
                message: "miss postmortems unavailable: quality plane disabled".into(),
            };
        };
        match id {
            None => QueryResponse::Misses {
                postmortems: q.postmortems.iter().cloned().collect(),
            },
            Some(want) => match q.postmortems.iter().find(|p| p.id == want) {
                Some(p) => QueryResponse::Misses {
                    postmortems: vec![p.clone()],
                },
                None => QueryResponse::Error {
                    message: format!(
                        "no postmortem with id {want} (retaining {} of {} recorded)",
                        q.postmortems.len(),
                        q.next_miss_id
                    ),
                },
            },
        }
    }

    /// Prepares the clustering for a hoard/clusters answer. `fresh`
    /// blocks until the clustering reflects everything applied so far —
    /// this makes an online hoard query equivalent to an offline replay
    /// followed by recluster + choose_hoard. A non-fresh query reuses
    /// the cached clustering (counting it as stale when the generation
    /// lags), so it never waits on a recluster.
    fn prepare_clustering(&mut self, fresh: bool, ctx: Option<SpanContext>) -> (u64, bool) {
        let waiter = if fresh {
            ctx.map(|c| (self.events_applied, c))
        } else {
            None
        };
        self.poll_recluster_done_for(waiter);
        if fresh || self.engine.clustering().is_none() {
            self.ensure_fresh_clustering(ctx);
        }
        let stale = self.clustering_generation < self.events_applied;
        if stale {
            self.metrics.stale_queries.inc();
        }
        self.metrics
            .observe_generation_lag(self.events_applied, self.clustering_generation);
        (self.clustering_generation, stale)
    }

    fn answer(
        &mut self,
        query: QueryRequest,
        ctx: Option<SpanContext>,
        ingest_depth: usize,
        alive: bool,
    ) -> QueryResponse {
        // The answer span covers everything the actor does for the query;
        // a recluster forced by `fresh` chains under it.
        let mut span = ctx.map(|c| self.metrics.tracer.child("engine_answer", c));
        let span_ctx = span.as_ref().map(seer_telemetry::Span::context);
        if let Some(s) = &mut span {
            s.attr("query", query.name());
            s.attr("events_applied", self.events_applied);
        }
        match query {
            QueryRequest::Hoard { budget, fresh } => {
                let (generation, stale) = self.prepare_clustering(fresh, span_ctx);
                let file_size = self.cfg.file_size;
                let sel = self.engine.choose_hoard(budget, &|_| file_size);
                let files = sel
                    .files
                    .iter()
                    .filter_map(|&f| self.engine.paths().resolve(f).map(str::to_owned))
                    .collect();
                QueryResponse::Hoard {
                    files,
                    bytes: sel.bytes,
                    clusters_taken: sel.clusters_taken,
                    clusters_skipped: sel.clusters_skipped,
                    generation,
                    stale,
                }
            }
            QueryRequest::Clusters { fresh } => {
                let (generation, stale) = self.prepare_clustering(fresh, span_ctx);
                let clustering = self.engine.clustering().expect("prepared above");
                let mut largest: Vec<usize> = clustering.clusters.iter().map(|c| c.len()).collect();
                largest.sort_unstable_by(|a, b| b.cmp(a));
                largest.truncate(8);
                QueryResponse::Clusters {
                    count: clustering.len(),
                    largest,
                    files_known: self.engine.paths().len(),
                    generation,
                    stale,
                }
            }
            QueryRequest::Stats => {
                let s = self.metrics.snapshot_view();
                QueryResponse::Stats {
                    events_received: s.events_received,
                    events_applied: s.events_applied,
                    batches_applied: s.batches_applied,
                    max_queue_depth: s.max_queue_depth,
                    reclusters: s.reclusters,
                    snapshots: s.snapshots,
                    connections: s.connections,
                }
            }
            QueryRequest::Metrics => {
                self.metrics.observe_queue_depth(ingest_depth);
                self.metrics.touch_uptime();
                QueryResponse::Metrics {
                    snapshot: self.metrics.registry.snapshot(),
                }
            }
            QueryRequest::Health => QueryResponse::Health {
                healthy: alive,
                events_applied: self.events_applied,
                queue_depth: ingest_depth,
            },
            QueryRequest::Dump => QueryResponse::Dump {
                spans: self.metrics.tracer.snapshot(),
                dropped: self.metrics.tracer.dropped(),
            },
            QueryRequest::History { generation, budget } => self.answer_history(generation, budget),
            QueryRequest::Explain { path } => self.answer_explain(&path, span_ctx),
            QueryRequest::Quality => self.answer_quality(),
            QueryRequest::Miss { id } => self.answer_miss(id),
        }
    }
}

/// The strongest semantic-distance neighbors of `file`, resolved to
/// canonical paths with their evidence counts — the shared provenance
/// payload of `Explain` answers and miss postmortems.
fn neighbor_evidence(engine: &SeerEngine, file: FileId, k: usize) -> Vec<ExplainNeighbor> {
    engine
        .correlator()
        .distance()
        .table()
        .strongest_neighbors(file, k)
        .into_iter()
        .filter_map(|(to, distance, evidence)| {
            engine.paths().resolve(to).map(|p| ExplainNeighbor {
                path: p.to_owned(),
                distance,
                evidence,
            })
        })
        .collect()
}

/// Runs the engine actor until the apply channel disconnects (graceful
/// shutdown: drain, recluster, snapshot, exit) or `kill` is raised
/// (abrupt: exit immediately *without* snapshotting, leaving the last
/// on-disk snapshot as the recovery point).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_engine_actor(
    engine: SeerEngine,
    strings: StringTable,
    events_applied: u64,
    wal: Option<Wal>,
    cfg: ActorConfig,
    apply_rx: Receiver<Apply>,
    control_rx: Receiver<Control>,
    ingest_depth: Receiver<Ingest>,
    metrics: SharedMetrics,
    kill: Arc<AtomicBool>,
) {
    let tick = cfg.tick;
    // The recluster worker owns the expensive computation; both channels
    // are small because the actor keeps at most one periodic job and one
    // fresh-query job outstanding at a time.
    let (job_tx, job_rx) = crossbeam::channel::bounded::<ReclusterJob>(4);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<ReclusterDone>(4);
    let worker = {
        let threads = cfg.recluster_threads.max(1);
        let full_every = cfg.recluster_full_every;
        thread::Builder::new()
            .name("seer-recluster".into())
            .spawn(move || run_recluster_worker(&job_rx, &done_tx, threads, full_every))
            .ok()
    };
    let quality = if cfg.eval_every > Duration::ZERO {
        Some(QualityState::spawn(
            cfg.eval_every,
            cfg.eval_window_secs,
            cfg.eval_budget,
            cfg.shadow_lru_cap,
            &metrics,
        ))
    } else {
        None
    };
    let mut actor = Actor {
        engine,
        strings,
        remap: HashMap::new(),
        per_conn: HashMap::new(),
        events_applied,
        since_recluster: 0,
        since_snapshot: 0,
        clustering_generation: 0,
        inflight: VecDeque::new(),
        pending_dirty: None,
        job_tx,
        done_rx,
        cfg,
        metrics,
        wal,
        quality,
    };
    actor.wal_update_gauges();
    // A recovered snapshot's applied count seeds the counter so restart
    // does not appear to reset progress.
    actor.metrics.events_applied.set_total(actor.events_applied);
    loop {
        if kill.load(Ordering::Relaxed) {
            // Abrupt death: no snapshot — but the flight recorder is
            // exactly for reconstructing what led up to a crash, so dump
            // it before abandoning everything.
            dump_flight(&actor);
            return;
        }
        while let Ok(Control::Query { query, ctx, reply }) = control_rx.try_recv() {
            let depth = ingest_depth.len();
            let answer = actor.answer(query, ctx, depth, true);
            let _ = reply.send(answer);
        }
        match apply_rx.recv_timeout(tick) {
            Ok(item) => actor.apply(item),
            Err(RecvTimeoutError::Timeout) => {
                // Idle tick: fold in finished clusterings and quality
                // evaluations, start a background recluster if the
                // cache went stale, keep the evaluator cadence alive,
                // and snapshot pending work so quiet periods converge.
                actor.poll_recluster_done();
                actor.poll_eval_done();
                if actor.cfg.recluster_every > 0
                    && actor.since_recluster > 0
                    && actor.inflight.is_empty()
                {
                    actor.request_recluster(None);
                }
                actor.maybe_request_eval();
                if actor.cfg.snapshot_every > 0 && actor.since_snapshot > 0 {
                    actor.write_snapshot();
                }
                actor.wal_idle();
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Graceful epilogue: every producer is gone and the queue is drained.
    while let Ok(Control::Query { query, ctx, reply }) = control_rx.try_recv() {
        let answer = actor.answer(query, ctx, 0, false);
        let _ = reply.send(answer);
    }
    actor.poll_recluster_done();
    if actor.engine.clustering().is_none() || actor.clustering_generation < actor.events_applied {
        actor.ensure_fresh_clustering(None);
    }
    actor.write_snapshot();
    // The log's tail may still be unsynced under an interval policy; a
    // graceful exit leaves nothing for the fsync window to lose.
    if let Some(wal) = &mut actor.wal {
        if let Err(e) = wal.sync() {
            tlog!(
                Level::Warn,
                "seer_daemon::pipeline",
                "wal final sync failed",
                error = e.to_string(),
            );
        }
    }
    dump_flight(&actor);
    // Dropping the job sender lets the worker's recv disconnect; join so
    // a graceful shutdown leaves no thread behind. (The kill path above
    // returns without joining — the workers notice the disconnect and
    // exit on their own.)
    let Actor {
        job_tx, quality, ..
    } = actor;
    drop(job_tx);
    if let Some(mut q) = quality {
        q.shutdown();
    }
    if let Some(handle) = worker {
        let _ = handle.join();
    }
}

/// Writes the flight-recorder ring to the configured dump path, one
/// JSON line per span. Failures are logged, never fatal — the dump is a
/// diagnostic of last resort, not part of the data path.
fn dump_flight(actor: &Actor) {
    let Some(path) = &actor.cfg.flight_path else {
        return;
    };
    if !actor.metrics.tracer.enabled() {
        return;
    }
    let spans = actor.metrics.tracer.snapshot();
    let result = std::fs::File::create(path).and_then(|f| {
        let mut w = std::io::BufWriter::new(f);
        seer_telemetry::write_flight_jsonl(&mut w, &spans)?;
        std::io::Write::flush(&mut w)
    });
    match result {
        Ok(()) => tlog!(
            Level::Info,
            "seer_daemon::pipeline",
            "flight recorder dumped",
            path = path.display().to_string(),
            spans = spans.len() as u64,
            dropped = actor.metrics.tracer.dropped(),
        ),
        Err(e) => tlog!(
            Level::Warn,
            "seer_daemon::pipeline",
            "flight recorder dump failed",
            path = path.display().to_string(),
            error = e.to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_telemetry::TraceId;

    /// A traced fresh query that reuses an in-flight recluster job
    /// *requested without a context* (a periodic or idle-tick job) must
    /// adopt it: the `recluster` span recorded at install time lands in
    /// the query's trace, parented under the waiting context.
    #[test]
    fn waiting_query_adopts_untraced_recluster_job() {
        let (job_tx, _job_rx) = crossbeam::channel::bounded::<ReclusterJob>(1);
        let (done_tx, done_rx) = crossbeam::channel::bounded::<ReclusterDone>(1);
        let engine = SeerEngine::default();
        let run = engine.recluster_input().compute(1);
        let mut actor = Actor {
            engine,
            strings: StringTable::new(),
            remap: HashMap::new(),
            per_conn: HashMap::new(),
            events_applied: 5,
            since_recluster: 0,
            since_snapshot: 0,
            clustering_generation: 0,
            // One untraced job already in flight, covering the target
            // generation — exactly what the idle tick leaves behind.
            inflight: VecDeque::from([5u64]),
            pending_dirty: None,
            job_tx,
            done_rx,
            cfg: ActorConfig {
                snapshot_path: None,
                recluster_every: 0,
                recluster_full_every: 0,
                snapshot_every: 0,
                tick: Duration::from_millis(50),
                file_size: 1,
                recluster_threads: 1,
                flight_path: None,
                engine: SeerConfig::default(),
                eval_every: Duration::ZERO,
                eval_window_secs: 0,
                eval_budget: 0,
                shadow_lru_cap: 0,
            },
            metrics: crate::stats::new_shared_with(Tracer::new(64, Duration::from_secs(1))),
            wal: None,
            quality: None,
        };
        // The worker stand-in finishes the job only once the query is
        // already blocked waiting on it.
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            done_tx
                .send(ReclusterDone {
                    clustering: run.clustering,
                    generation: 5,
                    started: Instant::now(),
                    wall: Duration::from_millis(3),
                    shard_seconds: run.shard_count_seconds,
                    shard_start_offsets: run.shard_start_offsets,
                    incremental: false,
                    ctx: None,
                })
                .expect("actor is waiting");
        });

        let ctx = actor.metrics.tracer.record_complete(
            "engine_answer",
            TraceId(42),
            None,
            Instant::now(),
            Duration::ZERO,
            &[],
        );
        actor.ensure_fresh_clustering(Some(ctx));
        sender.join().expect("worker stand-in");

        assert_eq!(actor.clustering_generation, 5);
        let spans = actor.metrics.tracer.snapshot();
        let recluster = spans
            .iter()
            .find(|s| s.name == "recluster")
            .expect("install recorded the adopted job's span");
        assert_eq!(recluster.trace_id, 42, "span joins the waiting trace");
        assert_eq!(recluster.parent_id, Some(ctx.span_id.0));
        for shard in spans.iter().filter(|s| s.name == "shard_count") {
            assert_eq!(shard.parent_id, Some(recluster.span_id));
        }
    }

    /// A traced fresh query whose covering job *already finished* — the
    /// done is sitting in the channel when the query polls — still
    /// adopts it: the clustering being installed is the one the query
    /// answers from, so its span belongs in the query's trace.
    #[test]
    fn traced_query_adopts_already_finished_recluster() {
        let (job_tx, _job_rx) = crossbeam::channel::bounded::<ReclusterJob>(1);
        let (done_tx, done_rx) = crossbeam::channel::bounded::<ReclusterDone>(1);
        let engine = SeerEngine::default();
        let run = engine.recluster_input().compute(1);
        let mut actor = Actor {
            engine,
            strings: StringTable::new(),
            remap: HashMap::new(),
            per_conn: HashMap::new(),
            events_applied: 7,
            since_recluster: 0,
            since_snapshot: 0,
            clustering_generation: 0,
            inflight: VecDeque::from([7u64]),
            pending_dirty: None,
            job_tx,
            done_rx,
            cfg: ActorConfig {
                snapshot_path: None,
                recluster_every: 0,
                recluster_full_every: 0,
                snapshot_every: 0,
                tick: Duration::from_millis(50),
                file_size: 1,
                recluster_threads: 1,
                flight_path: None,
                engine: SeerConfig::default(),
                eval_every: Duration::ZERO,
                eval_window_secs: 0,
                eval_budget: 0,
                shadow_lru_cap: 0,
            },
            metrics: crate::stats::new_shared_with(Tracer::new(64, Duration::from_secs(1))),
            wal: None,
            quality: None,
        };
        done_tx
            .send(ReclusterDone {
                clustering: run.clustering,
                generation: 7,
                started: Instant::now(),
                wall: Duration::from_millis(2),
                shard_seconds: run.shard_count_seconds,
                shard_start_offsets: run.shard_start_offsets,
                incremental: false,
                ctx: None,
            })
            .expect("bounded(1) has room");

        let ctx = actor.metrics.tracer.record_complete(
            "engine_answer",
            TraceId(77),
            None,
            Instant::now(),
            Duration::ZERO,
            &[],
        );
        let (generation, stale) = actor.prepare_clustering(true, Some(ctx));
        assert_eq!(generation, 7);
        assert!(!stale);

        let spans = actor.metrics.tracer.snapshot();
        let recluster = spans
            .iter()
            .find(|s| s.name == "recluster")
            .expect("poll recorded the pending job's span");
        assert_eq!(recluster.trace_id, 77, "span joins the querying trace");
        assert_eq!(recluster.parent_id, Some(ctx.span_id.0));
    }

    /// The same install with nobody waiting starts its own root trace —
    /// background reclusters never alias an unrelated query's trace.
    #[test]
    fn background_recluster_records_under_fresh_trace() {
        let (job_tx, _job_rx) = crossbeam::channel::bounded::<ReclusterJob>(1);
        let (done_tx, done_rx) = crossbeam::channel::bounded::<ReclusterDone>(1);
        let engine = SeerEngine::default();
        let run = engine.recluster_input().compute(1);
        let mut actor = Actor {
            engine,
            strings: StringTable::new(),
            remap: HashMap::new(),
            per_conn: HashMap::new(),
            events_applied: 3,
            since_recluster: 0,
            since_snapshot: 0,
            clustering_generation: 0,
            inflight: VecDeque::from([3u64]),
            pending_dirty: None,
            job_tx,
            done_rx,
            cfg: ActorConfig {
                snapshot_path: None,
                recluster_every: 0,
                recluster_full_every: 0,
                snapshot_every: 0,
                tick: Duration::from_millis(50),
                file_size: 1,
                recluster_threads: 1,
                flight_path: None,
                engine: SeerConfig::default(),
                eval_every: Duration::ZERO,
                eval_window_secs: 0,
                eval_budget: 0,
                shadow_lru_cap: 0,
            },
            metrics: crate::stats::new_shared_with(Tracer::new(64, Duration::from_secs(1))),
            wal: None,
            quality: None,
        };
        done_tx
            .send(ReclusterDone {
                clustering: run.clustering,
                generation: 3,
                started: Instant::now(),
                wall: Duration::from_millis(1),
                shard_seconds: run.shard_count_seconds,
                shard_start_offsets: run.shard_start_offsets,
                incremental: false,
                ctx: None,
            })
            .expect("bounded(1) has room");
        actor.poll_recluster_done();

        let spans = actor.metrics.tracer.snapshot();
        let recluster = spans
            .iter()
            .find(|s| s.name == "recluster")
            .expect("install recorded the background job's span");
        assert_eq!(recluster.parent_id, None, "root of its own trace");
        assert_ne!(recluster.trace_id, 0);
    }
}
