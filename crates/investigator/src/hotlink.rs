//! The hot-link investigator — the OLE analog of §3.2.
//!
//! WINDOWS OLE lets documents embed links to other objects; those links are
//! "valuable and low-cost information about fundamental relationships". On
//! our simulated corpus, documents declare links with `link: <path>` lines.

use crate::corpus::SourceCorpus;
use crate::Investigator;
use seer_cluster::ExternalRelation;
use seer_trace::path::{dirname, extension, normalize};
use seer_trace::PathTable;

/// Discovers explicit `link:` declarations in document files.
#[derive(Debug, Clone)]
pub struct HotLinkInvestigator {
    /// Strength assigned per link.
    pub strength: f64,
}

impl Default for HotLinkInvestigator {
    fn default() -> HotLinkInvestigator {
        HotLinkInvestigator { strength: 8.0 }
    }
}

impl HotLinkInvestigator {
    fn is_document(path: &str) -> bool {
        matches!(extension(path), Some("doc" | "tex" | "txt" | "md" | "xls"))
    }
}

impl Investigator for HotLinkInvestigator {
    fn name(&self) -> &'static str {
        "hot-link"
    }

    fn investigate(&self, corpus: &SourceCorpus, paths: &mut PathTable) -> Vec<ExternalRelation> {
        let mut relations = Vec::new();
        for (path, content) in corpus.iter() {
            if !Self::is_document(path) {
                continue;
            }
            let dir = dirname(path);
            for line in content.lines() {
                let Some(target) = line.trim_start().strip_prefix("link:") else {
                    continue;
                };
                let target = target.trim();
                if target.is_empty() {
                    continue;
                }
                let doc = paths.intern(path);
                let linked = paths.intern(&normalize(dir, target));
                relations.push(ExternalRelation::new(vec![doc, linked], self.strength));
            }
        }
        relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_links_in_documents() {
        let mut corpus = SourceCorpus::new();
        corpus.insert(
            "/docs/report.doc",
            "Quarterly report\nlink: figures/q3.xls\n",
        );
        corpus.insert("/docs/code.c", "link: not-a-document\n");
        let mut paths = PathTable::new();
        let rels = HotLinkInvestigator::default().investigate(&corpus, &mut paths);
        assert_eq!(rels.len(), 1);
        assert_eq!(
            paths.resolve(rels[0].files[1]),
            Some("/docs/figures/q3.xls")
        );
    }

    #[test]
    fn empty_link_lines_are_ignored() {
        let mut corpus = SourceCorpus::new();
        corpus.insert("/d/a.txt", "link:\nlink:   \n");
        let mut paths = PathTable::new();
        assert!(HotLinkInvestigator::default()
            .investigate(&corpus, &mut paths)
            .is_empty());
    }
}
