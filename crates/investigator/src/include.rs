//! The `#include` investigator — the paper's worked example of the
//! mechanism ("a simple script that can read C source files to discover
//! #include relationships", §3.2).

use crate::corpus::SourceCorpus;
use crate::Investigator;
use seer_cluster::ExternalRelation;
use seer_trace::path::{dirname, extension, normalize};
use seer_trace::PathTable;

/// Scans C/C++ sources for `#include` directives and emits one relation
/// per (source, header) pair.
#[derive(Debug, Clone)]
pub struct IncludeScanner {
    /// Directories searched for `<...>`-style includes.
    pub include_dirs: Vec<String>,
    /// Strength assigned to each discovered relationship.
    pub strength: f64,
}

impl Default for IncludeScanner {
    fn default() -> IncludeScanner {
        IncludeScanner {
            include_dirs: vec!["/usr/include".into()],
            strength: 6.0,
        }
    }
}

impl IncludeScanner {
    /// Extracts the target of one `#include` line, if any.
    fn parse_line(line: &str) -> Option<(&str, bool)> {
        let rest = line.trim_start().strip_prefix('#')?.trim_start();
        let rest = rest.strip_prefix("include")?.trim_start();
        if let Some(inner) = rest.strip_prefix('"') {
            let end = inner.find('"')?;
            Some((&inner[..end], false))
        } else if let Some(inner) = rest.strip_prefix('<') {
            let end = inner.find('>')?;
            Some((&inner[..end], true))
        } else {
            None
        }
    }

    fn is_c_source(path: &str) -> bool {
        matches!(
            extension(path),
            Some("c" | "h" | "cc" | "cpp" | "hpp" | "cxx")
        )
    }
}

impl Investigator for IncludeScanner {
    fn name(&self) -> &'static str {
        "include-scanner"
    }

    fn investigate(&self, corpus: &SourceCorpus, paths: &mut PathTable) -> Vec<ExternalRelation> {
        let mut relations = Vec::new();
        for (path, content) in corpus.iter() {
            if !Self::is_c_source(path) {
                continue;
            }
            let dir = dirname(path);
            for line in content.lines() {
                let Some((target, system)) = Self::parse_line(line) else {
                    continue;
                };
                let resolved = if system {
                    self.include_dirs
                        .first()
                        .map(|d| normalize(d, target))
                        .unwrap_or_else(|| normalize("/usr/include", target))
                } else {
                    normalize(dir, target)
                };
                let src = paths.intern(path);
                let hdr = paths.intern(&resolved);
                relations.push(ExternalRelation::new(vec![src, hdr], self.strength));
            }
        }
        relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_quoted_and_angle_includes() {
        assert_eq!(
            IncludeScanner::parse_line("#include \"a.h\""),
            Some(("a.h", false))
        );
        assert_eq!(
            IncludeScanner::parse_line("  #  include <stdio.h>"),
            Some(("stdio.h", true))
        );
        assert_eq!(IncludeScanner::parse_line("int x = 3;"), None);
        assert_eq!(IncludeScanner::parse_line("#define X"), None);
        assert_eq!(IncludeScanner::parse_line("#include \"unterminated"), None);
    }

    #[test]
    fn discovers_relative_and_system_includes() {
        let mut corpus = SourceCorpus::new();
        corpus.insert(
            "/home/u/p/main.c",
            "#include \"defs.h\"\n#include <stdio.h>\nint main(){}\n",
        );
        corpus.insert("/home/u/p/notes.txt", "#include \"ignored.h\"\n");
        let mut paths = PathTable::new();
        let scanner = IncludeScanner::default();
        let rels = scanner.investigate(&corpus, &mut paths);
        assert_eq!(rels.len(), 2, "two includes in the one C file");
        let names: Vec<Vec<&str>> = rels
            .iter()
            .map(|r| {
                r.files
                    .iter()
                    .map(|&f| paths.resolve(f).expect("interned"))
                    .collect()
            })
            .collect();
        assert!(names.contains(&vec!["/home/u/p/main.c", "/home/u/p/defs.h"]));
        assert!(names.contains(&vec!["/home/u/p/main.c", "/usr/include/stdio.h"]));
    }

    #[test]
    fn subdirectory_includes_resolve() {
        let mut corpus = SourceCorpus::new();
        corpus.insert("/p/src/a.c", "#include \"../include/a.h\"\n");
        let mut paths = PathTable::new();
        let rels = IncludeScanner::default().investigate(&corpus, &mut paths);
        let hdr = paths.resolve(rels[0].files[1]).expect("interned");
        assert_eq!(hdr, "/p/include/a.h");
    }
}
