//! The source corpus investigators read from.

use std::collections::BTreeMap;

/// Absolute path → file content, standing in for the traced machine's disk.
///
/// Only files an investigator might care about (sources, makefiles,
/// documents) need content; everything else can stay absent.
#[derive(Debug, Default, Clone)]
pub struct SourceCorpus {
    files: BTreeMap<String, String>,
}

impl SourceCorpus {
    /// Creates an empty corpus.
    #[must_use]
    pub fn new() -> SourceCorpus {
        SourceCorpus::default()
    }

    /// Inserts or replaces a file's content.
    pub fn insert(&mut self, path: &str, content: &str) {
        self.files.insert(path.to_owned(), content.to_owned());
    }

    /// The content of `path`, if present.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// Iterates over `(path, content)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(p, c)| (p.as_str(), c.as_str()))
    }

    /// Number of files with content.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_iterate() {
        let mut c = SourceCorpus::new();
        c.insert("/p/a.c", "#include \"a.h\"\n");
        c.insert("/p/Makefile", "a: a.c\n");
        assert_eq!(c.len(), 2);
        assert!(c.get("/p/a.c").expect("present").contains("a.h"));
        assert_eq!(c.get("/missing"), None);
        let paths: Vec<_> = c.iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["/p/Makefile", "/p/a.c"], "ordered iteration");
    }
}
