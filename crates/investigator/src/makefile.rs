//! The makefile investigator (§3.2): "a makefile investigator could
//! potentially identify every file needed to build a particular program
//! and create a cluster containing exactly these files."

use crate::corpus::SourceCorpus;
use crate::Investigator;
use seer_cluster::ExternalRelation;
use seer_trace::path::{basename, dirname, normalize};
use seer_trace::PathTable;
use std::collections::BTreeSet;

/// Parses makefiles and emits one high-strength relation per makefile,
/// grouping the makefile itself with every target and prerequisite.
#[derive(Debug, Clone)]
pub struct MakefileInvestigator {
    /// Strength of the whole-build relation; set at or above the cluster
    /// configuration's `force_strength` to force project formation.
    pub strength: f64,
}

impl Default for MakefileInvestigator {
    fn default() -> MakefileInvestigator {
        MakefileInvestigator { strength: 100.0 }
    }
}

impl MakefileInvestigator {
    fn is_makefile(path: &str) -> bool {
        matches!(basename(path), "Makefile" | "makefile" | "GNUmakefile")
    }

    /// Collects the file words of `target: prerequisites` rule lines.
    fn rule_files(content: &str) -> BTreeSet<String> {
        // First pass: names declared phony are not files.
        let mut phony = BTreeSet::new();
        for line in content.lines() {
            if let Some(rest) = line.trim_start().strip_prefix(".PHONY:") {
                phony.extend(rest.split_whitespace().map(str::to_owned));
            }
        }
        let mut out = BTreeSet::new();
        for line in content.lines() {
            // Skip recipe lines (tab-indented), comments, special-target
            // lines, and variable assignments.
            if line.starts_with('\t')
                || line.trim_start().starts_with('#')
                || line.trim_start().starts_with('.')
            {
                continue;
            }
            let Some(colon) = line.find(':') else {
                continue;
            };
            if line[colon..].starts_with(":=") || line[..colon].contains('=') {
                continue;
            }
            let (targets, deps) = line.split_at(colon);
            for word in targets.split_whitespace() {
                // Targets name build products unless declared phony.
                if !word.contains('$') && !phony.contains(word) {
                    out.insert(word.to_owned());
                }
            }
            for word in deps[1..].split_whitespace() {
                // Prerequisites must look like files.
                if !word.contains('$') && (word.contains('.') || word.contains('/')) {
                    out.insert(word.to_owned());
                }
            }
        }
        out
    }
}

impl Investigator for MakefileInvestigator {
    fn name(&self) -> &'static str {
        "makefile"
    }

    fn investigate(&self, corpus: &SourceCorpus, paths: &mut PathTable) -> Vec<ExternalRelation> {
        let mut relations = Vec::new();
        for (path, content) in corpus.iter() {
            if !Self::is_makefile(path) {
                continue;
            }
            let dir = dirname(path);
            let mut files: Vec<_> = vec![paths.intern(path)];
            for word in Self::rule_files(content) {
                files.push(paths.intern(&normalize(dir, &word)));
            }
            if files.len() > 1 {
                relations.push(ExternalRelation::new(files, self.strength));
            }
        }
        relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAKEFILE: &str = "\
# build rules
CC := gcc
prog: main.o util.o
\tgcc -o prog main.o util.o
main.o: main.c defs.h
\tgcc -c main.c
util.o: util.c defs.h
\tgcc -c util.c
.PHONY: clean
clean:
\trm -f *.o
";

    #[test]
    fn extracts_rule_files() {
        let files = MakefileInvestigator::rule_files(MAKEFILE);
        for f in ["main.o", "util.o", "main.c", "util.c", "defs.h"] {
            assert!(files.contains(f), "missing {f}");
        }
        assert!(!files.iter().any(|f| f.contains("gcc")), "recipes skipped");
        assert!(
            !files.contains("clean"),
            "extensionless phony target skipped"
        );
    }

    #[test]
    fn groups_the_whole_build() {
        let mut corpus = SourceCorpus::new();
        corpus.insert("/p/Makefile", MAKEFILE);
        let mut paths = PathTable::new();
        let rels = MakefileInvestigator::default().investigate(&corpus, &mut paths);
        assert_eq!(rels.len(), 1);
        let names: BTreeSet<&str> = rels[0]
            .files
            .iter()
            .map(|&f| paths.resolve(f).expect("interned"))
            .collect();
        assert!(names.contains("/p/Makefile"));
        assert!(names.contains("/p/main.c"));
        assert!(names.contains("/p/defs.h"));
        assert!(
            names.contains("/p/prog"),
            "the built program belongs to the project"
        );
    }

    #[test]
    fn non_makefiles_are_ignored() {
        let mut corpus = SourceCorpus::new();
        corpus.insert("/p/main.c", "prog: main.o\n");
        let mut paths = PathTable::new();
        assert!(MakefileInvestigator::default()
            .investigate(&corpus, &mut paths)
            .is_empty());
    }
}
