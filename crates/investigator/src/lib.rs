//! External investigators (§3.2, §3.3.3).
//!
//! An external investigator is an auxiliary program that examines selected
//! files and extracts application-specific relationship information, which
//! is fed to the correlator as [`ExternalRelation`]s. The paper's examples
//! are a script reading C sources for `#include` relationships, a
//! hypothetical `makefile` investigator identifying every file of a build,
//! and WINDOWS OLE "hot links"; all three have equivalents here:
//!
//! * [`IncludeScanner`] — C/C++ `#include` relationships;
//! * [`MakefileInvestigator`] — whole-build clusters from makefile rules;
//! * [`HotLinkInvestigator`] — explicit document links (the OLE analog).
//!
//! Investigators read from a [`SourceCorpus`], the reproduction's stand-in
//! for the real disk (the traced machines' file *contents* are not part of
//! a syscall trace, so the workload generator synthesizes them).

#![warn(missing_docs)]

pub mod corpus;
pub mod hotlink;
pub mod include;
pub mod makefile;

pub use corpus::SourceCorpus;
pub use hotlink::HotLinkInvestigator;
pub use include::IncludeScanner;
pub use makefile::MakefileInvestigator;

use seer_cluster::ExternalRelation;
use seer_trace::PathTable;

/// An auxiliary analyzer producing file-relationship evidence (§3.2).
pub trait Investigator {
    /// Human-readable investigator name.
    fn name(&self) -> &'static str;

    /// Examines the corpus and reports weighted relations. New paths are
    /// interned into `paths` as needed.
    fn investigate(&self, corpus: &SourceCorpus, paths: &mut PathTable) -> Vec<ExternalRelation>;
}

/// Runs every investigator and concatenates the relations.
pub fn run_investigators(
    investigators: &[Box<dyn Investigator>],
    corpus: &SourceCorpus,
    paths: &mut PathTable,
) -> Vec<ExternalRelation> {
    investigators
        .iter()
        .flat_map(|i| i.investigate(corpus, paths))
        .collect()
}
