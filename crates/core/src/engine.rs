//! The assembled SEER engine.

use crate::config::SeerConfig;
use crate::correlator::Correlator;
use crate::manager::{select_hoard, HoardSelection};
use crate::rankers::{HoardRanker, RankContext, SeerRanker};
use seer_cluster::{
    cluster_view_excluding, cluster_view_incremental, ClusterRun, Clustering, ExternalRelation,
    PairCountCache,
};
use seer_distance::{ClusterView, TableDirty};
use seer_observer::Observer;
use seer_telemetry::{Counter, Gauge, Histogram, Registry};
use seer_trace::{EventKind, EventSink, FileId, PathTable, StringTable, TraceEvent};
use std::collections::HashSet;
use std::time::Duration;

/// Registry handles the engine updates while processing events; present
/// only after [`SeerEngine::attach_telemetry`]. Counting is lock-free, so
/// the unattached and attached hot paths differ by a few relaxed atomic
/// adds per batch.
#[derive(Debug)]
struct EngineTelemetry {
    /// Ingested events by syscall kind, indexed by [`EventKind::index`].
    events_by_kind: Vec<Counter>,
    files_known: Gauge,
    activity_tracked: Gauge,
    distance_opens: Counter,
    distance_observations: Counter,
    distance_evictions: Counter,
    distance_purged: Counter,
    recluster_seconds: Histogram,
    shard_count_seconds: Histogram,
    hoard_select_seconds: Histogram,
    cluster_count: Gauge,
    cluster_churn: Counter,
}

impl EngineTelemetry {
    fn new(registry: &Registry) -> EngineTelemetry {
        EngineTelemetry {
            events_by_kind: EventKind::NAMES
                .iter()
                .map(|kind| {
                    registry.counter_with(
                        "seer_engine_events_total",
                        "Trace events ingested by the engine, by syscall kind.",
                        &[("kind", kind)],
                    )
                })
                .collect(),
            files_known: registry.gauge(
                "seer_engine_files_known",
                "Canonical paths known to the engine.",
            ),
            activity_tracked: registry.gauge(
                "seer_engine_activity_tracked",
                "Files with recorded reference activity.",
            ),
            distance_opens: registry.counter(
                "seer_distance_opens_total",
                "Whole-file opening references processed by the distance engine.",
            ),
            distance_observations: registry.counter(
                "seer_distance_observations_total",
                "Pairwise distance observations folded into the neighbor table.",
            ),
            distance_evictions: registry.counter(
                "seer_distance_evictions_total",
                "Live neighbors displaced from full neighbor-table rows.",
            ),
            distance_purged: registry.counter(
                "seer_distance_purged_total",
                "Files purged from the neighbor table after delayed deletion.",
            ),
            recluster_seconds: registry.histogram(
                "seer_cluster_recluster_seconds",
                "Wall time of full reclusterings.",
            ),
            shard_count_seconds: registry.histogram(
                "seer_cluster_shard_count_seconds",
                "Wall time of each shared-neighbor counting shard within a reclustering.",
            ),
            hoard_select_seconds: registry.histogram(
                "seer_engine_hoard_select_seconds",
                "Wall time of hoard selection (excluding any recluster it triggers).",
            ),
            cluster_count: registry.gauge(
                "seer_cluster_count",
                "Clusters in the current project assignment.",
            ),
            cluster_churn: registry.counter(
                "seer_cluster_churn_total",
                "Files whose cluster membership changed across reclusterings.",
            ),
        }
    }
}

/// The complete SEER pipeline: feed it raw [`TraceEvent`]s, then ask for
/// hoard contents before a disconnection.
///
/// # Examples
///
/// ```
/// use seer_core::SeerEngine;
/// use seer_trace::{OpenMode, Pid, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let pid = Pid(1);
/// for _ in 0..3 {
///     let f1 = b.open(pid, "/home/user/proj/main.c", OpenMode::Read);
///     let f2 = b.open(pid, "/home/user/proj/defs.h", OpenMode::Read);
///     b.close(pid, f2);
///     b.close(pid, f1);
/// }
/// let trace = b.build();
///
/// let mut engine = SeerEngine::default();
/// trace.replay(&mut engine);
/// engine.recluster();
/// let hoard = engine.choose_hoard(1 << 20, &|_| 1024);
/// assert!(!hoard.files.is_empty());
/// ```
#[derive(Debug)]
pub struct SeerEngine {
    observer: Observer<Correlator>,
    cluster_config: seer_cluster::ClusterConfig,
    relations: Vec<ExternalRelation>,
    clustering: Option<Clustering>,
    telemetry: Option<EngineTelemetry>,
}

impl Default for SeerEngine {
    fn default() -> SeerEngine {
        SeerEngine::new(SeerConfig::default())
    }
}

impl SeerEngine {
    /// Creates an engine from a configuration.
    #[must_use]
    pub fn new(config: SeerConfig) -> SeerEngine {
        let correlator = Correlator::new(config.distance.clone());
        SeerEngine {
            observer: Observer::new(config.observer, correlator),
            cluster_config: config.cluster,
            relations: Vec::new(),
            clustering: None,
            telemetry: None,
        }
    }

    /// Registers this engine's metrics (ingest counters by event kind,
    /// table and activity gauges, recluster timings and churn) in
    /// `registry` and starts updating them as events flow. Gauges and
    /// mirrored counters are synced immediately, so attaching to a
    /// recovered engine reports its restored state.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(EngineTelemetry::new(registry));
        self.sync_telemetry();
    }

    /// Refreshes gauges and mirrored counters from component stats.
    fn sync_telemetry(&self) {
        if let Some(t) = &self.telemetry {
            t.files_known.set(self.observer.paths().len() as i64);
            t.activity_tracked
                .set(self.correlator().activity().len() as i64);
            let d = self.correlator().distance().stats();
            t.distance_opens.set_total(d.opens);
            t.distance_observations.set_total(d.observations);
            t.distance_evictions.set_total(d.evictions);
            t.distance_purged.set_total(d.purged);
        }
    }

    /// The canonical path table (owned by the observer).
    #[must_use]
    pub fn paths(&self) -> &PathTable {
        self.observer.paths()
    }

    /// Mutable path-table access for investigators that intern new paths
    /// (§3.2).
    pub fn paths_mut(&mut self) -> &mut PathTable {
        self.observer.paths_mut()
    }

    /// Observer statistics (filter counters).
    #[must_use]
    pub fn observer_stats(&self) -> &seer_observer::ObserverStats {
        self.observer.stats()
    }

    /// The correlator (distance table and activity).
    #[must_use]
    pub fn correlator(&self) -> &Correlator {
        self.observer.sink()
    }

    /// Files SEER will hoard unconditionally.
    #[must_use]
    pub fn always_hoard(&self) -> &HashSet<FileId> {
        self.observer.always_hoard()
    }

    /// Installs investigator relations to be used at the next reclustering
    /// (§3.3.3).
    pub fn set_relations(&mut self, relations: Vec<ExternalRelation>) {
        self.relations = relations;
        self.clustering = None;
    }

    /// Runs the clustering algorithm over the current distance table,
    /// replacing any previous project assignment.
    pub fn recluster(&mut self) -> &Clustering {
        self.recluster_with_threads(1)
    }

    /// [`SeerEngine::recluster`] with the shared-neighbor counting phase
    /// sharded across `threads` worker threads. The result is
    /// bit-identical to the serial path (see
    /// [`seer_cluster::cluster_view_excluding`]).
    pub fn recluster_with_threads(&mut self, threads: usize) -> &Clustering {
        let started = std::time::Instant::now();
        let run = cluster_view_excluding(
            &self.correlator().distance().table().cluster_view(),
            self.observer.paths(),
            &self.relations,
            self.observer.always_hoard(),
            &self.cluster_config,
            threads,
        );
        self.install_clustering(run.clustering, started.elapsed(), &run.shard_count_seconds)
    }

    /// Captures everything a detached worker needs to compute a
    /// clustering equivalent to [`SeerEngine::recluster`]: a frozen
    /// neighbor view, the path table, investigator relations, the
    /// exclusion set, and the configuration.
    ///
    /// The snapshot is O(files) — neighbor ids and path strings are
    /// copied, distances are not — and is fully detached: the engine can
    /// keep applying events while [`ReclusterInput::compute`] runs
    /// elsewhere, and the finished [`Clustering`] is folded back in with
    /// [`SeerEngine::install_clustering`].
    #[must_use]
    pub fn recluster_input(&self) -> ReclusterInput {
        ReclusterInput {
            view: self.correlator().distance().table().cluster_view(),
            paths: self.observer.paths().clone(),
            relations: self.relations.clone(),
            exclude: self.observer.always_hoard().clone(),
            config: self.cluster_config,
        }
    }

    /// Captures everything a detached quality evaluator needs to rank
    /// files exactly as the engine would right now: the activity
    /// tracker, the installed clustering, and the always-hoard pins.
    ///
    /// Like [`SeerEngine::recluster_input`] the snapshot is fully
    /// detached — O(tracked files) copied — so the evaluator can compute
    /// miss-free hoard sizes on a worker thread while the engine keeps
    /// applying events.
    #[must_use]
    pub fn eval_input(&self) -> EvalInput {
        EvalInput {
            activity: self.correlator().activity().clone(),
            clustering: self.clustering.clone(),
            always_hoard: self.observer.always_hoard().clone(),
        }
    }

    /// Installs a clustering computed elsewhere (typically from a
    /// [`ReclusterInput`] on a worker thread), updating recluster
    /// telemetry exactly as an in-place [`SeerEngine::recluster`] would:
    /// `wall` is the computation's wall time and `shard_seconds` the
    /// per-shard count-phase timings.
    pub fn install_clustering(
        &mut self,
        clustering: Clustering,
        wall: Duration,
        shard_seconds: &[Duration],
    ) -> &Clustering {
        if let Some(t) = &self.telemetry {
            t.recluster_seconds.observe(wall);
            for &s in shard_seconds {
                t.shard_count_seconds.observe(s);
            }
            t.cluster_count.set(clustering.len() as i64);
            if let Some(prev) = &self.clustering {
                t.cluster_churn.add(clustering.churn_from(prev) as u64);
            }
        }
        self.clustering = Some(clustering);
        self.clustering.as_ref().expect("just set")
    }

    /// The current project assignment, if one has been computed.
    #[must_use]
    pub fn clustering(&self) -> Option<&Clustering> {
        self.clustering.as_ref()
    }

    /// Full SEER priority ranking of all known files (most important
    /// first). Requires a prior [`SeerEngine::recluster`] for project
    /// structure; without one it degrades to always-hoard + LRU.
    #[must_use]
    pub fn rank(&self) -> Vec<FileId> {
        let ctx = RankContext {
            activity: self.correlator().activity(),
            clustering: self.clustering.as_ref(),
            always_hoard: self.observer.always_hoard(),
        };
        SeerRanker.rank(&ctx)
    }

    /// Bytes conservatively reserved for directories: SEER "leaves
    /// hoarding decisions regarding directories up to the replication
    /// substrate … \[but\] makes the conservative assumption that all
    /// directories are hoarded" (§4.6). One nominal KiB per known
    /// directory.
    #[must_use]
    pub fn directory_reserve(&self) -> u64 {
        self.observer.known_dirs().len() as u64 * 1024
    }

    /// Selects hoard contents for a disconnection: whole projects by
    /// priority within `budget` bytes (less the §4.6 directory reserve),
    /// always-hoard files included unconditionally. Reclusters if no
    /// clustering is current.
    pub fn choose_hoard(&mut self, budget: u64, sizes: &dyn Fn(FileId) -> u64) -> HoardSelection {
        if self.clustering.is_none() {
            self.recluster();
        }
        let started = std::time::Instant::now();
        let reserve = self.directory_reserve();
        let clustering = self.clustering.as_ref().expect("reclustered above");
        let mut sel = select_hoard(
            clustering,
            self.observer.sink().activity(),
            self.observer.always_hoard(),
            sizes,
            budget.saturating_sub(reserve),
        );
        sel.directory_reserve = reserve;
        if let Some(t) = &self.telemetry {
            t.hoard_select_seconds.observe(started.elapsed());
        }
        sel
    }

    /// Takes the automatically detected hoard misses accumulated since the
    /// last call; each missed file's project should be added to the next
    /// hoard (§4.4), which happens naturally because the miss counts as
    /// fresh activity.
    pub fn take_misses(&mut self) -> Vec<FileId> {
        self.observer.sink_mut().take_misses()
    }

    /// Takes the neighbor-table rows whose membership changed since the
    /// previous call — the delta incremental recluster maintenance
    /// consumes (see [`ReclusterInput::compute_incremental`]). Drain it
    /// at the same moment as [`SeerEngine::recluster_input`] so the
    /// delta describes exactly what changed between consecutive views.
    pub fn take_dirty(&mut self) -> TableDirty {
        self.observer.sink_mut().take_dirty()
    }

    /// The clustering configuration in use.
    #[must_use]
    pub fn cluster_config(&self) -> &seer_cluster::ClusterConfig {
        &self.cluster_config
    }

    /// The observer's persistent state (used by [`crate::persist`]).
    #[must_use]
    pub fn observer_snapshot(&self) -> seer_observer::ObserverSnapshot {
        self.observer.snapshot()
    }

    /// Rebuilds an engine from restored components (used by
    /// [`crate::persist`]).
    #[must_use]
    pub(crate) fn from_restored_parts(
        observer_snap: seer_observer::ObserverSnapshot,
        correlator: Correlator,
        cluster_config: seer_cluster::ClusterConfig,
    ) -> SeerEngine {
        SeerEngine {
            observer: seer_observer::Observer::from_snapshot(observer_snap, correlator),
            cluster_config,
            relations: Vec::new(),
            clustering: None,
            telemetry: None,
        }
    }
}

/// A self-contained snapshot of the engine state a reclustering reads
/// (see [`SeerEngine::recluster_input`]). Owns everything it needs, so
/// it can be sent to a worker thread while the engine keeps mutating.
#[derive(Debug, Clone)]
pub struct ReclusterInput {
    view: ClusterView,
    paths: PathTable,
    relations: Vec<ExternalRelation>,
    exclude: HashSet<FileId>,
    config: seer_cluster::ClusterConfig,
}

impl ReclusterInput {
    /// Computes the clustering this snapshot describes, sharding the
    /// counting phase across `threads` worker threads. Bit-identical to
    /// what [`SeerEngine::recluster`] would have produced at snapshot
    /// time, for any `threads`.
    #[must_use]
    pub fn compute(&self, threads: usize) -> ClusterRun {
        cluster_view_excluding(
            &self.view,
            &self.paths,
            &self.relations,
            &self.exclude,
            &self.config,
            threads,
        )
    }

    /// Like [`ReclusterInput::compute`], but maintains `cache` across
    /// consecutive inputs: when `dirty` lists the rows whose neighbor
    /// membership changed since the cache's baseline (drained with
    /// [`SeerEngine::take_dirty`] at the moment this input was captured)
    /// and nothing structural happened, only affected pair counts are
    /// recomputed. Bit-identical to [`ReclusterInput::compute`] either
    /// way (see [`seer_cluster::cluster_view_incremental`]).
    #[must_use]
    pub fn compute_incremental(
        &self,
        threads: usize,
        dirty: Option<&TableDirty>,
        cache: &mut Option<PairCountCache>,
    ) -> ClusterRun {
        cluster_view_incremental(
            &self.view,
            &self.paths,
            &self.relations,
            &self.exclude,
            &self.config,
            threads,
            dirty,
            cache,
        )
    }
}

/// A self-contained snapshot of the ranking state a quality evaluation
/// reads (see [`SeerEngine::eval_input`]). Owns everything it needs, so
/// it can be sent to a worker thread while the engine keeps mutating.
#[derive(Debug, Clone)]
pub struct EvalInput {
    activity: crate::activity::ActivityTracker,
    clustering: Option<Clustering>,
    always_hoard: HashSet<FileId>,
}

impl EvalInput {
    /// The frozen activity tracker (drives the needed-set derivation).
    #[must_use]
    pub fn activity(&self) -> &crate::activity::ActivityTracker {
        &self.activity
    }

    /// SEER's full priority ranking at snapshot time — identical to what
    /// [`SeerEngine::rank`] would have produced when the snapshot was
    /// taken.
    #[must_use]
    pub fn rank(&self) -> Vec<FileId> {
        let ctx = RankContext {
            activity: &self.activity,
            clustering: self.clustering.as_ref(),
            always_hoard: &self.always_hoard,
        };
        SeerRanker.rank(&ctx)
    }

    /// The pure recency ranking at snapshot time, most recent first —
    /// the paper's LRU baseline (§6.1).
    #[must_use]
    pub fn lru_order(&self) -> Vec<FileId> {
        self.activity.lru_order()
    }
}

impl EventSink for SeerEngine {
    fn on_event(&mut self, ev: &TraceEvent, strings: &StringTable) {
        if let Some(t) = &self.telemetry {
            t.events_by_kind[ev.kind.index()].inc();
        }
        self.observer.on_event(ev, strings);
        self.sync_telemetry();
    }

    fn on_batch(&mut self, events: &[TraceEvent], strings: &StringTable) {
        if let Some(t) = &self.telemetry {
            for ev in events {
                t.events_by_kind[ev.kind.index()].inc();
            }
        }
        self.observer.on_batch(events, strings);
        self.sync_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_trace::{OpenMode, Pid, TraceBuilder};

    /// Builds a trace with two separate projects worked in distinct
    /// processes and phases, with realistic variation in access order.
    fn two_project_trace() -> seer_trace::Trace {
        let alpha = [
            "/home/user/alpha/main.c",
            "/home/user/alpha/defs.h",
            "/home/user/alpha/util.c",
            "/home/user/alpha/types.h",
        ];
        let mut b = TraceBuilder::new();
        for round in 0..8u32 {
            let pid = Pid(10 + round);
            b.exec(pid, "/usr/bin/cc");
            // Rotate the access order across rounds, as edits and
            // compiles do in real life.
            let first = b.open(pid, alpha[round as usize % 4], OpenMode::Read);
            for k in 1..4 {
                b.touch(pid, alpha[(round as usize + k) % 4], OpenMode::Read);
            }
            b.close(pid, first);
            b.exit(pid);
        }
        for round in 0..5u32 {
            let pid = Pid(50 + round);
            b.exec(pid, "/usr/bin/latex");
            let doc = b.open(pid, "/home/user/beta/paper.tex", OpenMode::ReadWrite);
            b.touch(pid, "/home/user/beta/refs.bib", OpenMode::Read);
            b.close(pid, doc);
            b.exit(pid);
        }
        b.build()
    }

    #[test]
    fn end_to_end_projects_form_and_hoard_selects() {
        let mut engine = SeerEngine::default();
        two_project_trace().replay(&mut engine);
        let clustering = engine.recluster().clone();
        let paths = engine.paths();
        let main = paths.get("/home/user/alpha/main.c").expect("seen");
        let defs = paths.get("/home/user/alpha/defs.h").expect("seen");
        let tex = paths.get("/home/user/beta/paper.tex").expect("seen");
        let bib = paths.get("/home/user/beta/refs.bib").expect("seen");
        // Same-project files share a cluster; cross-project files do not.
        let c_main = clustering.clusters_of(main).to_vec();
        let c_defs = clustering.clusters_of(defs).to_vec();
        let c_tex = clustering.clusters_of(tex).to_vec();
        assert!(
            c_main.iter().any(|c| c_defs.contains(c)),
            "alpha files cluster together"
        );
        assert!(
            !c_main.iter().any(|c| c_tex.contains(c)),
            "projects stay apart"
        );

        // Hoard selection: beta was touched last, so with a budget for one
        // project beta wins.
        let sel = engine.choose_hoard(3000, &|_| 1000);
        assert!(
            sel.contains(tex) && sel.contains(bib),
            "most recent project hoarded"
        );
    }

    #[test]
    fn rank_covers_all_activity() {
        let mut engine = SeerEngine::default();
        two_project_trace().replay(&mut engine);
        engine.recluster();
        let rank = engine.rank();
        let activity_files = engine.correlator().activity().len();
        assert!(
            rank.len() >= activity_files,
            "ranking covers every tracked file"
        );
        let mut dedup = rank.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), rank.len(), "no duplicates in ranking");
    }

    #[test]
    fn telemetry_tracks_engine_activity() {
        let registry = Registry::new();
        let mut engine = SeerEngine::default();
        engine.attach_telemetry(&registry);
        two_project_trace().replay(&mut engine);
        engine.recluster();
        engine.recluster(); // A no-op repeat: zero churn, but timed.
        let snap = registry.snapshot();
        let opens = snap
            .find_with("seer_engine_events_total", &[("kind", "open")])
            .expect("per-kind counter registered");
        assert!(
            matches!(opens.value, seer_telemetry::MetricValue::Counter { total } if total > 0),
            "opens counted: {opens:?}"
        );
        assert!(snap.gauge("seer_engine_files_known").expect("gauge") > 0);
        assert!(snap.gauge("seer_cluster_count").expect("gauge") > 0);
        assert!(
            snap.counter("seer_distance_observations_total")
                .expect("counter")
                > 0
        );
        let recluster = snap
            .find("seer_cluster_recluster_seconds")
            .expect("histogram");
        assert!(
            matches!(
                recluster.value,
                seer_telemetry::MetricValue::Histogram { count: 2, .. }
            ),
            "two reclusterings timed: {recluster:?}"
        );
        assert_eq!(
            snap.counter("seer_cluster_churn_total"),
            Some(0),
            "identical reclustering produces no churn"
        );
    }

    /// A clustering computed off-engine from a [`ReclusterInput`] and
    /// installed back is indistinguishable — same fingerprint, same
    /// telemetry effects — from an in-place recluster, serial or sharded.
    #[test]
    fn recluster_input_round_trips_through_worker() {
        let trace = two_project_trace();
        let mut serial = SeerEngine::default();
        trace.replay(&mut serial);
        serial.recluster();
        let want = serial.clustering().expect("clustered").clone();

        let registry = Registry::new();
        let mut engine = SeerEngine::default();
        engine.attach_telemetry(&registry);
        trace.replay(&mut engine);
        let input = engine.recluster_input();
        for threads in [1, 4] {
            let started = std::time::Instant::now();
            let run = input.compute(threads);
            assert_eq!(
                run.clustering.membership_fingerprint(),
                want.membership_fingerprint(),
                "threads={threads}"
            );
            engine.install_clustering(run.clustering, started.elapsed(), &run.shard_count_seconds);
        }
        let snap = registry.snapshot();
        assert!(snap.gauge("seer_cluster_count").expect("gauge") > 0);
        let recluster = snap
            .find("seer_cluster_recluster_seconds")
            .expect("histogram");
        assert!(
            matches!(
                recluster.value,
                seer_telemetry::MetricValue::Histogram { count: 2, .. }
            ),
            "both installs timed: {recluster:?}"
        );
        let shards = snap
            .find("seer_cluster_shard_count_seconds")
            .expect("histogram");
        assert!(
            matches!(
                shards.value,
                // 1 serial shard + up to 4 parallel shards.
                seer_telemetry::MetricValue::Histogram { count, .. } if count >= 2
            ),
            "shard timings recorded: {shards:?}"
        );
    }

    #[test]
    fn miss_boosts_project_priority() {
        let mut b = TraceBuilder::new();
        // Alpha project used heavily, beta project barely.
        for i in 0..5u32 {
            let pid = Pid(i + 1);
            b.touch(pid, "/home/user/alpha/a.c", OpenMode::Read);
            b.touch(pid, "/home/user/alpha/b.c", OpenMode::Read);
        }
        b.touch(Pid(99), "/home/user/beta/x.tex", OpenMode::Read);
        b.touch(Pid(99), "/home/user/beta/y.bib", OpenMode::Read);
        // Later, disconnected, the user misses a beta file.
        b.open_err(
            Pid(100),
            "/home/user/beta/x.tex",
            OpenMode::Read,
            seer_trace::ErrorKind::NotHoarded,
        );
        let trace = b.build();
        let mut engine = SeerEngine::default();
        trace.replay(&mut engine);
        let misses = engine.take_misses();
        assert_eq!(misses.len(), 1);
        engine.recluster();
        let x = engine.paths().get("/home/user/beta/x.tex").expect("seen");
        let rank = engine.rank();
        let pos_x = rank.iter().position(|&f| f == x).expect("ranked");
        assert!(
            pos_x <= 2,
            "missed file's project now leads the ranking: pos {pos_x}"
        );
    }
}
