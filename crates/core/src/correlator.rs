//! The correlator: distance maintenance plus activity and miss tracking.

use crate::activity::ActivityTracker;
use seer_distance::{DistanceConfig, DistanceEngine};
use seer_observer::{RefKind, Reference, ReferenceSink};
use seer_trace::{FileId, PathTable};

/// SEER's correlator (§2): "evaluates the file references, calculating the
/// semantic distances among various files", while also tracking per-file
/// recency for project priorities and collecting automatically detected
/// hoard misses for reload.
#[derive(Debug)]
pub struct Correlator {
    distance: DistanceEngine,
    activity: ActivityTracker,
    misses: Vec<FileId>,
}

impl Correlator {
    /// Creates a correlator with the given distance configuration.
    #[must_use]
    pub fn new(config: DistanceConfig) -> Correlator {
        Correlator {
            distance: DistanceEngine::new(config),
            activity: ActivityTracker::new(),
            misses: Vec::new(),
        }
    }

    /// The distance engine.
    #[must_use]
    pub fn distance(&self) -> &DistanceEngine {
        &self.distance
    }

    /// The activity tracker.
    #[must_use]
    pub fn activity(&self) -> &ActivityTracker {
        &self.activity
    }

    /// Hoard misses observed since the last [`Correlator::take_misses`].
    #[must_use]
    pub fn pending_misses(&self) -> &[FileId] {
        &self.misses
    }

    /// Takes and clears the pending hoard misses.
    pub fn take_misses(&mut self) -> Vec<FileId> {
        std::mem::take(&mut self.misses)
    }

    /// Takes the neighbor-table rows whose membership changed since the
    /// previous call (see [`seer_distance::NeighborTable::take_dirty`]),
    /// for incremental shared-neighbor maintenance.
    pub fn take_dirty(&mut self) -> seer_distance::TableDirty {
        self.distance.take_dirty()
    }

    /// Captures the correlator's persistent state.
    #[must_use]
    pub fn snapshot(&self) -> CorrelatorSnapshot {
        CorrelatorSnapshot {
            distance: self.distance.snapshot(),
            activity: self.activity.export(),
        }
    }

    /// Restores a correlator from a snapshot.
    #[must_use]
    pub fn from_snapshot(snap: CorrelatorSnapshot) -> Correlator {
        let mut activity = ActivityTracker::new();
        activity.restore(snap.activity);
        Correlator {
            distance: DistanceEngine::from_snapshot(snap.distance),
            activity,
            misses: Vec::new(),
        }
    }
}

/// Serializable persistent state of a [`Correlator`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CorrelatorSnapshot {
    /// Distance-engine state.
    pub distance: seer_distance::DistanceSnapshot,
    /// Per-file recency records.
    pub activity: Vec<(FileId, crate::activity::LastRef)>,
}

impl ReferenceSink for Correlator {
    fn on_reference(&mut self, r: &Reference, paths: &PathTable) {
        if let RefKind::HoardMiss = r.kind {
            self.misses.push(r.file);
            // A missed file is wanted *now*: count it as activity so its
            // project rises to the top of the next hoard selection (§4.4).
            self.activity.record(r.file, r.seq, r.time);
            return;
        }
        self.activity.on_reference(r, paths);
        self.distance.on_reference(r, paths);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_trace::{Pid, Seq, Timestamp};

    fn r(seq: u64, file: u32, kind: RefKind) -> Reference {
        Reference {
            seq: Seq(seq),
            time: Timestamp::from_secs(seq),
            pid: Pid(1),
            file: FileId(file),
            kind,
        }
    }

    #[test]
    fn forwards_to_both_distance_and_activity() {
        let paths = PathTable::new();
        let mut c = Correlator::new(DistanceConfig::default());
        c.on_reference(
            &r(
                0,
                1,
                RefKind::Open {
                    read: true,
                    write: false,
                    exec: false,
                },
            ),
            &paths,
        );
        c.on_reference(
            &r(
                1,
                2,
                RefKind::Open {
                    read: true,
                    write: false,
                    exec: false,
                },
            ),
            &paths,
        );
        assert_eq!(c.activity().len(), 2);
        assert!(c
            .distance()
            .table()
            .distance(FileId(1), FileId(2))
            .is_some());
    }

    #[test]
    fn misses_are_collected_and_boost_activity() {
        let paths = PathTable::new();
        let mut c = Correlator::new(DistanceConfig::default());
        c.on_reference(&r(5, 9, RefKind::HoardMiss), &paths);
        assert_eq!(c.pending_misses(), &[FileId(9)]);
        assert!(c.activity().last_ref(FileId(9)).is_some());
        assert_eq!(c.take_misses(), vec![FileId(9)]);
        assert!(c.pending_misses().is_empty());
    }
}
