//! Per-file recency tracking, feeding project priorities and the LRU
//! baseline.

use seer_observer::{RefKind, Reference, ReferenceSink};
use seer_trace::{FileId, PathTable, Seq, Timestamp};

/// Most recent reference per file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LastRef {
    /// Sequence number of the most recent reference.
    pub seq: Seq,
    /// Time of the most recent reference.
    pub time: Timestamp,
    /// Total references observed for the file.
    pub count: u64,
}

/// A [`ReferenceSink`] recording, for every file, when it was last
/// referenced and how often.
///
/// SEER's project priorities derive from member recency; the strict-LRU
/// baseline of §5.1.2 sorts files by exactly this record.
///
/// Records live in a dense vector indexed by [`FileId`] (a slot with
/// `count == 0` is untracked), so the per-reference update is an indexed
/// store rather than a hash-map probe.
#[derive(Debug, Default, Clone)]
pub struct ActivityTracker {
    last: Vec<LastRef>,
    tracked: usize,
}

/// The empty slot value: `count == 0` marks a file never referenced.
const UNTRACKED: LastRef = LastRef {
    seq: Seq(0),
    time: Timestamp(0),
    count: 0,
};

impl ActivityTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> ActivityTracker {
        ActivityTracker::default()
    }

    /// Records a reference directly (used by replay paths that bypass the
    /// sink interface).
    pub fn record(&mut self, file: FileId, seq: Seq, time: Timestamp) {
        if file == FileId::NONE {
            return;
        }
        let i = file.index();
        if self.last.len() <= i {
            self.last.resize(i + 1, UNTRACKED);
        }
        let e = &mut self.last[i];
        if e.count == 0 {
            self.tracked += 1;
            e.seq = seq;
            e.time = time;
        } else {
            e.seq = seq.max(e.seq);
            e.time = time.max(e.time);
        }
        e.count += 1;
    }

    /// The last-reference record of `file`.
    #[must_use]
    pub fn last_ref(&self, file: FileId) -> Option<LastRef> {
        self.last.get(file.index()).filter(|e| e.count > 0).copied()
    }

    /// All tracked files, in id order.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.last
            .iter()
            .enumerate()
            .filter(|(_, e)| e.count > 0)
            .map(|(i, _)| FileId(i as u32))
    }

    /// Number of tracked files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tracked
    }

    /// Whether nothing has been tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tracked == 0
    }

    /// Exports `(file, last)` pairs for persistence, in id order.
    #[must_use]
    pub fn export(&self) -> Vec<(FileId, LastRef)> {
        self.last
            .iter()
            .enumerate()
            .filter(|(_, e)| e.count > 0)
            .map(|(i, &r)| (FileId(i as u32), r))
            .collect()
    }

    /// Restores pairs exported by [`ActivityTracker::export`].
    pub fn restore(&mut self, pairs: Vec<(FileId, LastRef)>) {
        self.last.clear();
        self.tracked = 0;
        for (f, r) in pairs {
            if f == FileId::NONE || r.count == 0 {
                continue;
            }
            let i = f.index();
            if self.last.len() <= i {
                self.last.resize(i + 1, UNTRACKED);
            }
            if self.last[i].count == 0 {
                self.tracked += 1;
            }
            self.last[i] = r;
        }
    }

    /// Files sorted by most-recent reference first (the LRU order).
    #[must_use]
    pub fn lru_order(&self) -> Vec<FileId> {
        let mut v: Vec<(FileId, LastRef)> = self
            .last
            .iter()
            .enumerate()
            .filter(|(_, e)| e.count > 0)
            .map(|(i, &r)| (FileId(i as u32), r))
            .collect();
        v.sort_by(|a, b| b.1.seq.cmp(&a.1.seq).then(a.0.cmp(&b.0)));
        v.into_iter().map(|(f, _)| f).collect()
    }
}

impl ReferenceSink for ActivityTracker {
    fn on_reference(&mut self, r: &Reference, _paths: &PathTable) {
        match r.kind {
            RefKind::Open { .. } | RefKind::Point { .. } | RefKind::Close => {
                self.record(r.file, r.seq, r.time);
            }
            RefKind::Delete
            | RefKind::Fork { .. }
            | RefKind::Exit { .. }
            | RefKind::HoardMiss
            | RefKind::DirList => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_latest_and_count() {
        let mut t = ActivityTracker::new();
        t.record(FileId(1), Seq(5), Timestamp::from_secs(5));
        t.record(FileId(1), Seq(9), Timestamp::from_secs(9));
        let r = t.last_ref(FileId(1)).expect("tracked");
        assert_eq!(r.seq, Seq(9));
        assert_eq!(r.count, 2);
        assert_eq!(t.last_ref(FileId(2)), None);
    }

    #[test]
    fn lru_order_is_most_recent_first() {
        let mut t = ActivityTracker::new();
        t.record(FileId(1), Seq(10), Timestamp::from_secs(10));
        t.record(FileId(2), Seq(30), Timestamp::from_secs(30));
        t.record(FileId(3), Seq(20), Timestamp::from_secs(20));
        assert_eq!(t.lru_order(), vec![FileId(2), FileId(3), FileId(1)]);
    }

    #[test]
    fn sink_ignores_structural_references() {
        let paths = PathTable::new();
        let mut t = ActivityTracker::new();
        let r = Reference {
            seq: Seq(1),
            time: Timestamp::ZERO,
            pid: seer_trace::Pid(1),
            file: FileId::NONE,
            kind: RefKind::Exit { parent: None },
        };
        t.on_reference(&r, &paths);
        assert!(t.is_empty());
    }

    #[test]
    fn out_of_order_records_keep_maximum() {
        let mut t = ActivityTracker::new();
        t.record(FileId(1), Seq(9), Timestamp::from_secs(9));
        t.record(FileId(1), Seq(5), Timestamp::from_secs(5));
        assert_eq!(t.last_ref(FileId(1)).expect("tracked").seq, Seq(9));
    }
}
