//! Hoard rankers: SEER's cluster-based manager and the baselines.
//!
//! A ranker produces a full priority ordering of known files, best first.
//! The miss-free hoard size metric (§5.1.2) is defined over such an
//! ordering: the hoard size needed to avoid misses is the cumulative size
//! of the ranking prefix ending at the worst-ranked referenced file.

use crate::activity::ActivityTracker;
use seer_cluster::{ClusterId, Clustering};
use seer_trace::{FileId, Seq};
use std::collections::HashSet;

/// Everything a ranker may consult.
#[derive(Debug, Clone, Copy)]
pub struct RankContext<'a> {
    /// Per-file recency (from the correlator, or a raw tracker for the
    /// baselines).
    pub activity: &'a ActivityTracker,
    /// Current project assignment (SEER only).
    pub clustering: Option<&'a Clustering>,
    /// Files SEER always hoards (frequent, critical, dot, devices).
    pub always_hoard: &'a HashSet<FileId>,
}

/// A hoard-priority policy.
pub trait HoardRanker {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Ranks all known files, highest priority first.
    fn rank(&self, ctx: &RankContext<'_>) -> Vec<FileId>;
}

/// Clusters ordered by priority: most recently active project first.
///
/// Priority is the maximum member recency, so one touch of any member
/// brings the whole project forward — this is what lets SEER survive
/// attention shifts that defeat LRU (§6.1).
#[must_use]
pub fn clusters_by_priority(clustering: &Clustering, activity: &ActivityTracker) -> Vec<ClusterId> {
    let mut prio: Vec<(ClusterId, Seq, u64)> = clustering
        .clusters
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let max_seq = c
                .files
                .iter()
                .filter_map(|&f| activity.last_ref(f))
                .map(|r| r.seq)
                .max()
                .unwrap_or(Seq::ZERO);
            let total_refs: u64 = c
                .files
                .iter()
                .filter_map(|&f| activity.last_ref(f))
                .map(|r| r.count)
                .sum();
            (ClusterId(i as u32), max_seq, total_refs)
        })
        .collect();
    prio.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
    prio.into_iter().map(|(id, _, _)| id).collect()
}

/// SEER's cluster-based ranking: always-hoard files, then whole projects
/// in priority order (members most-recent first), then any stragglers in
/// LRU order.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeerRanker;

impl HoardRanker for SeerRanker {
    fn name(&self) -> &'static str {
        "seer"
    }

    fn rank(&self, ctx: &RankContext<'_>) -> Vec<FileId> {
        let mut out = Vec::new();
        let mut seen: HashSet<FileId> = HashSet::new();
        let push = |f: FileId, out: &mut Vec<FileId>, seen: &mut HashSet<FileId>| {
            if seen.insert(f) {
                out.push(f);
            }
        };
        // Always-hoard files lead unconditionally (§4.2, §4.3, §4.6).
        let mut always: Vec<FileId> = ctx.always_hoard.iter().copied().collect();
        always.sort_unstable();
        for f in always {
            push(f, &mut out, &mut seen);
        }
        if let Some(clustering) = ctx.clustering {
            for cid in clusters_by_priority(clustering, ctx.activity) {
                let cluster = clustering.cluster(cid);
                let mut members: Vec<FileId> = cluster.files.clone();
                members.sort_by(|&a, &b| {
                    let ra = ctx.activity.last_ref(a).map(|r| r.seq).unwrap_or(Seq::ZERO);
                    let rb = ctx.activity.last_ref(b).map(|r| r.seq).unwrap_or(Seq::ZERO);
                    rb.cmp(&ra).then(a.cmp(&b))
                });
                for f in members {
                    push(f, &mut out, &mut seen);
                }
            }
        }
        for f in ctx.activity.lru_order() {
            push(f, &mut out, &mut seen);
        }
        out
    }
}

/// Strict LRU: most recently referenced files first (§5.1.2's baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct LruRanker;

impl HoardRanker for LruRanker {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn rank(&self, ctx: &RankContext<'_>) -> Vec<FileId> {
        ctx.activity.lru_order()
    }
}

/// A CODA-inspired priority scheme (§5.1.2, §6.2): LRU age plus a
/// user-assigned offset, with a global bound beyond which the offset alone
/// decides.
///
/// Run without the ongoing hand management it was designed for (no hoard
/// profiles, all offsets zero), files older than the bound collapse into
/// one equivalence class ordered arbitrarily — which is why these schemes
/// measured *worse* than plain LRU in the paper's simulations.
#[derive(Debug, Clone, Copy)]
pub struct CodaInspiredRanker {
    /// Recency horizon in references: files referenced within this many
    /// references of the newest keep their LRU order.
    pub horizon_refs: u64,
}

impl HoardRanker for CodaInspiredRanker {
    fn name(&self) -> &'static str {
        "coda-inspired"
    }

    fn rank(&self, ctx: &RankContext<'_>) -> Vec<FileId> {
        let order = ctx.activity.lru_order();
        let newest = order
            .first()
            .and_then(|&f| ctx.activity.last_ref(f))
            .map(|r| r.seq.0)
            .unwrap_or(0);
        let (mut recent, mut old): (Vec<FileId>, Vec<FileId>) = order.into_iter().partition(|&f| {
            ctx.activity
                .last_ref(f)
                .is_some_and(|r| newest.saturating_sub(r.seq.0) <= self.horizon_refs)
        });
        // Beyond the bound the (all-zero) offsets control: arbitrary,
        // deterministic order.
        old.sort_unstable();
        recent.extend(old);
        recent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_trace::Timestamp;

    fn activity(entries: &[(u32, u64)]) -> ActivityTracker {
        let mut t = ActivityTracker::new();
        for &(f, seq) in entries {
            t.record(FileId(f), Seq(seq), Timestamp::from_secs(seq));
        }
        t
    }

    #[test]
    fn lru_ranker_orders_by_recency() {
        let act = activity(&[(1, 10), (2, 30), (3, 20)]);
        let ctx = RankContext {
            activity: &act,
            clustering: None,
            always_hoard: &HashSet::new(),
        };
        assert_eq!(LruRanker.rank(&ctx), vec![FileId(2), FileId(3), FileId(1)]);
    }

    #[test]
    fn seer_ranker_keeps_projects_whole() {
        // Project {1, 2} was touched most recently through file 1; project
        // {3, 4} is older. File 2 itself is the *oldest* file — LRU would
        // rank it last, SEER keeps it with its project.
        let act = activity(&[(1, 100), (2, 1), (3, 50), (4, 40)]);
        let clustering =
            Clustering::from_members(vec![vec![FileId(1), FileId(2)], vec![FileId(3), FileId(4)]]);
        let ctx = RankContext {
            activity: &act,
            clustering: Some(&clustering),
            always_hoard: &HashSet::new(),
        };
        let rank = SeerRanker.rank(&ctx);
        assert_eq!(rank, vec![FileId(1), FileId(2), FileId(3), FileId(4)]);
        let lru = LruRanker.rank(&ctx);
        assert_eq!(
            lru.last(),
            Some(&FileId(2)),
            "LRU exiles the project member"
        );
    }

    #[test]
    fn always_hoard_files_lead() {
        let act = activity(&[(1, 100), (9, 1)]);
        let always: HashSet<FileId> = [FileId(9)].into_iter().collect();
        let ctx = RankContext {
            activity: &act,
            clustering: None,
            always_hoard: &always,
        };
        let rank = SeerRanker.rank(&ctx);
        assert_eq!(rank[0], FileId(9));
    }

    #[test]
    fn unclustered_stragglers_still_ranked() {
        let act = activity(&[(1, 10), (7, 99)]);
        let clustering = Clustering::from_members(vec![vec![FileId(1)]]);
        let ctx = RankContext {
            activity: &act,
            clustering: Some(&clustering),
            always_hoard: &HashSet::new(),
        };
        let rank = SeerRanker.rank(&ctx);
        assert!(rank.contains(&FileId(7)), "activity-only file included");
    }

    #[test]
    fn cluster_priority_prefers_recent_then_busier() {
        let act = activity(&[(1, 10), (2, 10), (3, 10)]);
        let mut act = act;
        // Cluster of {1,2}: two refs at seq 10; cluster {3}: one ref.
        act.record(FileId(2), Seq(10), Timestamp::from_secs(10));
        let clustering =
            Clustering::from_members(vec![vec![FileId(1), FileId(2)], vec![FileId(3)]]);
        let order = clusters_by_priority(&clustering, &act);
        assert_eq!(
            order[0],
            ClusterId(0),
            "equal recency, more total refs wins"
        );
    }

    #[test]
    fn coda_ranker_degrades_old_files_to_id_order() {
        let act = activity(&[(5, 100), (9, 99), (1, 10), (8, 5)]);
        let ranker = CodaInspiredRanker { horizon_refs: 10 };
        let ctx = RankContext {
            activity: &act,
            clustering: None,
            always_hoard: &HashSet::new(),
        };
        let rank = ranker.rank(&ctx);
        // Recent: 5 (seq 100), 9 (seq 99). Old: 1, 8 in id order.
        assert_eq!(rank, vec![FileId(5), FileId(9), FileId(1), FileId(8)]);
    }
}
