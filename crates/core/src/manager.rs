//! Whole-project hoard selection (§2).
//!
//! "The correlator examines the projects to find those that are currently
//! active, and selects the highest-priority projects until the maximum
//! hoard size is reached. Only complete projects are hoarded, under the
//! assumption that partial projects are not sufficient to make progress."

use crate::activity::ActivityTracker;
use crate::rankers::clusters_by_priority;
use seer_cluster::Clustering;
use seer_trace::FileId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The outcome of a hoard selection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HoardSelection {
    /// Chosen files in selection order (always-hoard set first, then
    /// projects by priority).
    pub files: Vec<FileId>,
    /// Total bytes selected.
    pub bytes: u64,
    /// Whole projects taken.
    pub clusters_taken: usize,
    /// Projects skipped because their remaining members did not fit.
    pub clusters_skipped: usize,
    /// Bytes reserved up front for directories, under §4.6's conservative
    /// assumption that every known directory is hoarded.
    pub directory_reserve: u64,
}

impl HoardSelection {
    /// Whether `file` was selected.
    #[must_use]
    pub fn contains(&self, file: FileId) -> bool {
        self.files.contains(&file)
    }

    /// `(file, size)` pairs ready for
    /// [`seer_replication::ReplicationSystem::fill_hoard`].
    #[must_use]
    pub fn as_fill_list(&self, sizes: &dyn Fn(FileId) -> u64) -> Vec<(FileId, u64)> {
        self.files.iter().map(|&f| (f, sizes(f))).collect()
    }
}

/// Selects hoard contents: the always-hoard set unconditionally, then
/// complete projects in priority order while they fit within `budget`
/// bytes.
#[must_use]
pub fn select_hoard(
    clustering: &Clustering,
    activity: &ActivityTracker,
    always_hoard: &HashSet<FileId>,
    sizes: &dyn Fn(FileId) -> u64,
    budget: u64,
) -> HoardSelection {
    let mut sel = HoardSelection::default();
    let mut chosen: HashSet<FileId> = HashSet::new();
    // Critical, frequently-referenced, and non-file objects are always
    // included, regardless of reference history (§4.2, §4.3, §4.6).
    let mut always: Vec<FileId> = always_hoard.iter().copied().collect();
    always.sort_unstable();
    for f in always {
        if chosen.insert(f) {
            sel.bytes += sizes(f);
            sel.files.push(f);
        }
    }
    for cid in clusters_by_priority(clustering, activity) {
        let cluster = clustering.cluster(cid);
        let new_members: Vec<FileId> = cluster
            .files
            .iter()
            .copied()
            .filter(|f| !chosen.contains(f))
            .collect();
        let extra: u64 = new_members.iter().map(|&f| sizes(f)).sum();
        if sel.bytes + extra > budget {
            sel.clusters_skipped += 1;
            continue;
        }
        // Whole project or nothing.
        for f in new_members {
            chosen.insert(f);
            sel.files.push(f);
        }
        sel.bytes += extra;
        sel.clusters_taken += 1;
    }
    // Top up leftover space with known-but-unclustered files in recency
    // order; the whole-project rule governs projects, not stragglers.
    for f in activity.lru_order() {
        if chosen.contains(&f) {
            continue;
        }
        let s = sizes(f);
        if sel.bytes + s <= budget {
            chosen.insert(f);
            sel.files.push(f);
            sel.bytes += s;
        }
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_trace::{Seq, Timestamp};

    fn activity(entries: &[(u32, u64)]) -> ActivityTracker {
        let mut t = ActivityTracker::new();
        for &(f, seq) in entries {
            t.record(FileId(f), Seq(seq), Timestamp::from_secs(seq));
        }
        t
    }

    fn unit_sizes(_: FileId) -> u64 {
        10
    }

    #[test]
    fn takes_whole_projects_in_priority_order() {
        let clustering = Clustering::from_members(vec![
            vec![FileId(1), FileId(2)], // Recent project.
            vec![FileId(3), FileId(4)], // Older project.
        ]);
        let act = activity(&[(1, 100), (3, 50)]);
        let sel = select_hoard(&clustering, &act, &HashSet::new(), &unit_sizes, 25);
        // Budget 25 fits one project of 20 but not both.
        assert_eq!(sel.clusters_taken, 1);
        assert_eq!(sel.clusters_skipped, 1);
        assert!(sel.contains(FileId(1)) && sel.contains(FileId(2)));
        assert!(!sel.contains(FileId(3)));
        assert_eq!(sel.bytes, 20);
    }

    #[test]
    fn partial_projects_are_never_hoarded() {
        let clustering = Clustering::from_members(vec![vec![FileId(1), FileId(2), FileId(3)]]);
        let act = activity(&[(1, 10)]);
        let sel = select_hoard(&clustering, &act, &HashSet::new(), &unit_sizes, 25);
        assert_eq!(
            sel.clusters_taken, 0,
            "project of 30 bytes cannot fit in 25"
        );
        // The skipped project's *referenced* member still arrives via the
        // recency top-up — as an individual file, not as a project.
        assert_eq!(sel.files, vec![FileId(1)]);
    }

    #[test]
    fn smaller_later_project_still_fits() {
        let clustering = Clustering::from_members(vec![
            vec![FileId(1), FileId(2), FileId(3)], // 30 bytes, recent.
            vec![FileId(4)],                       // 10 bytes, older.
        ]);
        let act = activity(&[(1, 100), (4, 5)]);
        let sel = select_hoard(&clustering, &act, &HashSet::new(), &unit_sizes, 15);
        assert_eq!(sel.clusters_taken, 1);
        assert!(
            sel.contains(FileId(4)),
            "selection continues past an oversized project"
        );
    }

    #[test]
    fn always_hoard_charges_against_budget_but_never_drops() {
        let clustering = Clustering::from_members(vec![vec![FileId(1)]]);
        let act = activity(&[(1, 10)]);
        let always: HashSet<FileId> = [FileId(50), FileId(51)].into_iter().collect();
        // Budget 25: the 20 bytes of always-hoard files leave no room for
        // the 10-byte project.
        let sel = select_hoard(&clustering, &act, &always, &unit_sizes, 25);
        assert!(sel.contains(FileId(50)) && sel.contains(FileId(51)));
        assert!(!sel.contains(FileId(1)));
        assert_eq!(sel.clusters_skipped, 1);
        // Budget 30 fits both.
        let sel = select_hoard(&clustering, &act, &always, &unit_sizes, 30);
        assert!(sel.contains(FileId(1)));
    }

    #[test]
    fn overlapping_members_counted_once() {
        let clustering =
            Clustering::from_members(vec![vec![FileId(1), FileId(2)], vec![FileId(2), FileId(3)]]);
        let act = activity(&[(1, 100), (3, 90)]);
        let sel = select_hoard(&clustering, &act, &HashSet::new(), &unit_sizes, 30);
        // First project costs 20; second costs only 10 more (2 is shared).
        assert_eq!(sel.clusters_taken, 2);
        assert_eq!(sel.bytes, 30);
        assert_eq!(sel.files.len(), 3);
    }

    #[test]
    fn fill_list_pairs_sizes() {
        let sel = HoardSelection {
            files: vec![FileId(1), FileId(2)],
            bytes: 20,
            clusters_taken: 1,
            clusters_skipped: 0,
            directory_reserve: 0,
        };
        let list = sel.as_fill_list(&|f| u64::from(f.0) * 100);
        assert_eq!(list, vec![(FileId(1), 100), (FileId(2), 200)]);
    }
}
