//! Engine persistence: SEER's on-disk database of known files.
//!
//! The real SEER keeps its database of ~20 000 known files in (virtual)
//! memory and notes that storing it on disk would be straightforward
//! because "only a small fraction of the information is active at any
//! given time" (§5.3). This module is that straightforward step: the
//! engine's accumulated knowledge — path table, semantic-distance table,
//! per-file activity, always-hoard set, frequency counts, and per-program
//! history — serializes to JSON and restores into a fresh engine.
//!
//! Per-process state (descriptor tables, open-file lifetimes, live
//! counters) is deliberately *not* persisted: the processes it describes
//! do not survive the restart the snapshot exists for.

use crate::config::SeerConfig;
use crate::correlator::CorrelatorSnapshot;
use crate::engine::SeerEngine;
use seer_cluster::ClusterConfig;
use seer_observer::ObserverSnapshot;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// The complete persistent state of a [`SeerEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeerSnapshot {
    /// Observer knowledge (paths, always-hoard, frequency, program
    /// history).
    pub observer: ObserverSnapshot,
    /// Correlator knowledge (distance table, activity).
    pub correlator: CorrelatorSnapshot,
    /// Clustering configuration.
    pub cluster: ClusterConfig,
}

/// Errors arising while saving or loading a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input was not a valid snapshot.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Format(m) => write!(f, "snapshot format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> PersistError {
        PersistError::Format(e.to_string())
    }
}

impl SeerSnapshot {
    /// Writes the snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn save<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        serde_json::to_writer(w, self)?;
        Ok(())
    }

    /// Reads a snapshot written by [`SeerSnapshot::save`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Format`] if the input does not parse.
    pub fn load<R: BufRead>(r: &mut R) -> Result<SeerSnapshot, PersistError> {
        Ok(serde_json::from_reader(r)?)
    }
}

impl SeerEngine {
    /// Captures the engine's persistent knowledge (see the module docs for
    /// what is and is not included).
    #[must_use]
    pub fn snapshot(&self) -> SeerSnapshot {
        SeerSnapshot {
            observer: self.observer_snapshot(),
            correlator: self.correlator().snapshot(),
            cluster: *self.cluster_config(),
        }
    }

    /// Restores an engine from a snapshot; project clustering is
    /// recomputed on the next [`SeerEngine::recluster`].
    #[must_use]
    pub fn from_snapshot(snap: SeerSnapshot) -> SeerEngine {
        let correlator = crate::correlator::Correlator::from_snapshot(snap.correlator);
        SeerEngine::from_restored_parts(snap.observer, correlator, snap.cluster)
    }

    /// The effective configuration of a snapshot-restored or live engine.
    #[must_use]
    pub fn effective_config(&self) -> SeerConfig {
        SeerConfig {
            observer: self.observer_snapshot().config,
            distance: self.correlator().distance().config().clone(),
            cluster: *self.cluster_config(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_trace::{OpenMode, Pid, TraceBuilder};

    fn sample_trace() -> seer_trace::Trace {
        let mut b = TraceBuilder::new();
        for round in 0..6u32 {
            let pid = Pid(10 + round);
            b.exec(pid, "/usr/bin/cc");
            let files = ["/p/a.c", "/p/b.h", "/p/c.c", "/p/d.h"];
            let first = b.open(pid, files[round as usize % 4], OpenMode::Read);
            for k in 1..4 {
                b.touch(pid, files[(round as usize + k) % 4], OpenMode::Read);
            }
            b.close(pid, first);
            b.exit(pid);
        }
        b.build()
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut engine = SeerEngine::default();
        sample_trace().replay(&mut engine);
        engine.recluster();
        let snap = engine.snapshot();
        let mut buf = Vec::new();
        snap.save(&mut buf).expect("save");
        let back = SeerSnapshot::load(&mut buf.as_slice()).expect("load");
        let restored = SeerEngine::from_snapshot(back);
        // Knowledge survives: paths, activity, distances.
        assert_eq!(restored.paths().len(), engine.paths().len());
        assert_eq!(
            restored.correlator().activity().len(),
            engine.correlator().activity().len()
        );
        let a = engine.paths().get("/p/a.c").expect("known");
        let b = engine.paths().get("/p/b.h").expect("known");
        assert_eq!(
            restored
                .correlator()
                .distance()
                .table()
                .distance(a, b)
                .is_some(),
            engine
                .correlator()
                .distance()
                .table()
                .distance(a, b)
                .is_some()
        );
    }

    #[test]
    fn restored_engine_reclusters_identically() {
        let mut engine = SeerEngine::default();
        sample_trace().replay(&mut engine);
        let original = engine.recluster().clone();
        let mut restored = SeerEngine::from_snapshot(engine.snapshot());
        let re = restored.recluster().clone();
        assert_eq!(original.len(), re.len());
        let mut a: Vec<_> = original.clusters.iter().map(|c| c.files.clone()).collect();
        let mut b: Vec<_> = re.clusters.iter().map(|c| c.files.clone()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "identical clusters after restore");
    }

    #[test]
    fn restored_engine_keeps_learning() {
        let mut engine = SeerEngine::default();
        sample_trace().replay(&mut engine);
        let mut restored = SeerEngine::from_snapshot(engine.snapshot());
        // Continue observing after the "restart".
        let mut b = TraceBuilder::new();
        b.touch(Pid(99), "/p/new.c", OpenMode::Read);
        b.touch(Pid(99), "/p/a.c", OpenMode::Read);
        b.build().replay(&mut restored);
        assert!(restored.paths().get("/p/new.c").is_some());
        restored.recluster();
        assert!(!restored.rank().is_empty());
    }

    #[test]
    fn ranking_is_preserved_across_restore() {
        let mut engine = SeerEngine::default();
        sample_trace().replay(&mut engine);
        engine.recluster();
        let rank_before = engine.rank();
        let mut restored = SeerEngine::from_snapshot(engine.snapshot());
        restored.recluster();
        assert_eq!(restored.rank(), rank_before);
    }
}
