//! Top-level SEER configuration.

use seer_cluster::ClusterConfig;
use seer_distance::DistanceConfig;
use seer_observer::ObserverConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a full [`crate::SeerEngine`], aggregating the observer,
/// distance, and clustering settings (the paper's control files plus the
/// §4.9 tunables).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeerConfig {
    /// Observer settings (§4 heuristics).
    pub observer: ObserverConfig,
    /// Semantic-distance settings (§3.1).
    pub distance: DistanceConfig,
    /// Clustering settings (§3.3).
    pub cluster: ClusterConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_composes_component_defaults() {
        let c = SeerConfig::default();
        assert_eq!(c.distance.n_neighbors, 20);
        assert!(c.cluster.is_valid());
        assert!(c.observer.exclude_dot_files);
    }

    #[test]
    fn serde_round_trip() {
        let c = SeerConfig::default();
        let json = serde_json::to_string_pretty(&c).expect("serialize");
        let back: SeerConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.distance.window_m, c.distance.window_m);
    }
}
