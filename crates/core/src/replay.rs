//! Rebuilding an engine from logged history: snapshot + WAL replay.
//!
//! The daemon's write-ahead log stores two record kinds — string-table
//! declarations and applied event batches tagged with the engine
//! generation (total events applied) *after* each batch. A [`Replayer`]
//! consumes them in log order and reproduces exactly the state the live
//! engine had, because batching is semantically transparent: the default
//! [`EventSink::on_batch`] applies events one at a time, so replaying
//! the same events in the same order through `on_batch` lands on the
//! same state regardless of how batches were originally framed.
//!
//! [`EventSink::on_batch`]: seer_trace::EventSink::on_batch

use crate::engine::SeerEngine;
use seer_trace::{EventSink, StringTable, TraceEvent};

/// Feeds logged declarations and batches into an engine, tracking the
/// applied-event generation and tolerating (but counting) anomalies.
///
/// Two anomaly classes arise in practice and neither should abort a
/// daemon recovery, only a strict restore:
///
/// - **Stale batches** (generation at or below the starting point) are
///   skipped — the snapshot already contains them.
/// - **Gaps** (a batch whose generation is not `events_applied + len`)
///   mean the log does not connect contiguously to the base state, e.g.
///   replaying from a fallback snapshot older than what compaction
///   assumed. The batch is still applied (best effort), but the gap is
///   counted so callers can warn or refuse.
/// - **Misdeclarations** (an interns record whose ids do not line up
///   densely with the table) are counted and the conflicting ids are
///   skipped; ids already interned identically are the normal case at
///   every segment boundary, where a full-table snapshot record
///   re-declares everything.
pub struct Replayer {
    engine: SeerEngine,
    strings: StringTable,
    events_applied: u64,
    gaps: u64,
    misdeclared: u64,
}

impl Replayer {
    /// Starts from an engine state plus the generation it represents
    /// (`events_applied` as of the snapshot) — or a cold engine at 0.
    ///
    /// `strings` must be the table matching the engine's id space; for
    /// the daemon this is always a fresh table rebuilt from the log
    /// (the log's base records re-declare everything).
    #[must_use]
    pub fn new(engine: SeerEngine, strings: StringTable, events_applied: u64) -> Replayer {
        Replayer {
            engine,
            strings,
            events_applied,
            gaps: 0,
            misdeclared: 0,
        }
    }

    /// Declares string ids `base..base + paths.len()`, interning in
    /// order. Re-declarations of existing ids with the same string are
    /// normal (segment base records); conflicts are counted.
    pub fn declare(&mut self, base: u32, paths: &[String]) {
        for (i, p) in paths.iter().enumerate() {
            let want = base + i as u32;
            let current = self.strings.len() as u32;
            if want < current {
                // Already interned: verify it is the same string.
                if self.strings.get(p) != Some(seer_trace::RawPathId(want)) {
                    self.misdeclared += 1;
                }
            } else if want == current {
                self.strings.intern(p);
            } else {
                // A hole in the id space; interning here would assign
                // the wrong id. Count and skip.
                self.misdeclared += 1;
            }
        }
    }

    /// Applies one logged batch. `generation` is the applied-event
    /// count after the batch. Returns `true` if the batch was applied,
    /// `false` if it was stale (already covered by the base state).
    pub fn apply(&mut self, generation: u64, events: &[TraceEvent]) -> bool {
        if generation <= self.events_applied {
            return false;
        }
        if generation != self.events_applied + events.len() as u64 {
            self.gaps += 1;
        }
        self.engine.on_batch(events, &self.strings);
        self.events_applied = generation;
        true
    }

    /// The generation the engine has reached.
    #[must_use]
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Batches whose generation did not connect contiguously.
    #[must_use]
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// Interns records whose ids conflicted with the table.
    #[must_use]
    pub fn misdeclared(&self) -> u64 {
        self.misdeclared
    }

    /// A read-only view of the engine mid-replay.
    #[must_use]
    pub fn engine(&self) -> &SeerEngine {
        &self.engine
    }

    /// Consumes the replayer: engine, string table, and generation.
    #[must_use]
    pub fn into_parts(self) -> (SeerEngine, StringTable, u64) {
        (self.engine, self.strings, self.events_applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeerConfig;
    use seer_trace::{EventKind, Fd, OpenMode, Pid, RawPathId, Seq, Timestamp};

    fn ev(seq: u64, path: RawPathId) -> TraceEvent {
        TraceEvent {
            seq: Seq(seq),
            time: Timestamp::from_millis(seq),
            pid: Pid(1),
            root: false,
            kind: EventKind::Open {
                path,
                mode: OpenMode::Read,
                fd: Fd(3),
            },
            error: None,
        }
    }

    fn cold() -> Replayer {
        Replayer::new(
            SeerEngine::new(SeerConfig::default()),
            StringTable::new(),
            0,
        )
    }

    #[test]
    fn replay_matches_direct_application() {
        // Build the reference state by direct per-event application.
        let mut direct = SeerEngine::new(SeerConfig::default());
        let mut table = StringTable::new();
        let a = table.intern("/proj/a.c");
        let b = table.intern("/proj/b.c");
        let events = [ev(1, a), ev(2, b), ev(3, a), ev(4, b)];
        for e in &events {
            direct.on_event(e, &table);
        }

        // Replay the same history as logged records, framed differently.
        let mut rep = cold();
        rep.declare(0, &["/proj/a.c".into(), "/proj/b.c".into()]);
        assert!(rep.apply(3, &events[..3]));
        assert!(rep.apply(4, &events[3..]));
        assert_eq!(rep.events_applied(), 4);
        assert_eq!(rep.gaps(), 0);
        let (replayed, strings, _) = rep.into_parts();
        assert_eq!(strings.len(), table.len());
        assert_eq!(
            serde_json::to_string(&replayed.snapshot()).unwrap(),
            serde_json::to_string(&direct.snapshot()).unwrap(),
            "replayed state must be bit-identical to direct application"
        );
    }

    #[test]
    fn stale_batches_are_skipped() {
        let mut table = StringTable::new();
        let a = table.intern("/a");
        let mut engine = SeerEngine::new(SeerConfig::default());
        engine.on_event(&ev(1, a), &table);

        // Base state is at generation 1; the log starts before that.
        let mut rep = Replayer::new(engine, StringTable::new(), 1);
        rep.declare(0, &["/a".into()]);
        assert!(!rep.apply(1, &[ev(1, a)]), "stale");
        assert!(rep.apply(2, &[ev(2, a)]), "fresh");
        assert_eq!(rep.events_applied(), 2);
        assert_eq!(rep.gaps(), 0);
    }

    #[test]
    fn gaps_are_counted_but_applied() {
        let mut rep = cold();
        rep.declare(0, &["/a".into()]);
        assert!(rep.apply(1, &[ev(1, RawPathId(0))]));
        // Generation jumps from 1 to 5 with only one event: a gap.
        assert!(rep.apply(5, &[ev(5, RawPathId(0))]));
        assert_eq!(rep.gaps(), 1);
        assert_eq!(rep.events_applied(), 5);
    }

    #[test]
    fn redeclarations_at_segment_boundaries_are_clean() {
        let mut rep = cold();
        rep.declare(0, &["/a".into(), "/b".into()]);
        // A new segment's base record re-declares the full table.
        rep.declare(0, &["/a".into(), "/b".into()]);
        assert_eq!(rep.misdeclared(), 0);
        // A delta continues from the end.
        rep.declare(2, &["/c".into()]);
        assert_eq!(rep.misdeclared(), 0);
        // A conflicting redeclaration is counted.
        rep.declare(0, &["/zzz".into()]);
        assert_eq!(rep.misdeclared(), 1);
        // A hole (declaring past the end) is counted, not interned.
        rep.declare(10, &["/hole".into()]);
        assert_eq!(rep.misdeclared(), 2);
    }
}
