//! SEER's core: correlator, project ranking, and hoard management (§2).
//!
//! This crate assembles the pipeline the paper describes — observer →
//! correlator (semantic distance + clustering) → hoard selection — behind
//! one entry point, [`SeerEngine`]:
//!
//! ```text
//! TraceEvent → Observer → Reference → Correlator ─┬─ DistanceEngine → NeighborTable
//!                                                 └─ ActivityTracker
//!                       clustering (+ investigator relations)
//!                       → project ranking → whole-project hoard selection
//! ```
//!
//! The hoard managers live here too: SEER's cluster-based manager, the
//! strict-LRU baseline, and the CODA-inspired priority schemes the paper's
//! simulations compared against (§5.1.2).

#![warn(missing_docs)]

pub mod activity;
pub mod config;
pub mod correlator;
pub mod engine;
pub mod manager;
pub mod persist;
pub mod rankers;
pub mod replay;

pub use activity::ActivityTracker;
pub use config::SeerConfig;
pub use correlator::Correlator;
pub use engine::{EvalInput, ReclusterInput, SeerEngine};
pub use manager::{select_hoard, HoardSelection};
pub use persist::{PersistError, SeerSnapshot};
pub use rankers::{CodaInspiredRanker, HoardRanker, LruRanker, RankContext, SeerRanker};
pub use replay::Replayer;
pub use seer_cluster::{Clustering, PairCountCache};
pub use seer_distance::TableDirty;
