//! Incremental shared-neighbor maintenance must be bit-identical to a
//! full recount on realistic traces.
//!
//! This drives the exact protocol the daemon's recluster worker uses:
//! after each batch the dirty delta is drained at the same moment the
//! recluster input is frozen, and the worker-side pair-count cache is
//! carried from one job to the next. Every step is checked against a
//! full recount of the same view, across all nine calibrated machine
//! workloads (§6.2's machines A–I).

use seer_core::{PairCountCache, SeerEngine};
use seer_trace::EventSink;
use seer_workload::{generate, MachineProfile};

#[test]
fn incremental_recluster_matches_full_on_machine_traces() {
    for name in ["A", "B", "C", "D", "E", "F", "G", "H", "I"] {
        // Four days: the lightest machines (B, E) generate no events at
        // all on shorter horizons.
        let profile = MachineProfile {
            days: 4,
            ..MachineProfile::by_name(name).expect("known machine")
        };
        let workload = generate(&profile, 11);
        let trace = workload.trace;
        let mut engine = SeerEngine::default();
        let mut cache: Option<PairCountCache> = None;
        let mut incremental_runs = 0u32;
        let per = trace.events.len().div_ceil(6).max(1);
        for chunk in trace.events.chunks(per) {
            engine.on_batch(chunk, &trace.strings);
            let dirty = engine.take_dirty();
            let input = engine.recluster_input();
            let inc = input.compute_incremental(1, Some(&dirty), &mut cache);
            let full = input.compute(1);
            assert_eq!(
                inc.clustering.clusters, full.clustering.clusters,
                "machine {name}: incremental diverged from full recount"
            );
            assert_eq!(
                inc.clustering.membership_fingerprint(),
                full.clustering.membership_fingerprint(),
                "machine {name}: fingerprints diverged"
            );
            incremental_runs += u32::from(inc.incremental);
        }
        assert!(
            incremental_runs >= 1,
            "machine {name}: the incremental path never ran (only {incremental_runs} of 6)"
        );
    }
}
