//! The distance engine: from references to the neighbor table.

use crate::config::DistanceConfig;
use crate::history::{Observation, ProcessHistory};
use crate::table::NeighborTable;
use seer_observer::{RefKind, Reference, ReferenceSink};
use seer_trace::{FileId, IdHashMap, PathTable, Pid};
use serde::{Deserialize, Serialize};

/// Counters describing distance-engine activity.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct DistanceStats {
    /// Whole-file opening references processed.
    pub opens: u64,
    /// Pairwise observations folded into the table.
    pub observations: u64,
    /// Observations capped to the window bound `M` (§3.1.3).
    pub compensated: u64,
    /// Live neighbors displaced from full rows by closer or fresher
    /// candidates (the O(n) approximation's forgetting, §3.1.3).
    #[serde(skip)]
    pub evictions: u64,
    /// Files purged after delayed deletion (§4.8).
    pub purged: u64,
    /// Child histories merged into parents (§4.7).
    pub merges: u64,
}

/// Serializable persistent state of a [`DistanceEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Distance configuration.
    pub config: DistanceConfig,
    /// The neighbor table.
    pub table: crate::table::TableSnapshot,
    /// Accumulated statistics.
    pub stats: DistanceStats,
}

/// The correlator's first half: consumes the observer's [`Reference`]
/// stream and maintains the semantic-distance [`NeighborTable`].
#[derive(Debug)]
pub struct DistanceEngine {
    config: DistanceConfig,
    table: NeighborTable,
    histories: IdHashMap<Pid, ProcessHistory>,
    stats: DistanceStats,
    obs_buf: Vec<Observation>,
}

impl DistanceEngine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: DistanceConfig) -> DistanceEngine {
        let table = NeighborTable::new(
            config.n_neighbors,
            config.reduction,
            config.aging_refs,
            config.deletion_delay,
            config.seed,
        );
        DistanceEngine {
            config,
            table,
            histories: IdHashMap::default(),
            stats: DistanceStats::default(),
            obs_buf: Vec::with_capacity(128),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DistanceConfig {
        &self.config
    }

    /// The semantic-distance table.
    #[must_use]
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }

    /// Engine statistics.
    #[must_use]
    pub fn stats(&self) -> &DistanceStats {
        &self.stats
    }

    /// Takes the neighbor-table rows whose membership changed since the
    /// previous call (see [`NeighborTable::take_dirty`]), for incremental
    /// shared-neighbor maintenance.
    pub fn take_dirty(&mut self) -> crate::table::TableDirty {
        self.table.take_dirty()
    }

    /// Consumes the engine, returning the table.
    #[must_use]
    pub fn into_table(self) -> NeighborTable {
        self.table
    }

    /// Captures the engine's persistent state (configuration, table, and
    /// statistics). Per-process reference histories are transient — the
    /// processes they describe do not survive a restart — and are not
    /// included.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            config: self.config.clone(),
            table: self.table.snapshot(),
            stats: self.stats,
        }
    }

    /// Restores an engine from a snapshot; process histories start empty.
    #[must_use]
    pub fn from_snapshot(snap: EngineSnapshot) -> DistanceEngine {
        let seed = snap.config.seed;
        DistanceEngine {
            table: crate::table::NeighborTable::from_snapshot(snap.table, seed),
            config: snap.config,
            histories: IdHashMap::default(),
            stats: snap.stats,
            obs_buf: Vec::with_capacity(128),
        }
    }

    fn stream_key(&self, pid: Pid) -> Pid {
        if self.config.per_process {
            pid
        } else {
            Pid(0)
        }
    }

    fn record_open(&mut self, pid: Pid, file: FileId, time: seer_trace::Timestamp) {
        self.stats.opens += 1;
        let key = self.stream_key(pid);
        let mut obs = std::mem::take(&mut self.obs_buf);
        obs.clear();
        let history = self.histories.entry(key).or_default();
        history.record_open_with(
            self.config.kind,
            self.config.window_m,
            self.config.elide_repeats,
            file,
            time,
            &mut obs,
        );
        self.stats.evictions += self.table.observe_window(&obs, file);
        self.stats.observations += obs.len() as u64;
        self.stats.compensated += obs.iter().filter(|o| o.compensated).count() as u64;
        self.obs_buf = obs;
    }

    fn record_close(&mut self, pid: Pid, file: FileId) {
        let key = self.stream_key(pid);
        if let Some(h) = self.histories.get_mut(&key) {
            h.record_close(file);
        }
    }
}

impl ReferenceSink for DistanceEngine {
    fn on_reference(&mut self, r: &Reference, _paths: &PathTable) {
        self.table.tick();
        match r.kind {
            RefKind::Open { .. } => self.record_open(r.pid, r.file, r.time),
            RefKind::Close => self.record_close(r.pid, r.file),
            RefKind::Point { .. } => {
                // An open immediately followed by a close (§3.1).
                self.record_open(r.pid, r.file, r.time);
                self.record_close(r.pid, r.file);
            }
            RefKind::Delete => {
                // The reference itself is semantically meaningful (§4.8) …
                self.record_open(r.pid, r.file, r.time);
                self.record_close(r.pid, r.file);
                // … and the name is marked for delayed removal.
                let purged = self.table.note_deletion(r.file);
                self.stats.purged += purged.len() as u64;
                for f in purged {
                    for h in self.histories.values_mut() {
                        h.forget_file(f);
                    }
                }
            }
            RefKind::Fork { child } => {
                if self.config.per_process {
                    let parent_hist = self.histories.get(&r.pid).cloned().unwrap_or_default();
                    self.histories.insert(child, parent_hist);
                }
            }
            RefKind::Exit { parent } => {
                if self.config.per_process {
                    if let Some(child_hist) = self.histories.remove(&r.pid) {
                        if let Some(p) = parent {
                            self.stats.merges += 1;
                            self.histories
                                .entry(p)
                                .or_default()
                                .merge_child(&child_hist, self.config.window_m);
                        }
                    }
                }
            }
            RefKind::HoardMiss | RefKind::DirList => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DistanceKind, ReductionKind};
    use seer_trace::{Seq, Timestamp};

    fn mk_ref(seq: u64, pid: u32, file: u32, kind: RefKind) -> Reference {
        Reference {
            seq: Seq(seq),
            time: Timestamp::from_secs(seq),
            pid: Pid(pid),
            file: FileId(file),
            kind,
        }
    }

    fn open(e: &mut DistanceEngine, seq: u64, pid: u32, file: u32) {
        let paths = PathTable::new();
        e.on_reference(
            &mk_ref(
                seq,
                pid,
                file,
                RefKind::Open {
                    read: true,
                    write: false,
                    exec: false,
                },
            ),
            &paths,
        );
    }

    fn close(e: &mut DistanceEngine, seq: u64, pid: u32, file: u32) {
        let paths = PathTable::new();
        e.on_reference(&mk_ref(seq, pid, file, RefKind::Close), &paths);
    }

    /// Figure 1 end-to-end through the engine: Ao Bo Bc Co Cc Ac Do Dc.
    #[test]
    fn figure1_through_engine() {
        let mut e = DistanceEngine::new(DistanceConfig::default());
        let (a, b, c, d) = (0, 1, 2, 3);
        open(&mut e, 0, 1, a);
        open(&mut e, 1, 1, b);
        close(&mut e, 2, 1, b);
        open(&mut e, 3, 1, c);
        close(&mut e, 4, 1, c);
        close(&mut e, 5, 1, a);
        open(&mut e, 6, 1, d);
        close(&mut e, 7, 1, d);

        let t = e.table();
        let dist = |x: u32, y: u32| t.distance(FileId(x), FileId(y)).expect("stored");
        assert!(dist(a, b).abs() < 1e-9, "A→B = 0");
        assert!(dist(a, c).abs() < 1e-9, "A→C = 0");
        assert!((dist(a, d) - 3.0).abs() < 1e-9, "A→D = 3");
        assert!((dist(b, c) - 1.0).abs() < 1e-9, "B→C = 1");
        assert!((dist(b, d) - 2.0).abs() < 1e-9, "B→D = 2");
        assert!((dist(c, d) - 1.0).abs() < 1e-9, "C→D = 1");
        // Backward distances are undefined (never observed).
        assert_eq!(t.distance(FileId(d), FileId(a)), None);
    }

    #[test]
    fn per_process_streams_stay_separate() {
        let mut e = DistanceEngine::new(DistanceConfig::default());
        // Two interleaved processes touching unrelated files.
        open(&mut e, 0, 1, 10);
        open(&mut e, 1, 2, 20);
        close(&mut e, 2, 1, 10);
        close(&mut e, 3, 2, 20);
        open(&mut e, 4, 1, 11);
        open(&mut e, 5, 2, 21);
        let t = e.table();
        assert!(
            t.distance(FileId(10), FileId(11)).is_some(),
            "same-process pair stored"
        );
        assert!(t.distance(FileId(20), FileId(21)).is_some());
        assert!(
            t.distance(FileId(10), FileId(20)).is_none(),
            "cross-process pair must not exist (§4.7)"
        );
        assert!(t.distance(FileId(10), FileId(21)).is_none());
    }

    #[test]
    fn merged_streams_create_spurious_relationships() {
        // Ablation: without per-process separation the same interleaving
        // links unrelated files — the problem §4.7 describes.
        let cfg = DistanceConfig {
            per_process: false,
            ..DistanceConfig::default()
        };
        let mut e = DistanceEngine::new(cfg);
        open(&mut e, 0, 1, 10);
        open(&mut e, 1, 2, 20);
        close(&mut e, 2, 1, 10);
        close(&mut e, 3, 2, 20);
        open(&mut e, 4, 1, 11);
        let t = e.table();
        assert!(
            t.distance(FileId(20), FileId(11)).is_some(),
            "spurious pair appears"
        );
    }

    #[test]
    fn fork_and_exit_merge_histories() {
        let mut e = DistanceEngine::new(DistanceConfig::default());
        let paths = PathTable::new();
        open(&mut e, 0, 1, 10);
        close(&mut e, 1, 1, 10);
        e.on_reference(
            &mk_ref(2, 1, u32::MAX, RefKind::Fork { child: Pid(2) }),
            &paths,
        );
        // The child inherits the parent's history: its open relates to 10.
        open(&mut e, 3, 2, 30);
        assert!(
            e.table().distance(FileId(10), FileId(30)).is_some(),
            "inherited history"
        );
        close(&mut e, 4, 2, 30);
        e.on_reference(
            &mk_ref(
                5,
                2,
                u32::MAX,
                RefKind::Exit {
                    parent: Some(Pid(1)),
                },
            ),
            &paths,
        );
        assert_eq!(e.stats().merges, 1);
        // After the merge, the parent's next open relates to the child's
        // file (§4.7 extended relationships).
        open(&mut e, 6, 1, 40);
        assert!(
            e.table().distance(FileId(30), FileId(40)).is_some(),
            "merged history"
        );
    }

    #[test]
    fn deletes_eventually_purge_files() {
        let cfg = DistanceConfig {
            deletion_delay: 2,
            ..DistanceConfig::default()
        };
        let mut e = DistanceEngine::new(cfg);
        let paths = PathTable::new();
        open(&mut e, 0, 1, 10);
        close(&mut e, 1, 1, 10);
        open(&mut e, 2, 1, 11);
        close(&mut e, 3, 1, 11);
        e.on_reference(&mk_ref(4, 1, 10, RefKind::Delete), &paths);
        assert!(e.table().is_marked_deleted(FileId(10)));
        e.on_reference(&mk_ref(5, 1, 99, RefKind::Delete), &paths);
        e.on_reference(&mk_ref(6, 1, 98, RefKind::Delete), &paths);
        assert!(e.stats().purged >= 1);
        assert!(e.table().distance(FileId(10), FileId(11)).is_none());
    }

    #[test]
    fn point_references_participate_in_distance() {
        let mut e = DistanceEngine::new(DistanceConfig::default());
        let paths = PathTable::new();
        open(&mut e, 0, 1, 10);
        e.on_reference(&mk_ref(1, 1, 20, RefKind::Point { write: false }), &paths);
        assert!(
            e.table()
                .distance(FileId(10), FileId(20))
                .is_some_and(|d| d.abs() < 1e-9),
            "stat while 10 is open → lifetime distance 0"
        );
    }

    #[test]
    fn temporal_kind_uses_wall_clock() {
        let cfg = DistanceConfig {
            kind: DistanceKind::Temporal,
            ..DistanceConfig::default()
        };
        let mut e = DistanceEngine::new(cfg);
        open(&mut e, 0, 1, 10); // t = 0 s
        close(&mut e, 1, 1, 10);
        open(&mut e, 30, 1, 11); // t = 30 s
        let d = e.table().distance(FileId(10), FileId(11)).expect("stored");
        assert!((d - 30.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_reduction_ablation() {
        let cfg = DistanceConfig {
            reduction: ReductionKind::Arithmetic,
            ..DistanceConfig::default()
        };
        let mut e = DistanceEngine::new(cfg);
        // Two observations: distances 1 and 3 → arithmetic mean 2.
        open(&mut e, 0, 1, 10);
        close(&mut e, 1, 1, 10);
        open(&mut e, 2, 1, 11); // 10→11 = 1
        close(&mut e, 3, 1, 11);
        open(&mut e, 4, 1, 10);
        close(&mut e, 5, 1, 10);
        open(&mut e, 6, 1, 99);
        close(&mut e, 7, 1, 99);
        open(&mut e, 8, 1, 98);
        close(&mut e, 9, 1, 98);
        open(&mut e, 10, 1, 11); // 10→11 = 3
        let d = e.table().distance(FileId(10), FileId(11)).expect("stored");
        assert!(
            (d - 2.0).abs() < 1e-9,
            "arithmetic mean of 1 and 3, got {d}"
        );
    }

    #[test]
    fn stats_track_activity() {
        let mut e = DistanceEngine::new(DistanceConfig::default());
        open(&mut e, 0, 1, 1);
        open(&mut e, 1, 1, 2);
        assert_eq!(e.stats().opens, 2);
        assert_eq!(e.stats().observations, 1);
        assert_eq!(e.stats().evictions, 0);
    }

    #[test]
    fn stats_count_evictions_from_full_rows() {
        // One-neighbor rows with temporal distance: a later, closer pair
        // displaces the stored one.
        let cfg = DistanceConfig {
            kind: DistanceKind::Temporal,
            n_neighbors: 1,
            ..DistanceConfig::default()
        };
        let mut e = DistanceEngine::new(cfg);
        open(&mut e, 0, 1, 10);
        close(&mut e, 1, 1, 10);
        open(&mut e, 100, 1, 11); // 10→11 at temporal distance ~100.
        close(&mut e, 101, 1, 11);
        open(&mut e, 200, 1, 10); // Re-reference 10.
        close(&mut e, 201, 1, 10);
        open(&mut e, 210, 1, 12); // 10→12 at distance ~10 < 100: evicts 11.
        assert!(
            e.stats().evictions >= 1,
            "full row displaced: {:?}",
            e.stats()
        );
        assert!(e.table().distance(FileId(10), FileId(12)).is_some());
    }
}
