//! Distance-engine configuration and the paper's constants.

use serde::{Deserialize, Serialize};

/// Which semantic-distance definition to use (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceKind {
    /// Definition 1: elapsed wall-clock time between references (in
    /// seconds). Flawed by the disparity between human and computer time
    /// scales; kept for ablation.
    Temporal,
    /// Definition 2: number of intervening references to other files.
    Sequence,
    /// Definition 3: zero while the earlier file is still open, otherwise
    /// the number of intervening opens including the later one. SEER's
    /// production measure.
    Lifetime,
}

/// How multiple event distances reduce to one file distance (§3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReductionKind {
    /// Arithmetic mean: simple but lets one large distance swamp small
    /// ones (1, 1, 1498 → 500); kept for ablation.
    Arithmetic,
    /// Geometric mean: gives small distances the significance they deserve.
    /// SEER's production reduction. Computed over `1 + d` so zero
    /// distances are well-defined.
    Geometric,
}

/// Configuration for a [`crate::DistanceEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceConfig {
    /// Active distance definition.
    pub kind: DistanceKind,
    /// Active reduction.
    pub reduction: ReductionKind,
    /// Neighbors stored per file (`n = 20` in the paper, §3.1.3).
    pub n_neighbors: usize,
    /// Update window: only files within this many references of the
    /// current one have their distances updated (`M = 100`, §3.1.3).
    pub window_m: u64,
    /// Whether references are tracked per process (§4.7). Disabling merges
    /// all processes into one stream, reproducing the spurious-relationship
    /// problem the paper describes; for ablation.
    pub per_process: bool,
    /// The footnote-1 alternative: elide repeated references when counting
    /// intervening opens, so {A, C, C, C, B} puts A→B at distance 1 rather
    /// than 3. SEER "chose not to do this partly for efficiency, and partly
    /// to capture the phenomenon of intensive work on a single project";
    /// implemented for ablation.
    pub elide_repeats: bool,
    /// A neighbor not updated for this many engine references becomes
    /// replaceable by aging (§3.1.3).
    pub aging_refs: u64,
    /// Deleted files are purged only after this many further deletions
    /// (§4.8's delayed removal).
    pub deletion_delay: u64,
    /// Seed for random tie-breaking in the replacement policy.
    pub seed: u64,
}

impl Default for DistanceConfig {
    fn default() -> DistanceConfig {
        DistanceConfig {
            kind: DistanceKind::Lifetime,
            reduction: ReductionKind::Geometric,
            n_neighbors: 20,
            window_m: 100,
            per_process: true,
            elide_repeats: false,
            aging_refs: 20_000,
            deletion_delay: 50,
            seed: 0x5eed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = DistanceConfig::default();
        assert_eq!(c.kind, DistanceKind::Lifetime);
        assert_eq!(c.reduction, ReductionKind::Geometric);
        assert_eq!(c.n_neighbors, 20, "n = 20 (§3.1.3)");
        assert_eq!(c.window_m, 100, "M = 100 (§3.1.3)");
        assert!(c.per_process, "per-process streams are essential (§4.7)");
    }

    #[test]
    fn serde_round_trip() {
        let c = DistanceConfig::default();
        let json = serde_json::to_string(&c).expect("serialize");
        let back: DistanceConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.n_neighbors, c.n_neighbors);
        assert_eq!(back.kind, c.kind);
    }
}
