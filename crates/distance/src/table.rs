//! The n-nearest-neighbor distance table (§3.1.3).
//!
//! Storing all N² pairwise distances is prohibitive, so SEER keeps only the
//! `n = 20` closest neighbors of each file. When a closer candidate
//! arrives and the row is full, replacement follows a strict priority:
//! first a neighbor marked for deletion, then the neighbor with the largest
//! current distance (ties broken randomly) if it is farther than the
//! candidate, and finally an aging rule that lets very old, inactive
//! references give way to new ones.
//!
//! # Storage layout
//!
//! Rows are stored struct-of-arrays, indexed by the dense [`FileId`] space:
//! the row of file index `i` occupies slots `[i*n, i*n + row_len[i])` of
//! three parallel arrays (target id, streaming summary, last-update clock).
//! The hot path — one [`NeighborTable::observe`] per distance observation —
//! therefore never hashes a key: row lookup is one multiply, and the
//! priority scans walk a few contiguous cache lines. Deletion marks and
//! dead files are dense bitmaps for the same reason.

use crate::config::ReductionKind;
use crate::reduction::PairSummary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use seer_trace::FileId;
use serde::{Deserialize, Serialize};

/// One stored neighbor relation `from → to`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NeighborEntry {
    /// The related file.
    pub to: FileId,
    /// Streaming distance summary.
    pub summary: PairSummary,
    /// Table clock value of the most recent update (drives aging).
    pub last_update: u64,
}

/// Sentinel in the dense mark array: not marked for deletion.
const UNMARKED: u64 = u64::MAX;

/// The rows whose neighbor *membership* changed since the last
/// [`NeighborTable::take_dirty`], for incremental shared-neighbor
/// maintenance. Distance-only updates to an existing entry do not dirty a
/// row: clustering consumes neighbor identities, not distances.
#[derive(Debug, Default, Clone)]
pub struct TableDirty {
    /// Files whose neighbor target lists gained or swapped members.
    pub rows: Vec<FileId>,
    /// Whether a structural change (a file died and was purged) occurred;
    /// a dead file disappears from *every* row's live view, so incremental
    /// consumers must fall back to a full recount.
    pub structural: bool,
}

impl TableDirty {
    /// Folds `other` into this delta: the union describes the combined
    /// span of table changes, so two consecutive deltas merge into one
    /// that is valid against the older baseline.
    pub fn merge(&mut self, other: TableDirty) {
        self.rows.extend(other.rows);
        self.rows.sort_unstable();
        self.rows.dedup();
        self.structural |= other.structural;
    }
}

/// Per-slot payload rewritten together on every fold: the running pair
/// summary and the last-update stamp. One array element (24 bytes) so a
/// hit touches a single payload cache line.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    summary: PairSummary,
    update: u64,
}

/// The global semantic-distance table.
#[derive(Debug)]
pub struct NeighborTable {
    n: usize,
    reduction: ReductionKind,
    aging_refs: u64,
    deletion_delay: u64,
    /// SoA row storage (see module docs): slot `i*n + k` is entry `k` of
    /// the row of file index `i`. `slot_to` is the scan-only key array;
    /// `slot_meta` is the payload the hit path rewrites — summary and
    /// update stamp together, so a fold dirties one payload cache line
    /// instead of two.
    slot_to: Vec<FileId>,
    slot_meta: Vec<SlotMeta>,
    /// Memoized reduced distance per slot, valid while `slot_dist_count`
    /// matches the summary's observation count (0 = never memoized; real
    /// counts start at 1). Spares the priority-2 scan an `exp` per entry.
    slot_dist: Vec<f64>,
    slot_dist_count: Vec<u32>,
    /// Entries in use per row, indexed by file.
    row_len: Vec<u32>,
    live_rows: usize,
    entries: usize,
    /// Deletion-mark tick per file ([`UNMARKED`] = live), §4.8's delayed
    /// removal.
    marked_tick: Vec<u64>,
    /// Files currently listed in `marked_list` (rescued files stay listed
    /// until the next purge scan drops them lazily).
    in_marked_list: Vec<bool>,
    marked_list: Vec<FileId>,
    /// Files fully purged; entries pointing at them are garbage.
    dead: Vec<bool>,
    dead_list: Vec<FileId>,
    /// Rows dirtied since the last `take_dirty` (flag array dedups).
    dirty_flag: Vec<bool>,
    dirty_rows: Vec<FileId>,
    structural: bool,
    /// Scratch for the priority-2 tie-break scan, kept to avoid a per-call
    /// allocation.
    scratch_idxs: Vec<usize>,
    deletion_tick: u64,
    clock: u64,
    rng: SmallRng,
}

impl NeighborTable {
    /// Creates a table keeping `n` neighbors per file.
    #[must_use]
    pub fn new(
        n: usize,
        reduction: ReductionKind,
        aging_refs: u64,
        deletion_delay: u64,
        seed: u64,
    ) -> NeighborTable {
        NeighborTable {
            n,
            reduction,
            aging_refs,
            deletion_delay,
            slot_to: Vec::new(),
            slot_meta: Vec::new(),
            slot_dist: Vec::new(),
            slot_dist_count: Vec::new(),
            row_len: Vec::new(),
            live_rows: 0,
            entries: 0,
            marked_tick: Vec::new(),
            in_marked_list: Vec::new(),
            marked_list: Vec::new(),
            dead: Vec::new(),
            dead_list: Vec::new(),
            dirty_flag: Vec::new(),
            dirty_rows: Vec::new(),
            structural: false,
            scratch_idxs: Vec::new(),
            deletion_tick: 0,
            clock: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The reduction in use.
    #[must_use]
    pub fn reduction(&self) -> ReductionKind {
        self.reduction
    }

    /// Advances the table clock by one reference; call once per processed
    /// reference so aging is measured in references.
    pub fn tick(&mut self) {
        self.clock += 1;
    }

    /// Current table clock.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Grows the per-file metadata arrays to cover `file`.
    fn ensure_meta(&mut self, file: FileId) {
        let need = file.index() + 1;
        if need > self.row_len.len() {
            self.row_len.resize(need, 0);
            self.marked_tick.resize(need, UNMARKED);
            self.in_marked_list.resize(need, false);
            self.dead.resize(need, false);
            self.dirty_flag.resize(need, false);
        }
    }

    /// Grows the SoA slot arrays to hold the row of `file`.
    fn ensure_row_slots(&mut self, file: FileId) {
        let need = (file.index() + 1) * self.n;
        if need > self.slot_to.len() {
            self.slot_to.resize(need, FileId::NONE);
            self.slot_meta.resize(
                need,
                SlotMeta {
                    summary: PairSummary::first(self.reduction, 0.0),
                    update: 0,
                },
            );
            self.slot_dist.resize(need, 0.0);
            self.slot_dist_count.resize(need, 0);
        }
    }

    /// Requests that the head of `file`'s neighbor row be brought into
    /// cache ahead of a subsequent [`NeighborTable::observe`] scan.
    ///
    /// The distance engine calls this one observation ahead while
    /// draining a window's observation list: the rows a window references
    /// are scattered across the table, and a non-blocking prefetch hides
    /// most of the row-scan miss latency. On non-x86 targets this is a
    /// no-op. The pointers handed to the intrinsic come from checked
    /// `get`s, and a prefetch performs no architectural memory access, so
    /// the `unsafe` blocks are trivially sound.
    #[inline]
    pub fn prefetch_row(&self, file: FileId) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let i = file.index();
            if i >= self.row_len.len() {
                return;
            }
            if let Some(first) = self.slot_to.get(i * self.n) {
                unsafe {
                    _mm_prefetch(std::ptr::from_ref(first).cast::<i8>(), _MM_HINT_T0);
                }
            }
            if let Some(meta) = self.slot_meta.get(i * self.n) {
                unsafe {
                    _mm_prefetch(std::ptr::from_ref(meta).cast::<i8>(), _MM_HINT_T0);
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = file;
    }

    /// The reduced distance of slot `s`, memoized per summary state: the
    /// distance is a pure function of the summary, so a matching
    /// observation-count stamp returns the previously materialized value
    /// bit-identically.
    #[inline]
    fn slot_distance(&mut self, s: usize) -> f64 {
        let c = self.slot_meta[s].summary.count();
        if self.slot_dist_count[s] == c {
            return self.slot_dist[s];
        }
        let d = self.slot_meta[s].summary.distance(self.reduction);
        self.slot_dist[s] = d;
        self.slot_dist_count[s] = c;
        d
    }

    #[inline]
    fn is_dead(&self, file: FileId) -> bool {
        self.dead.get(file.index()).copied().unwrap_or(false)
    }

    #[inline]
    fn is_marked(&self, file: FileId) -> bool {
        self.marked_tick
            .get(file.index())
            .is_some_and(|&t| t != UNMARKED)
    }

    #[inline]
    fn mark_row_dirty(&mut self, file: FileId) {
        let i = file.index();
        if !self.dirty_flag[i] {
            self.dirty_flag[i] = true;
            self.dirty_rows.push(file);
        }
    }

    /// Folds one distance observation `from → to` into the table.
    ///
    /// Returns `true` when admitting the pair displaced a live neighbor
    /// from a full row (the O(n)-approximation evictions of §3.1.3);
    /// replacing a deletion-marked or dead entry is cleanup, not an
    /// eviction.
    pub fn observe(&mut self, from: FileId, to: FileId, distance: f64) -> bool {
        if to == FileId::NONE || self.is_dead(to) {
            return false;
        }
        // A fresh reference *to* a deletion-marked name means the name was
        // reused; rescue it (§4.8). `from` files are mere window history
        // and do not count as reuse. The store is guarded so the common
        // case (nothing marked) leaves the cache line clean.
        if let Some(t) = self.marked_tick.get_mut(to.index()) {
            if *t != UNMARKED {
                *t = UNMARKED;
            }
        }
        self.ensure_meta(to);
        self.observe_from(from, to, distance)
    }

    /// Folds one window's observations, all targeting the same new
    /// reference `to` — semantically identical to calling
    /// [`NeighborTable::observe`] per item in order, with the target-side
    /// work (liveness check, §4.8 rescue, metadata growth) hoisted out of
    /// the loop and each next row prefetched while the current one folds.
    /// Returns the number of evictions.
    pub fn observe_window(
        &mut self,
        observations: &[crate::history::Observation],
        to: FileId,
    ) -> u64 {
        if to == FileId::NONE || self.is_dead(to) {
            return 0;
        }
        if let Some(t) = self.marked_tick.get_mut(to.index()) {
            if *t != UNMARKED {
                *t = UNMARKED;
            }
        }
        self.ensure_meta(to);
        if let Some(first) = observations.first() {
            self.prefetch_row(first.from);
        }
        let mut evictions = 0;
        for (k, o) in observations.iter().enumerate() {
            if let Some(next) = observations.get(k + 1) {
                self.prefetch_row(next.from);
            }
            evictions += u64::from(self.observe_from(o.from, to, o.distance));
        }
        evictions
    }

    /// The from-row half of [`NeighborTable::observe`]: assumes the
    /// target-side checks already ran.
    #[inline]
    fn observe_from(&mut self, from: FileId, to: FileId, distance: f64) -> bool {
        if from == to || from == FileId::NONE || self.is_dead(from) {
            return false;
        }
        self.ensure_meta(from);
        self.ensure_row_slots(from);
        let clock = self.clock;
        let reduction = self.reduction;
        let i = from.index();
        let base = i * self.n;
        let len = self.row_len[i] as usize;
        // Slice scan (not an indexed loop) so the search for an existing
        // entry compiles bounds-check-free — this is the hottest loop in
        // the observation path.
        if let Some(k) = self.slot_to[base..base + len].iter().position(|&t| t == to) {
            let s = base + k;
            let m = &mut self.slot_meta[s];
            m.summary.observe(reduction, distance);
            m.update = clock;
            return false;
        }
        let summary = PairSummary::first(reduction, distance);
        if len < self.n {
            self.slot_to[base + len] = to;
            self.slot_meta[base + len] = SlotMeta {
                summary,
                update: clock,
            };
            self.slot_dist_count[base + len] = 0;
            if len == 0 {
                self.live_rows += 1;
            }
            self.row_len[i] += 1;
            self.entries += 1;
            self.mark_row_dirty(from);
            return false;
        }
        // Priority 1: replace a neighbor marked for deletion (or dead).
        for s in base..base + len {
            let t = self.slot_to[s];
            if self.is_marked(t) || self.is_dead(t) {
                self.slot_to[s] = to;
                self.slot_meta[s] = SlotMeta {
                    summary,
                    update: clock,
                };
                self.slot_dist_count[s] = 0;
                self.mark_row_dirty(from);
                return false;
            }
        }
        // Priority 2: replace the largest-distance neighbor (random tie
        // break) if it is farther than the candidate.
        let mut max_idxs = std::mem::take(&mut self.scratch_idxs);
        max_idxs.clear();
        let mut max_d = f64::NEG_INFINITY;
        for k in 0..len {
            let d = self.slot_distance(base + k);
            if d > max_d + 1e-12 {
                max_d = d;
                max_idxs.clear();
                max_idxs.push(k);
            } else if (d - max_d).abs() <= 1e-12 {
                max_idxs.push(k);
            }
        }
        let new_d = summary.distance(reduction);
        if max_d > new_d {
            let pick = max_idxs[self.rng.gen_range(0..max_idxs.len())];
            self.scratch_idxs = max_idxs;
            self.slot_to[base + pick] = to;
            self.slot_meta[base + pick] = SlotMeta {
                summary,
                update: clock,
            };
            self.slot_dist_count[base + pick] = 0;
            self.mark_row_dirty(from);
            return true;
        }
        self.scratch_idxs = max_idxs;
        // Priority 3: aging — replace the stalest entry if it has been
        // inactive long enough.
        if len > 0 {
            let mut stalest_k = 0;
            let mut stalest = self.slot_meta[base].update;
            for k in 1..len {
                if self.slot_meta[base + k].update < stalest {
                    stalest = self.slot_meta[base + k].update;
                    stalest_k = k;
                }
            }
            if clock.saturating_sub(stalest) > self.aging_refs {
                self.slot_to[base + stalest_k] = to;
                self.slot_meta[base + stalest_k] = SlotMeta {
                    summary,
                    update: clock,
                };
                self.slot_dist_count[base + stalest_k] = 0;
                self.mark_row_dirty(from);
                return true;
            }
        }
        false
    }

    /// Marks `file` as deleted; actual purging happens after
    /// `deletion_delay` further deletions (§4.8). Returns files purged by
    /// this deletion.
    pub fn note_deletion(&mut self, file: FileId) -> Vec<FileId> {
        self.deletion_tick += 1;
        if file != FileId::NONE {
            self.ensure_meta(file);
            let i = file.index();
            if !self.in_marked_list[i] {
                self.in_marked_list[i] = true;
                self.marked_list.push(file);
            }
            self.marked_tick[i] = self.deletion_tick;
        }
        let tick = self.deletion_tick;
        let delay = self.deletion_delay;
        let mut due = Vec::new();
        let mut list = std::mem::take(&mut self.marked_list);
        list.retain(|&f| {
            let j = f.index();
            let t = self.marked_tick[j];
            if t == UNMARKED {
                // Rescued since it was listed; drop the stale entry.
                self.in_marked_list[j] = false;
                return false;
            }
            if tick.saturating_sub(t) >= delay {
                self.in_marked_list[j] = false;
                self.marked_tick[j] = UNMARKED;
                due.push(f);
                return false;
            }
            true
        });
        self.marked_list = list;
        if !due.is_empty() {
            for &f in &due {
                let j = f.index();
                self.dead[j] = true;
                self.dead_list.push(f);
                let len = self.row_len[j] as usize;
                if len > 0 {
                    self.entries -= len;
                    self.live_rows -= 1;
                    self.row_len[j] = 0;
                }
                self.mark_row_dirty(f);
            }
            // A purge changes the frozen view of exactly the dead rows and
            // every surviving row that listed a dead file as a target (dead
            // targets are filtered from views). Marking those rows dirty
            // keeps the delta precise, so incremental shared-neighbor
            // maintenance survives deletions without a full recount.
            for i in 0..self.row_len.len() {
                let len = self.row_len[i] as usize;
                if len == 0 {
                    continue;
                }
                let base = i * self.n;
                if self.slot_to[base..base + len]
                    .iter()
                    .any(|t| due.contains(t))
                {
                    self.mark_row_dirty(FileId(i as u32));
                }
            }
        }
        due
    }

    /// Whether `file` is currently marked for deletion.
    #[must_use]
    pub fn is_marked_deleted(&self, file: FileId) -> bool {
        self.is_marked(file)
    }

    /// Takes the set of rows dirtied since the previous call, resetting
    /// the accumulator. Call at the moment a [`ClusterView`] is captured:
    /// the delta then describes exactly what changed between consecutive
    /// views, which is what incremental shared-neighbor maintenance needs.
    pub fn take_dirty(&mut self) -> TableDirty {
        let rows = std::mem::take(&mut self.dirty_rows);
        for f in &rows {
            self.dirty_flag[f.index()] = false;
        }
        let structural = self.structural;
        self.structural = false;
        TableDirty { rows, structural }
    }

    /// The stored neighbors of `file` (dead targets filtered out).
    pub fn neighbors(&self, file: FileId) -> impl Iterator<Item = NeighborEntry> + '_ {
        let i = file.index();
        let len = self.row_len.get(i).copied().unwrap_or(0) as usize;
        let base = i * self.n;
        (base..base + len)
            .filter(|&s| !self.is_dead(self.slot_to[s]))
            .map(move |s| NeighborEntry {
                to: self.slot_to[s],
                summary: self.slot_meta[s].summary,
                last_update: self.slot_meta[s].update,
            })
    }

    /// The `k` closest stored neighbors of `file` under the configured
    /// reduction, closest first: `(neighbor, distance, evidence count)`.
    /// Evidence is the number of reference observations folded into the
    /// pair's streaming summary — how much data backs the distance.
    #[must_use]
    pub fn strongest_neighbors(&self, file: FileId, k: usize) -> Vec<(FileId, f64, u32)> {
        let mut out: Vec<(FileId, f64, u32)> = self
            .neighbors(file)
            .map(|e| (e.to, e.summary.distance(self.reduction), e.summary.count()))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// The reduced distance `from → to`, if stored.
    #[must_use]
    pub fn distance(&self, from: FileId, to: FileId) -> Option<f64> {
        let i = from.index();
        let len = self.row_len.get(i).copied().unwrap_or(0) as usize;
        let base = i * self.n;
        (base..base + len)
            .find(|&s| self.slot_to[s] == to)
            .map(|s| self.slot_meta[s].summary.distance(self.reduction))
    }

    /// All files with at least one stored neighbor, in id order.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.row_len
            .iter()
            .enumerate()
            .filter(|&(_, &len)| len > 0)
            .map(|(i, _)| FileId(i as u32))
    }

    /// Number of files with stored rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_rows
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    /// Total stored neighbor entries (memory diagnostics, §5.3).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.entries
    }

    /// Captures an immutable view of the neighbor *identities* for
    /// clustering off-thread: per-file target lists with dead entries
    /// filtered out, sorted by file id.
    ///
    /// This is the cheap snapshot the daemon hands to its recluster
    /// worker — O(files × n) id copies, no distances, no RNG state —
    /// so the table can keep absorbing observations while a clustering
    /// is computed from the frozen view. Rows are stored in id order, so
    /// the capture is a single ordered sweep with no sort.
    #[must_use]
    pub fn cluster_view(&self) -> ClusterView {
        let mut rows: Vec<(FileId, Vec<FileId>)> = Vec::with_capacity(self.live_rows);
        for (i, &len) in self.row_len.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let base = i * self.n;
            let targets: Vec<FileId> = self.slot_to[base..base + len as usize]
                .iter()
                .copied()
                .filter(|&t| !self.is_dead(t))
                .collect();
            rows.push((FileId(i as u32), targets));
        }
        ClusterView { rows }
    }

    /// Captures the table's persistent state (the SEER database of known
    /// files that survives restarts, §5.3).
    #[must_use]
    pub fn snapshot(&self) -> TableSnapshot {
        let mut rows: Vec<(FileId, Vec<NeighborEntry>)> = Vec::with_capacity(self.live_rows);
        for (i, &len) in self.row_len.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let base = i * self.n;
            let entries: Vec<NeighborEntry> = (base..base + len as usize)
                .map(|s| NeighborEntry {
                    to: self.slot_to[s],
                    summary: self.slot_meta[s].summary,
                    last_update: self.slot_meta[s].update,
                })
                .collect();
            rows.push((FileId(i as u32), entries));
        }
        let mut marked: Vec<(FileId, u64)> = self
            .marked_list
            .iter()
            .filter_map(|&f| {
                let t = self.marked_tick[f.index()];
                (t != UNMARKED).then_some((f, t))
            })
            .collect();
        marked.sort_by_key(|(f, _)| *f);
        let mut dead: Vec<FileId> = self.dead_list.clone();
        dead.sort_unstable();
        TableSnapshot {
            n: self.n,
            reduction: self.reduction,
            aging_refs: self.aging_refs,
            deletion_delay: self.deletion_delay,
            deletion_tick: self.deletion_tick,
            clock: self.clock,
            rows,
            marked,
            dead,
        }
    }

    /// Restores a table from a snapshot. The random tie-break state is
    /// reseeded from `seed`.
    #[must_use]
    pub fn from_snapshot(snap: TableSnapshot, seed: u64) -> NeighborTable {
        let mut t = NeighborTable::new(
            snap.n,
            snap.reduction,
            snap.aging_refs,
            snap.deletion_delay,
            seed,
        );
        t.deletion_tick = snap.deletion_tick;
        t.clock = snap.clock;
        for (f, entries) in snap.rows {
            if f == FileId::NONE || entries.is_empty() {
                continue;
            }
            t.ensure_meta(f);
            t.ensure_row_slots(f);
            let i = f.index();
            let base = i * t.n;
            let len = entries.len().min(t.n);
            for (k, e) in entries.into_iter().take(len).enumerate() {
                t.slot_to[base + k] = e.to;
                t.slot_meta[base + k] = SlotMeta {
                    summary: e.summary,
                    update: e.last_update,
                };
            }
            t.row_len[i] = len as u32;
            t.live_rows += 1;
            t.entries += len;
        }
        for (f, tick) in snap.marked {
            if f == FileId::NONE {
                continue;
            }
            t.ensure_meta(f);
            let i = f.index();
            t.marked_tick[i] = tick;
            if !t.in_marked_list[i] {
                t.in_marked_list[i] = true;
                t.marked_list.push(f);
            }
        }
        for f in snap.dead {
            if f == FileId::NONE {
                continue;
            }
            t.ensure_meta(f);
            if !t.dead[f.index()] {
                t.dead[f.index()] = true;
                t.dead_list.push(f);
            }
        }
        // A restored table has no valid incremental baseline.
        t.structural = true;
        t
    }
}

/// A frozen snapshot of who neighbors whom, detached from the live
/// [`NeighborTable`] (see [`NeighborTable::cluster_view`]). Clustering
/// needs only the neighbor identities, so the view carries no distance
/// summaries and can be cloned and shipped across threads freely.
#[derive(Debug, Clone, Default)]
pub struct ClusterView {
    /// Per-file neighbor targets, sorted by file id.
    rows: Vec<(FileId, Vec<FileId>)>,
}

impl ClusterView {
    /// Builds a view directly from `(file, targets)` rows (tests and
    /// synthetic inputs).
    #[must_use]
    pub fn from_rows(mut rows: Vec<(FileId, Vec<FileId>)>) -> ClusterView {
        rows.sort_unstable_by_key(|(f, _)| *f);
        ClusterView { rows }
    }

    /// The `(file, targets)` rows, sorted by file id.
    #[must_use]
    pub fn rows(&self) -> &[(FileId, Vec<FileId>)] {
        &self.rows
    }

    /// Number of files with a stored row.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the view holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Serializable state of a [`NeighborTable`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSnapshot {
    /// Neighbors kept per file.
    pub n: usize,
    /// Reduction in use.
    pub reduction: ReductionKind,
    /// Aging threshold in references.
    pub aging_refs: u64,
    /// Deletion delay in deletions.
    pub deletion_delay: u64,
    /// Deletion counter.
    pub deletion_tick: u64,
    /// Reference clock.
    pub clock: u64,
    /// All rows, sorted by file id.
    pub rows: Vec<(FileId, Vec<NeighborEntry>)>,
    /// Deletion-marked files with their mark ticks.
    pub marked: Vec<(FileId, u64)>,
    /// Fully purged files.
    pub dead: Vec<FileId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> NeighborTable {
        NeighborTable::new(n, ReductionKind::Geometric, 1000, 3, 42)
    }

    #[test]
    fn observe_and_query() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 4.0);
        assert!((t.distance(FileId(1), FileId(2)).expect("stored") - 4.0).abs() < 1e-9);
        assert_eq!(t.distance(FileId(2), FileId(1)), None, "asymmetric");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn repeated_observations_reduce() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 0.0);
        t.observe(FileId(1), FileId(2), 0.0);
        let d = t.distance(FileId(1), FileId(2)).expect("stored");
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn self_distance_ignored() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(1), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn full_row_replaces_largest_when_closer() {
        let mut t = table(2);
        t.observe(FileId(0), FileId(1), 50.0);
        t.observe(FileId(0), FileId(2), 80.0);
        // Candidate closer than the current max (80): replaces it.
        t.observe(FileId(0), FileId(3), 10.0);
        assert!(
            t.distance(FileId(0), FileId(2)).is_none(),
            "largest evicted"
        );
        assert!(t.distance(FileId(0), FileId(1)).is_some());
        assert!(t.distance(FileId(0), FileId(3)).is_some());
    }

    #[test]
    fn full_row_keeps_existing_when_candidate_is_farther() {
        let mut t = table(2);
        t.observe(FileId(0), FileId(1), 5.0);
        t.observe(FileId(0), FileId(2), 8.0);
        t.observe(FileId(0), FileId(3), 100.0);
        assert!(
            t.distance(FileId(0), FileId(3)).is_none(),
            "far candidate dropped"
        );
        assert_eq!(t.neighbors(FileId(0)).count(), 2);
    }

    #[test]
    fn deletion_marked_neighbor_is_first_to_go() {
        let mut t = table(2);
        t.observe(FileId(0), FileId(1), 5.0);
        t.observe(FileId(0), FileId(2), 1.0);
        t.note_deletion(FileId(2));
        // Candidate is farther than everything, but the deletion-marked
        // neighbor still loses its slot (priority 1).
        t.observe(FileId(0), FileId(3), 90.0);
        assert!(t.distance(FileId(0), FileId(2)).is_none());
        assert!(t.distance(FileId(0), FileId(3)).is_some());
    }

    #[test]
    fn aging_replaces_stale_entries() {
        let mut t = NeighborTable::new(2, ReductionKind::Geometric, 10, 3, 42);
        t.observe(FileId(0), FileId(1), 1.0);
        t.observe(FileId(0), FileId(2), 2.0);
        for _ in 0..50 {
            t.tick();
        }
        // Candidate is farther than both, but both entries are stale.
        t.observe(FileId(0), FileId(3), 99.0);
        assert!(
            t.distance(FileId(0), FileId(3)).is_some(),
            "aged entry replaced"
        );
        assert_eq!(t.neighbors(FileId(0)).count(), 2);
    }

    #[test]
    fn recently_updated_entries_do_not_age_out() {
        let mut t = NeighborTable::new(2, ReductionKind::Geometric, 1_000, 3, 42);
        t.observe(FileId(0), FileId(1), 1.0);
        t.observe(FileId(0), FileId(2), 2.0);
        t.tick();
        t.observe(FileId(0), FileId(3), 99.0);
        assert!(t.distance(FileId(0), FileId(3)).is_none());
    }

    #[test]
    fn delayed_deletion_purges_after_delay() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 1.0);
        t.observe(FileId(2), FileId(1), 1.0);
        let purged = t.note_deletion(FileId(1));
        assert!(purged.is_empty(), "not purged immediately");
        assert!(t.is_marked_deleted(FileId(1)));
        assert!(
            t.distance(FileId(1), FileId(2)).is_some(),
            "row survives the delay"
        );
        // Two more deletions push the tick past the delay of 3.
        t.note_deletion(FileId(10));
        t.note_deletion(FileId(11));
        let purged = t.note_deletion(FileId(12));
        assert!(purged.contains(&FileId(1)));
        assert!(t.distance(FileId(1), FileId(2)).is_none(), "row purged");
        // Entries *to* the dead file are filtered from queries.
        assert!(t.neighbors(FileId(2)).all(|e| e.to != FileId(1)));
    }

    #[test]
    fn reference_rescues_marked_file() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 1.0);
        t.note_deletion(FileId(1));
        assert!(t.is_marked_deleted(FileId(1)));
        // The name is reused (referenced anew) before the delay expires
        // (§4.8).
        t.observe(FileId(3), FileId(1), 2.0);
        assert!(!t.is_marked_deleted(FileId(1)));
        t.note_deletion(FileId(20));
        t.note_deletion(FileId(21));
        t.note_deletion(FileId(22));
        assert!(
            t.distance(FileId(1), FileId(2)).is_some(),
            "rescued row survives"
        );
    }

    #[test]
    fn observations_to_dead_files_are_dropped() {
        let mut t = NeighborTable::new(5, ReductionKind::Geometric, 1000, 1, 42);
        t.observe(FileId(1), FileId(2), 1.0);
        t.note_deletion(FileId(1)); // Delay 1: purged on the next deletion.
        t.note_deletion(FileId(9));
        t.observe(FileId(1), FileId(3), 1.0);
        assert!(t.distance(FileId(1), FileId(3)).is_none());
        t.observe(FileId(4), FileId(1), 1.0);
        assert!(t.neighbors(FileId(4)).next().is_none());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 4.0);
        t.observe(FileId(1), FileId(3), 1.0);
        t.tick();
        t.note_deletion(FileId(9));
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: TableSnapshot = serde_json::from_str(&json).expect("deserialize");
        let restored = NeighborTable::from_snapshot(back, 7);
        assert_eq!(restored.clock(), t.clock());
        let (a, b) = (
            restored.distance(FileId(1), FileId(2)).expect("stored"),
            t.distance(FileId(1), FileId(2)).expect("stored"),
        );
        assert!(
            (a - b).abs() < 1e-9,
            "JSON float round-trip within tolerance"
        );
        assert!(restored.is_marked_deleted(FileId(9)));
        assert_eq!(restored.total_entries(), t.total_entries());
    }

    #[test]
    fn cluster_view_freezes_live_neighbors() {
        let mut t = NeighborTable::new(5, ReductionKind::Geometric, 1000, 1, 42);
        t.observe(FileId(1), FileId(2), 1.0);
        t.observe(FileId(1), FileId(3), 2.0);
        t.observe(FileId(2), FileId(3), 1.0);
        // Purge 3: its name dies after one further deletion (delay 1).
        t.note_deletion(FileId(3));
        t.note_deletion(FileId(9));
        let view = t.cluster_view();
        assert_eq!(view.len(), 2);
        let rows = view.rows();
        assert_eq!(rows[0].0, FileId(1), "rows sorted by file id");
        assert_eq!(rows[0].1, vec![FileId(2)], "dead target filtered");
        assert!(rows[1].1.is_empty(), "row 2 pointed only at the dead file");
        // Mutating the table afterwards leaves the view untouched.
        t.observe(FileId(1), FileId(7), 1.0);
        assert_eq!(view.rows()[0].1.len(), 1);
    }

    #[test]
    fn total_entries_counts_all_rows() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 1.0);
        t.observe(FileId(1), FileId(3), 1.0);
        t.observe(FileId(2), FileId(3), 1.0);
        assert_eq!(t.total_entries(), 3);
    }

    #[test]
    fn dirty_tracking_reports_membership_changes_only() {
        let mut t = table(2);
        t.observe(FileId(1), FileId(2), 1.0);
        t.observe(FileId(3), FileId(4), 1.0);
        let d = t.take_dirty();
        assert_eq!(d.rows, vec![FileId(1), FileId(3)]);
        assert!(!d.structural);
        // A distance-only update leaves the membership untouched.
        t.observe(FileId(1), FileId(2), 5.0);
        let d = t.take_dirty();
        assert!(d.rows.is_empty());
        assert!(!d.structural);
        // A replacement changes membership and dirties the row again.
        t.observe(FileId(1), FileId(5), 2.0);
        t.observe(FileId(1), FileId(6), 0.5);
        let d = t.take_dirty();
        assert_eq!(d.rows, vec![FileId(1)]);
    }

    #[test]
    fn dirty_tracking_marks_purged_row_and_referrers() {
        let mut t = NeighborTable::new(5, ReductionKind::Geometric, 1000, 1, 42);
        t.observe(FileId(1), FileId(2), 1.0);
        t.observe(FileId(3), FileId(4), 1.0);
        t.take_dirty();
        t.note_deletion(FileId(2));
        let d = t.take_dirty();
        assert!(
            d.rows.is_empty() && !d.structural,
            "marking alone is invisible"
        );
        t.note_deletion(FileId(9));
        let d = t.take_dirty();
        assert!(
            !d.structural,
            "a purge is a precise row delta, not structural"
        );
        assert!(d.rows.contains(&FileId(2)), "the dead row goes dirty");
        assert!(d.rows.contains(&FileId(1)), "the referrer's view changed");
        assert!(!d.rows.contains(&FileId(3)), "unrelated rows stay clean");
    }

    #[test]
    fn dirty_tracking_flags_snapshot_restore_as_structural() {
        let mut t = NeighborTable::new(5, ReductionKind::Geometric, 1000, 1, 42);
        t.observe(FileId(1), FileId(2), 1.0);
        let mut restored = NeighborTable::from_snapshot(t.snapshot(), 42);
        assert!(
            restored.take_dirty().structural,
            "a restored table has no incremental baseline"
        );
    }

    #[test]
    fn soa_rows_grow_on_demand() {
        let mut t = table(3);
        t.observe(FileId(1000), FileId(7), 1.0);
        t.observe(FileId(2), FileId(1000), 2.0);
        assert_eq!(t.len(), 2);
        assert!(t.distance(FileId(1000), FileId(7)).is_some());
        assert_eq!(t.neighbors(FileId(2)).count(), 1);
        assert_eq!(t.files().collect::<Vec<_>>(), vec![FileId(2), FileId(1000)]);
    }
}
