//! The n-nearest-neighbor distance table (§3.1.3).
//!
//! Storing all N² pairwise distances is prohibitive, so SEER keeps only the
//! `n = 20` closest neighbors of each file. When a closer candidate
//! arrives and the row is full, replacement follows a strict priority:
//! first a neighbor marked for deletion, then the neighbor with the largest
//! current distance (ties broken randomly) if it is farther than the
//! candidate, and finally an aging rule that lets very old, inactive
//! references give way to new ones.

use crate::config::ReductionKind;
use crate::reduction::PairSummary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use seer_trace::FileId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One stored neighbor relation `from → to`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NeighborEntry {
    /// The related file.
    pub to: FileId,
    /// Streaming distance summary.
    pub summary: PairSummary,
    /// Table clock value of the most recent update (drives aging).
    pub last_update: u64,
}

/// The global semantic-distance table.
#[derive(Debug)]
pub struct NeighborTable {
    n: usize,
    reduction: ReductionKind,
    aging_refs: u64,
    deletion_delay: u64,
    rows: HashMap<FileId, Vec<NeighborEntry>>,
    /// Files whose names were deleted, with the deletion tick at which the
    /// mark was placed (§4.8's delayed removal).
    marked: HashMap<FileId, u64>,
    /// Files fully purged; entries pointing at them are garbage.
    dead: HashSet<FileId>,
    deletion_tick: u64,
    clock: u64,
    rng: SmallRng,
}

impl NeighborTable {
    /// Creates a table keeping `n` neighbors per file.
    #[must_use]
    pub fn new(
        n: usize,
        reduction: ReductionKind,
        aging_refs: u64,
        deletion_delay: u64,
        seed: u64,
    ) -> NeighborTable {
        NeighborTable {
            n,
            reduction,
            aging_refs,
            deletion_delay,
            rows: HashMap::new(),
            marked: HashMap::new(),
            dead: HashSet::new(),
            deletion_tick: 0,
            clock: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The reduction in use.
    #[must_use]
    pub fn reduction(&self) -> ReductionKind {
        self.reduction
    }

    /// Advances the table clock by one reference; call once per processed
    /// reference so aging is measured in references.
    pub fn tick(&mut self) {
        self.clock += 1;
    }

    /// Current table clock.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Folds one distance observation `from → to` into the table.
    ///
    /// Returns `true` when admitting the pair displaced a live neighbor
    /// from a full row (the O(n)-approximation evictions of §3.1.3);
    /// replacing a deletion-marked or dead entry is cleanup, not an
    /// eviction.
    pub fn observe(&mut self, from: FileId, to: FileId, distance: f64) -> bool {
        if from == to || self.dead.contains(&from) || self.dead.contains(&to) {
            return false;
        }
        // A fresh reference *to* a deletion-marked name means the name was
        // reused; rescue it (§4.8). `from` files are mere window history
        // and do not count as reuse.
        self.marked.remove(&to);

        let clock = self.clock;
        let reduction = self.reduction;
        let row = self.rows.entry(from).or_default();
        if let Some(e) = row.iter_mut().find(|e| e.to == to) {
            e.summary.observe(reduction, distance);
            e.last_update = clock;
            return false;
        }
        let candidate = NeighborEntry {
            to,
            summary: PairSummary::first(reduction, distance),
            last_update: clock,
        };
        if row.len() < self.n {
            row.push(candidate);
            return false;
        }
        // Priority 1: replace a neighbor marked for deletion (or dead).
        if let Some(idx) = row
            .iter()
            .position(|e| self.marked.contains_key(&e.to) || self.dead.contains(&e.to))
        {
            row[idx] = candidate;
            return false;
        }
        // Priority 2: replace the largest-distance neighbor (random tie
        // break) if it is farther than the candidate.
        let mut max_d = f64::NEG_INFINITY;
        let mut max_idxs: Vec<usize> = Vec::new();
        for (i, e) in row.iter().enumerate() {
            let d = e.summary.distance(reduction);
            if d > max_d + 1e-12 {
                max_d = d;
                max_idxs.clear();
                max_idxs.push(i);
            } else if (d - max_d).abs() <= 1e-12 {
                max_idxs.push(i);
            }
        }
        let new_d = candidate.summary.distance(reduction);
        if max_d > new_d {
            let pick = max_idxs[self.rng.gen_range(0..max_idxs.len())];
            row[pick] = candidate;
            return true;
        }
        // Priority 3: aging — replace the stalest entry if it has been
        // inactive long enough.
        if let Some((idx, stalest)) = row
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_update)
            .map(|(i, e)| (i, e.last_update))
        {
            if clock.saturating_sub(stalest) > self.aging_refs {
                row[idx] = candidate;
                return true;
            }
        }
        false
    }

    /// Marks `file` as deleted; actual purging happens after
    /// `deletion_delay` further deletions (§4.8). Returns files purged by
    /// this deletion.
    pub fn note_deletion(&mut self, file: FileId) -> Vec<FileId> {
        self.deletion_tick += 1;
        self.marked.insert(file, self.deletion_tick);
        let due: Vec<FileId> = self
            .marked
            .iter()
            .filter(|&(_, &t)| self.deletion_tick.saturating_sub(t) >= self.deletion_delay)
            .map(|(&f, _)| f)
            .collect();
        for &f in &due {
            self.marked.remove(&f);
            self.dead.insert(f);
            self.rows.remove(&f);
        }
        due
    }

    /// Whether `file` is currently marked for deletion.
    #[must_use]
    pub fn is_marked_deleted(&self, file: FileId) -> bool {
        self.marked.contains_key(&file)
    }

    /// The stored neighbors of `file` (dead targets filtered out).
    pub fn neighbors(&self, file: FileId) -> impl Iterator<Item = &NeighborEntry> {
        self.rows
            .get(&file)
            .into_iter()
            .flatten()
            .filter(|e| !self.dead.contains(&e.to))
    }

    /// The `k` closest stored neighbors of `file` under the configured
    /// reduction, closest first: `(neighbor, distance, evidence count)`.
    /// Evidence is the number of reference observations folded into the
    /// pair's streaming summary — how much data backs the distance.
    #[must_use]
    pub fn strongest_neighbors(&self, file: FileId, k: usize) -> Vec<(FileId, f64, u32)> {
        let mut out: Vec<(FileId, f64, u32)> = self
            .neighbors(file)
            .map(|e| (e.to, e.summary.distance(self.reduction), e.summary.count()))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// The reduced distance `from → to`, if stored.
    #[must_use]
    pub fn distance(&self, from: FileId, to: FileId) -> Option<f64> {
        self.rows
            .get(&from)?
            .iter()
            .find(|e| e.to == to)
            .map(|e| e.summary.distance(self.reduction))
    }

    /// All files with at least one stored neighbor.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.rows.keys().copied()
    }

    /// Number of files with stored rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total stored neighbor entries (memory diagnostics, §5.3).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// Captures an immutable view of the neighbor *identities* for
    /// clustering off-thread: per-file target lists with dead entries
    /// filtered out, sorted by file id.
    ///
    /// This is the cheap snapshot the daemon hands to its recluster
    /// worker — O(files × n) id copies, no distances, no RNG state —
    /// so the table can keep absorbing observations while a clustering
    /// is computed from the frozen view.
    #[must_use]
    pub fn cluster_view(&self) -> ClusterView {
        let mut rows: Vec<(FileId, Vec<FileId>)> = self
            .rows
            .iter()
            .map(|(&f, entries)| {
                (
                    f,
                    entries
                        .iter()
                        .filter(|e| !self.dead.contains(&e.to))
                        .map(|e| e.to)
                        .collect(),
                )
            })
            .collect();
        rows.sort_unstable_by_key(|(f, _)| *f);
        ClusterView { rows }
    }

    /// Captures the table's persistent state (the SEER database of known
    /// files that survives restarts, §5.3).
    #[must_use]
    pub fn snapshot(&self) -> TableSnapshot {
        let mut rows: Vec<(FileId, Vec<NeighborEntry>)> =
            self.rows.iter().map(|(&f, v)| (f, v.clone())).collect();
        rows.sort_by_key(|(f, _)| *f);
        let mut marked: Vec<(FileId, u64)> = self.marked.iter().map(|(&f, &t)| (f, t)).collect();
        marked.sort_by_key(|(f, _)| *f);
        let mut dead: Vec<FileId> = self.dead.iter().copied().collect();
        dead.sort_unstable();
        TableSnapshot {
            n: self.n,
            reduction: self.reduction,
            aging_refs: self.aging_refs,
            deletion_delay: self.deletion_delay,
            deletion_tick: self.deletion_tick,
            clock: self.clock,
            rows,
            marked,
            dead,
        }
    }

    /// Restores a table from a snapshot. The random tie-break state is
    /// reseeded from `seed`.
    #[must_use]
    pub fn from_snapshot(snap: TableSnapshot, seed: u64) -> NeighborTable {
        NeighborTable {
            n: snap.n,
            reduction: snap.reduction,
            aging_refs: snap.aging_refs,
            deletion_delay: snap.deletion_delay,
            rows: snap.rows.into_iter().collect(),
            marked: snap.marked.into_iter().collect(),
            dead: snap.dead.into_iter().collect(),
            deletion_tick: snap.deletion_tick,
            clock: snap.clock,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

/// A frozen snapshot of who neighbors whom, detached from the live
/// [`NeighborTable`] (see [`NeighborTable::cluster_view`]). Clustering
/// needs only the neighbor identities, so the view carries no distance
/// summaries and can be cloned and shipped across threads freely.
#[derive(Debug, Clone, Default)]
pub struct ClusterView {
    /// Per-file neighbor targets, sorted by file id.
    rows: Vec<(FileId, Vec<FileId>)>,
}

impl ClusterView {
    /// Builds a view directly from `(file, targets)` rows (tests and
    /// synthetic inputs).
    #[must_use]
    pub fn from_rows(mut rows: Vec<(FileId, Vec<FileId>)>) -> ClusterView {
        rows.sort_unstable_by_key(|(f, _)| *f);
        ClusterView { rows }
    }

    /// The `(file, targets)` rows, sorted by file id.
    #[must_use]
    pub fn rows(&self) -> &[(FileId, Vec<FileId>)] {
        &self.rows
    }

    /// Number of files with a stored row.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the view holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Serializable state of a [`NeighborTable`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSnapshot {
    /// Neighbors kept per file.
    pub n: usize,
    /// Reduction in use.
    pub reduction: ReductionKind,
    /// Aging threshold in references.
    pub aging_refs: u64,
    /// Deletion delay in deletions.
    pub deletion_delay: u64,
    /// Deletion counter.
    pub deletion_tick: u64,
    /// Reference clock.
    pub clock: u64,
    /// All rows, sorted by file id.
    pub rows: Vec<(FileId, Vec<NeighborEntry>)>,
    /// Deletion-marked files with their mark ticks.
    pub marked: Vec<(FileId, u64)>,
    /// Fully purged files.
    pub dead: Vec<FileId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> NeighborTable {
        NeighborTable::new(n, ReductionKind::Geometric, 1000, 3, 42)
    }

    #[test]
    fn observe_and_query() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 4.0);
        assert!((t.distance(FileId(1), FileId(2)).expect("stored") - 4.0).abs() < 1e-9);
        assert_eq!(t.distance(FileId(2), FileId(1)), None, "asymmetric");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn repeated_observations_reduce() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 0.0);
        t.observe(FileId(1), FileId(2), 0.0);
        let d = t.distance(FileId(1), FileId(2)).expect("stored");
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn self_distance_ignored() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(1), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn full_row_replaces_largest_when_closer() {
        let mut t = table(2);
        t.observe(FileId(0), FileId(1), 50.0);
        t.observe(FileId(0), FileId(2), 80.0);
        // Candidate closer than the current max (80): replaces it.
        t.observe(FileId(0), FileId(3), 10.0);
        assert!(
            t.distance(FileId(0), FileId(2)).is_none(),
            "largest evicted"
        );
        assert!(t.distance(FileId(0), FileId(1)).is_some());
        assert!(t.distance(FileId(0), FileId(3)).is_some());
    }

    #[test]
    fn full_row_keeps_existing_when_candidate_is_farther() {
        let mut t = table(2);
        t.observe(FileId(0), FileId(1), 5.0);
        t.observe(FileId(0), FileId(2), 8.0);
        t.observe(FileId(0), FileId(3), 100.0);
        assert!(
            t.distance(FileId(0), FileId(3)).is_none(),
            "far candidate dropped"
        );
        assert_eq!(t.neighbors(FileId(0)).count(), 2);
    }

    #[test]
    fn deletion_marked_neighbor_is_first_to_go() {
        let mut t = table(2);
        t.observe(FileId(0), FileId(1), 5.0);
        t.observe(FileId(0), FileId(2), 1.0);
        t.note_deletion(FileId(2));
        // Candidate is farther than everything, but the deletion-marked
        // neighbor still loses its slot (priority 1).
        t.observe(FileId(0), FileId(3), 90.0);
        assert!(t.distance(FileId(0), FileId(2)).is_none());
        assert!(t.distance(FileId(0), FileId(3)).is_some());
    }

    #[test]
    fn aging_replaces_stale_entries() {
        let mut t = NeighborTable::new(2, ReductionKind::Geometric, 10, 3, 42);
        t.observe(FileId(0), FileId(1), 1.0);
        t.observe(FileId(0), FileId(2), 2.0);
        for _ in 0..50 {
            t.tick();
        }
        // Candidate is farther than both, but both entries are stale.
        t.observe(FileId(0), FileId(3), 99.0);
        assert!(
            t.distance(FileId(0), FileId(3)).is_some(),
            "aged entry replaced"
        );
        assert_eq!(t.neighbors(FileId(0)).count(), 2);
    }

    #[test]
    fn recently_updated_entries_do_not_age_out() {
        let mut t = NeighborTable::new(2, ReductionKind::Geometric, 1_000, 3, 42);
        t.observe(FileId(0), FileId(1), 1.0);
        t.observe(FileId(0), FileId(2), 2.0);
        t.tick();
        t.observe(FileId(0), FileId(3), 99.0);
        assert!(t.distance(FileId(0), FileId(3)).is_none());
    }

    #[test]
    fn delayed_deletion_purges_after_delay() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 1.0);
        t.observe(FileId(2), FileId(1), 1.0);
        let purged = t.note_deletion(FileId(1));
        assert!(purged.is_empty(), "not purged immediately");
        assert!(t.is_marked_deleted(FileId(1)));
        assert!(
            t.distance(FileId(1), FileId(2)).is_some(),
            "row survives the delay"
        );
        // Two more deletions push the tick past the delay of 3.
        t.note_deletion(FileId(10));
        t.note_deletion(FileId(11));
        let purged = t.note_deletion(FileId(12));
        assert!(purged.contains(&FileId(1)));
        assert!(t.distance(FileId(1), FileId(2)).is_none(), "row purged");
        // Entries *to* the dead file are filtered from queries.
        assert!(t.neighbors(FileId(2)).all(|e| e.to != FileId(1)));
    }

    #[test]
    fn reference_rescues_marked_file() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 1.0);
        t.note_deletion(FileId(1));
        assert!(t.is_marked_deleted(FileId(1)));
        // The name is reused (referenced anew) before the delay expires
        // (§4.8).
        t.observe(FileId(3), FileId(1), 2.0);
        assert!(!t.is_marked_deleted(FileId(1)));
        t.note_deletion(FileId(20));
        t.note_deletion(FileId(21));
        t.note_deletion(FileId(22));
        assert!(
            t.distance(FileId(1), FileId(2)).is_some(),
            "rescued row survives"
        );
    }

    #[test]
    fn observations_to_dead_files_are_dropped() {
        let mut t = NeighborTable::new(5, ReductionKind::Geometric, 1000, 1, 42);
        t.observe(FileId(1), FileId(2), 1.0);
        t.note_deletion(FileId(1)); // Delay 1: purged on the next deletion.
        t.note_deletion(FileId(9));
        t.observe(FileId(1), FileId(3), 1.0);
        assert!(t.distance(FileId(1), FileId(3)).is_none());
        t.observe(FileId(4), FileId(1), 1.0);
        assert!(t.neighbors(FileId(4)).next().is_none());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 4.0);
        t.observe(FileId(1), FileId(3), 1.0);
        t.tick();
        t.note_deletion(FileId(9));
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: TableSnapshot = serde_json::from_str(&json).expect("deserialize");
        let restored = NeighborTable::from_snapshot(back, 7);
        assert_eq!(restored.clock(), t.clock());
        let (a, b) = (
            restored.distance(FileId(1), FileId(2)).expect("stored"),
            t.distance(FileId(1), FileId(2)).expect("stored"),
        );
        assert!(
            (a - b).abs() < 1e-9,
            "JSON float round-trip within tolerance"
        );
        assert!(restored.is_marked_deleted(FileId(9)));
        assert_eq!(restored.total_entries(), t.total_entries());
    }

    #[test]
    fn cluster_view_freezes_live_neighbors() {
        let mut t = NeighborTable::new(5, ReductionKind::Geometric, 1000, 1, 42);
        t.observe(FileId(1), FileId(2), 1.0);
        t.observe(FileId(1), FileId(3), 2.0);
        t.observe(FileId(2), FileId(3), 1.0);
        // Purge 3: its name dies after one further deletion (delay 1).
        t.note_deletion(FileId(3));
        t.note_deletion(FileId(9));
        let view = t.cluster_view();
        assert_eq!(view.len(), 2);
        let rows = view.rows();
        assert_eq!(rows[0].0, FileId(1), "rows sorted by file id");
        assert_eq!(rows[0].1, vec![FileId(2)], "dead target filtered");
        assert!(rows[1].1.is_empty(), "row 2 pointed only at the dead file");
        // Mutating the table afterwards leaves the view untouched.
        t.observe(FileId(1), FileId(7), 1.0);
        assert_eq!(view.rows()[0].1.len(), 1);
    }

    #[test]
    fn total_entries_counts_all_rows() {
        let mut t = table(5);
        t.observe(FileId(1), FileId(2), 1.0);
        t.observe(FileId(1), FileId(3), 1.0);
        t.observe(FileId(2), FileId(3), 1.0);
        assert_eq!(t.total_entries(), 3);
    }
}
