//! Per-process reference history (§3.1.1, §4.7).
//!
//! Each process carries its own stream of whole-file references so that
//! interleaved independent activities (reading mail during a compile) do
//! not create spurious relationships. The history yields, for each new
//! open, the set of `(earlier file, event distance)` observations to fold
//! into the global [`crate::NeighborTable`].

use crate::config::DistanceKind;
use seer_trace::{FileId, Timestamp};
use std::collections::VecDeque;

/// One entry in the recent-opens window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WindowEntry {
    file: FileId,
    /// Process-local open index.
    index: u64,
    /// Process-local *distinct*-open index: does not advance when the same
    /// file is opened back-to-back (the footnote-1 elision alternative).
    distinct_index: u64,
    /// Wall-clock time of the open.
    time: Timestamp,
}

/// A `(from, distance)` observation produced by an open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The earlier-referenced file.
    pub from: FileId,
    /// Event distance from `from`'s reference to the new one.
    pub distance: f64,
    /// Whether the raw value exceeded the window cap `M` and was
    /// compensated by inserting `M` (§3.1.3).
    pub compensated: bool,
}

/// Reference history of one process.
#[derive(Debug, Clone, Default)]
pub struct ProcessHistory {
    /// Last `M` opens, oldest first. Holds the *latest* open of each file
    /// (the closest-pair rule of §3.1.1, footnote 1), so every file appears
    /// at most once and entries are in increasing index order — the
    /// invariant that lets [`ProcessHistory::record_open_with`] walk it
    /// directly without a dedup map or sort.
    window: VecDeque<WindowEntry>,
    /// Currently-open count per file (opens minus closes; execs count).
    /// A plain vector: the set is small, and linear scans beat hashing on
    /// the per-open hot path.
    open_files: Vec<(FileId, u32)>,
    /// Process-local open counter.
    open_seq: u64,
    /// Distinct-open counter (repeats of the immediately preceding file do
    /// not advance it).
    distinct_seq: u64,
    /// The most recently opened file, for repeat elision.
    last_opened: Option<FileId>,
    /// Reusable buffer for the still-open emission, to keep the per-open
    /// path allocation-free.
    scratch_open: Vec<FileId>,
    /// Reusable seen-flags (parallel to `open_files`) marking which open
    /// files appeared in the window during the sweep, so the still-open
    /// emission never rescans the window.
    scratch_seen: Vec<bool>,
}

impl ProcessHistory {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> ProcessHistory {
        ProcessHistory::default()
    }

    /// Number of opens recorded.
    #[must_use]
    pub fn opens(&self) -> u64 {
        self.open_seq
    }

    /// Whether `file` is currently open in this process.
    #[must_use]
    pub fn is_open(&self, file: FileId) -> bool {
        self.open_files
            .iter()
            .any(|&(f, count)| f == file && count > 0)
    }

    /// Records an open of `file`, returning the distance observations from
    /// every eligible earlier file (§3.1.3: files within the window, plus
    /// still-open files, which are at lifetime distance zero).
    ///
    /// Values that would exceed `window_m` are compensated to exactly
    /// `window_m`.
    pub fn record_open(
        &mut self,
        kind: DistanceKind,
        window_m: u64,
        file: FileId,
        time: Timestamp,
        out: &mut Vec<Observation>,
    ) {
        self.record_open_with(kind, window_m, false, file, time, out);
    }

    /// [`ProcessHistory::record_open`] with the repeat-elision switch
    /// (footnote 1): when `elide_repeats` is set, intervening-open counts
    /// skip consecutive re-references to the same file.
    pub fn record_open_with(
        &mut self,
        kind: DistanceKind,
        window_m: u64,
        elide_repeats: bool,
        file: FileId,
        time: Timestamp,
        out: &mut Vec<Observation>,
    ) {
        self.open_seq += 1;
        if self.last_opened != Some(file) {
            self.distinct_seq += 1;
            self.last_opened = Some(file);
        }
        let index = self.open_seq;
        let distinct_index = self.distinct_seq;
        let m = window_m as f64;

        // Emit in window order (oldest first) so downstream consumers —
        // notably the neighbor table's order-sensitive replacement policy
        // — see a deterministic observation sequence. The window holds at
        // most one entry per file, already in index order (see the field
        // docs), so this is a single allocation-free sweep. The lifetime
        // kind's open-set probe doubles as membership marking, so the
        // still-open emission below never rescans the window.
        let mut seen = std::mem::take(&mut self.scratch_seen);
        seen.clear();
        seen.resize(self.open_files.len(), false);
        for e in &self.window {
            let f = e.file;
            if f == file {
                continue;
            }
            let (idx, e_idx) = if elide_repeats {
                (distinct_index, e.distinct_index)
            } else {
                (index, e.index)
            };
            let raw = match kind {
                DistanceKind::Temporal => time.saturating_since(e.time).as_secs() as f64,
                DistanceKind::Sequence => (idx - e_idx).saturating_sub(1) as f64,
                DistanceKind::Lifetime => {
                    match self
                        .open_files
                        .iter()
                        .position(|&(g, count)| g == f && count > 0)
                    {
                        Some(p) => {
                            seen[p] = true;
                            0.0
                        }
                        None => (idx - e_idx) as f64,
                    }
                }
            };
            let compensated = raw > m;
            out.push(Observation {
                from: f,
                distance: if compensated { m } else { raw },
                compensated,
            });
        }
        // Still-open files that have already slid out of the window are at
        // lifetime distance zero (their lifetime encloses this open).
        if kind == DistanceKind::Lifetime {
            let mut still_open = std::mem::take(&mut self.scratch_open);
            still_open.clear();
            for (p, &(f, count)) in self.open_files.iter().enumerate() {
                if count > 0 && f != file && !seen[p] {
                    still_open.push(f);
                }
            }
            still_open.sort_unstable();
            for &f in &still_open {
                out.push(Observation {
                    from: f,
                    distance: 0.0,
                    compensated: false,
                });
            }
            self.scratch_open = still_open;
        }
        self.scratch_seen = seen;

        // Slide the window: drop an older entry for the same file (keep
        // only the closest pair), then append and trim to M entries.
        if let Some(pos) = self.window.iter().position(|e| e.file == file) {
            self.window.remove(pos);
        }
        self.window.push_back(WindowEntry {
            file,
            index,
            distinct_index,
            time,
        });
        while self.window.len() as u64 > window_m {
            self.window.pop_front();
        }

        match self.open_files.iter_mut().find(|(f, _)| *f == file) {
            Some((_, count)) => *count += 1,
            None => self.open_files.push((file, 1)),
        }
    }

    /// Records a close of `file`.
    pub fn record_close(&mut self, file: FileId) {
        if let Some(pos) = self.open_files.iter().position(|&(f, _)| f == file) {
            let count = &mut self.open_files[pos].1;
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.open_files.swap_remove(pos);
            }
        }
    }

    /// Merges a child's history into this one at exit (§4.7): the child's
    /// recent references are appended so future parent references can
    /// relate to them. The child's still-open files are implicitly closed.
    pub fn merge_child(&mut self, child: &ProcessHistory, window_m: u64) {
        for e in &child.window {
            self.open_seq += 1;
            self.distinct_seq += 1;
            let index = self.open_seq;
            let distinct_index = self.distinct_seq;
            if let Some(pos) = self.window.iter().position(|w| w.file == e.file) {
                self.window.remove(pos);
            }
            self.window.push_back(WindowEntry {
                file: e.file,
                index,
                distinct_index,
                time: e.time,
            });
        }
        while self.window.len() as u64 > window_m {
            self.window.pop_front();
        }
    }

    /// Drops every trace of `file` (used after delayed deletion, §4.8).
    pub fn forget_file(&mut self, file: FileId) {
        self.window.retain(|e| e.file != file);
        self.open_files.retain(|&(f, _)| f != file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(h: &mut ProcessHistory, kind: DistanceKind, f: FileId, t: u64) -> Vec<(FileId, f64)> {
        let mut out = Vec::new();
        h.record_open(kind, 100, f, Timestamp::from_secs(t), &mut out);
        out.into_iter().map(|o| (o.from, o.distance)).collect()
    }

    /// The paper's Figure 1 sequence: Ao Bo Bc Co Cc Ac Do Dc.
    #[test]
    fn figure1_lifetime_distances() {
        let k = DistanceKind::Lifetime;
        let mut h = ProcessHistory::new();
        let (a, b, c, d) = (FileId(0), FileId(1), FileId(2), FileId(3));

        assert!(open(&mut h, k, a, 0).is_empty());
        let from_b = open(&mut h, k, b, 1);
        assert_eq!(from_b, vec![(a, 0.0)], "A→B = 0 (A still open)");
        h.record_close(b);
        let mut from_c = open(&mut h, k, c, 2);
        from_c.sort_by_key(|(f, _)| f.0);
        assert_eq!(from_c, vec![(a, 0.0), (b, 1.0)], "A→C = 0, B→C = 1");
        h.record_close(c);
        h.record_close(a);
        let mut from_d = open(&mut h, k, d, 3);
        from_d.sort_by_key(|(f, _)| f.0);
        assert_eq!(
            from_d,
            vec![(a, 3.0), (b, 2.0), (c, 1.0)],
            "A→D = 3, B→D = 2, C→D = 1"
        );
    }

    /// §3.1.1 footnote: in {A, C, C, C, B} the strict sequence distance
    /// A→B is 3 (repeated references are not elided).
    #[test]
    fn sequence_distance_counts_repeats() {
        let k = DistanceKind::Sequence;
        let mut h = ProcessHistory::new();
        let (a, b, c) = (FileId(0), FileId(1), FileId(2));
        open(&mut h, k, a, 0);
        for t in 1..=3 {
            open(&mut h, k, c, t);
            h.record_close(c);
        }
        let from_b = open(&mut h, k, b, 4);
        let d_a_b = from_b.iter().find(|(f, _)| *f == a).expect("A in window").1;
        assert_eq!(d_a_b, 3.0);
    }

    /// In {A, A, ..., B} only the closest pair counts.
    #[test]
    fn closest_pair_rule() {
        let k = DistanceKind::Sequence;
        let mut h = ProcessHistory::new();
        let (a, b) = (FileId(0), FileId(1));
        open(&mut h, k, a, 0);
        h.record_close(a);
        open(&mut h, k, a, 1);
        h.record_close(a);
        let from_b = open(&mut h, k, b, 2);
        assert_eq!(
            from_b,
            vec![(a, 0.0)],
            "distance from the *latest* open of A"
        );
    }

    #[test]
    fn temporal_distance_uses_clock() {
        let k = DistanceKind::Temporal;
        let mut h = ProcessHistory::new();
        let (a, b) = (FileId(0), FileId(1));
        open(&mut h, k, a, 10);
        let from_b = open(&mut h, k, b, 25);
        assert_eq!(from_b, vec![(a, 15.0)]);
    }

    #[test]
    fn window_limits_and_compensates() {
        let k = DistanceKind::Lifetime;
        let mut h = ProcessHistory::new();
        let a = FileId(0);
        let mut out = Vec::new();
        h.record_open(k, 100, a, Timestamp::ZERO, &mut out);
        h.record_close(a);
        // 99 other files: A stays just inside the window of 100.
        for i in 1..=99 {
            h.record_open(k, 100, FileId(i), Timestamp::ZERO, &mut out);
            h.record_close(FileId(i));
        }
        out.clear();
        h.record_open(k, 100, FileId(200), Timestamp::ZERO, &mut out);
        let oa = out.iter().find(|o| o.from == a).expect("A still in window");
        assert_eq!(oa.distance, 100.0, "distance 100 = M exactly");
        assert!(!oa.compensated, "exactly M is not compensated");

        // One more open pushes A out of the window entirely.
        out.clear();
        h.record_open(k, 100, FileId(201), Timestamp::ZERO, &mut out);
        assert!(out.iter().all(|o| o.from != a), "A slid out of the window");
    }

    #[test]
    fn compensation_caps_values_above_m() {
        // Repeated re-opens of B keep the window short (closest-pair dedup)
        // while the open index races ahead, so A's raw distance exceeds M.
        let k = DistanceKind::Lifetime;
        let mut h = ProcessHistory::new();
        let (a, b) = (FileId(0), FileId(1));
        let mut out = Vec::new();
        h.record_open(k, 100, a, Timestamp::ZERO, &mut out);
        h.record_close(a);
        for _ in 0..200 {
            h.record_open(k, 100, b, Timestamp::ZERO, &mut out);
            h.record_close(b);
        }
        out.clear();
        h.record_open(k, 100, FileId(2), Timestamp::ZERO, &mut out);
        let oa = out
            .iter()
            .find(|o| o.from == a)
            .expect("A still in short window");
        assert_eq!(oa.distance, 100.0, "capped to M");
        assert!(oa.compensated);
    }

    #[test]
    fn still_open_files_outside_window_stay_at_zero() {
        let k = DistanceKind::Lifetime;
        let mut h = ProcessHistory::new();
        let a = FileId(0);
        let mut out = Vec::new();
        // A is opened and *kept open* while 150 others stream past.
        h.record_open(k, 100, a, Timestamp::ZERO, &mut out);
        for i in 1..=150 {
            h.record_open(k, 100, FileId(i), Timestamp::ZERO, &mut out);
            h.record_close(FileId(i));
        }
        out.clear();
        h.record_open(k, 100, FileId(999), Timestamp::ZERO, &mut out);
        let oa = out
            .iter()
            .find(|o| o.from == a)
            .expect("A reported despite window");
        assert_eq!(oa.distance, 0.0, "A's lifetime encloses the open");
    }

    #[test]
    fn merge_child_appends_files() {
        let k = DistanceKind::Lifetime;
        let mut parent = ProcessHistory::new();
        let mut child = ProcessHistory::new();
        let (pa, ca) = (FileId(1), FileId(2));
        let mut out = Vec::new();
        parent.record_open(k, 100, pa, Timestamp::ZERO, &mut out);
        parent.record_close(pa);
        child.record_open(k, 100, ca, Timestamp::ZERO, &mut out);
        child.record_close(ca);
        parent.merge_child(&child, 100);
        // A subsequent parent open relates to the child's file.
        out.clear();
        parent.record_open(k, 100, FileId(3), Timestamp::ZERO, &mut out);
        assert!(
            out.iter().any(|o| o.from == ca),
            "child file visible to parent"
        );
        assert!(
            out.iter().any(|o| o.from == pa),
            "parent file still visible"
        );
    }

    #[test]
    fn forget_file_removes_everything() {
        let k = DistanceKind::Lifetime;
        let mut h = ProcessHistory::new();
        let a = FileId(1);
        let mut out = Vec::new();
        h.record_open(k, 100, a, Timestamp::ZERO, &mut out);
        h.forget_file(a);
        assert!(!h.is_open(a));
        out.clear();
        h.record_open(k, 100, FileId(2), Timestamp::ZERO, &mut out);
        assert!(out.is_empty());
    }

    /// Footnote 1's alternative: in {A, C, C, C, B} the elided sequence
    /// distance A→B is 1 instead of 3.
    #[test]
    fn elide_repeats_collapses_runs() {
        let k = DistanceKind::Sequence;
        let (a, b, c) = (FileId(0), FileId(1), FileId(2));
        let mut out = Vec::new();
        let mut strict = ProcessHistory::new();
        let mut elided = ProcessHistory::new();
        // Strict history.
        strict.record_open_with(k, 100, false, a, Timestamp::ZERO, &mut out);
        strict.record_close(a);
        for _ in 0..3 {
            strict.record_open_with(k, 100, false, c, Timestamp::ZERO, &mut out);
            strict.record_close(c);
        }
        out.clear();
        strict.record_open_with(k, 100, false, b, Timestamp::ZERO, &mut out);
        let d = out
            .iter()
            .find(|o| o.from == a)
            .expect("A related")
            .distance;
        assert_eq!(d, 3.0, "strict counting (the paper's choice)");
        // Elided history.
        elided.record_open_with(k, 100, true, a, Timestamp::ZERO, &mut out);
        elided.record_close(a);
        for _ in 0..3 {
            elided.record_open_with(k, 100, true, c, Timestamp::ZERO, &mut out);
            elided.record_close(c);
        }
        out.clear();
        elided.record_open_with(k, 100, true, b, Timestamp::ZERO, &mut out);
        let d = out
            .iter()
            .find(|o| o.from == a)
            .expect("A related")
            .distance;
        assert_eq!(d, 1.0, "elided counting (the footnote alternative)");
    }

    #[test]
    fn nested_opens_need_matching_closes() {
        let mut h = ProcessHistory::new();
        let a = FileId(1);
        let mut out = Vec::new();
        h.record_open(DistanceKind::Lifetime, 100, a, Timestamp::ZERO, &mut out);
        h.record_open(DistanceKind::Lifetime, 100, a, Timestamp::ZERO, &mut out);
        h.record_close(a);
        assert!(
            h.is_open(a),
            "one close of a doubly-open file leaves it open"
        );
        h.record_close(a);
        assert!(!h.is_open(a));
    }
}
