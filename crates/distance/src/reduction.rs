//! Online reduction of event distances to a single file distance (§3.1.2).

use crate::config::ReductionKind;
use serde::{Deserialize, Serialize};

/// Streaming summary of the distances observed between one ordered file
/// pair.
///
/// For the geometric mean the accumulator stores `Σ ln(1 + dᵢ)`, so the
/// summary is updatable online in O(1) space — one of the paper's explicit
/// requirements ("easy to calculate, updatable on-line, small in storage").
/// Zero distances (lifetime overlaps) are handled by the `1 + d` shift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairSummary {
    /// `Σ ln(1 + dᵢ)` for geometric reduction, `Σ dᵢ` for arithmetic.
    acc: f64,
    /// Number of observations.
    count: u32,
}

/// Precomputed `ln(1 + k)` for small integer distances.
///
/// Sequence and lifetime distances are integer-valued and window-capped
/// (`M = 100` by default), so almost every geometric-reduction observation
/// hits this table instead of paying for a live `ln` — the single hottest
/// arithmetic operation on the ingest path. Values are bit-identical to
/// computing `(1.0 + d).ln()` directly.
fn ln1p_small() -> &'static [f64; 1024] {
    static LUT: std::sync::OnceLock<[f64; 1024]> = std::sync::OnceLock::new();
    LUT.get_or_init(|| std::array::from_fn(|k| (1.0 + k as f64).ln()))
}

#[inline]
fn ln1p(d: f64) -> f64 {
    let k = d as usize;
    if k < 1024 && k as f64 == d {
        ln1p_small()[k]
    } else {
        (1.0 + d).ln()
    }
}

impl PairSummary {
    /// Creates a summary from a first observation.
    #[must_use]
    pub fn first(kind: ReductionKind, d: f64) -> PairSummary {
        let mut s = PairSummary { acc: 0.0, count: 0 };
        s.observe(kind, d);
        s
    }

    /// Folds one observation into the summary.
    #[inline]
    pub fn observe(&mut self, kind: ReductionKind, d: f64) {
        let d = d.max(0.0);
        self.acc += match kind {
            ReductionKind::Arithmetic => d,
            ReductionKind::Geometric => ln1p(d),
        };
        self.count += 1;
    }

    /// Current reduced distance.
    #[must_use]
    pub fn distance(&self, kind: ReductionKind) -> f64 {
        if self.count == 0 {
            return f64::INFINITY;
        }
        let mean = self.acc / f64::from(self.count);
        match kind {
            ReductionKind::Arithmetic => mean,
            ReductionKind::Geometric => mean.exp() - 1.0,
        }
    }

    /// Number of observations folded in.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_mean_is_plain_average() {
        let mut s = PairSummary::first(ReductionKind::Arithmetic, 1.0);
        s.observe(ReductionKind::Arithmetic, 1.0);
        s.observe(ReductionKind::Arithmetic, 1498.0);
        assert!((s.distance(ReductionKind::Arithmetic) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_weighs_small_values_more() {
        // The paper's motivating example (§3.1.2): distances 1, 1, 1498
        // should look much closer than 500, 500, 500.
        let k = ReductionKind::Geometric;
        let mut close = PairSummary::first(k, 1.0);
        close.observe(k, 1.0);
        close.observe(k, 1498.0);
        let mut far = PairSummary::first(k, 500.0);
        far.observe(k, 500.0);
        far.observe(k, 500.0);
        assert!(
            close.distance(k) < far.distance(k) / 10.0,
            "geometric: {} vs {}",
            close.distance(k),
            far.distance(k)
        );
    }

    #[test]
    fn zero_distances_are_representable() {
        let k = ReductionKind::Geometric;
        let mut s = PairSummary::first(k, 0.0);
        s.observe(k, 0.0);
        assert!(s.distance(k).abs() < 1e-12);
    }

    #[test]
    fn single_observation_round_trips() {
        for k in [ReductionKind::Arithmetic, ReductionKind::Geometric] {
            let s = PairSummary::first(k, 7.0);
            assert!((s.distance(k) - 7.0).abs() < 1e-9, "{k:?}");
        }
    }

    #[test]
    fn negative_observations_clamp_to_zero() {
        let k = ReductionKind::Geometric;
        let s = PairSummary::first(k, -5.0);
        assert!(s.distance(k).abs() < 1e-12);
    }

    #[test]
    fn ln1p_lut_is_bit_identical_to_direct_ln() {
        for k in 0..1024u32 {
            let d = f64::from(k);
            assert_eq!(ln1p(d).to_bits(), (1.0 + d).ln().to_bits(), "d = {d}");
        }
        // Non-integer and out-of-range values fall through to the live ln.
        for d in [0.5, 3.25, 1024.0, 5000.5, 1e12] {
            assert_eq!(ln1p(d).to_bits(), (1.0 + d).ln().to_bits(), "d = {d}");
        }
    }

    #[test]
    fn count_tracks_observations() {
        let mut s = PairSummary::first(ReductionKind::Geometric, 1.0);
        assert_eq!(s.count(), 1);
        s.observe(ReductionKind::Geometric, 2.0);
        assert_eq!(s.count(), 2);
    }
}
