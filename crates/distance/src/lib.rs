//! Semantic distance — the paper's central concept (§3.1).
//!
//! Semantic distance quantifies the user's intuition about how related two
//! files are, inferred purely from reference behavior. This crate
//! implements:
//!
//! * the three distance definitions of §3.1.1 — temporal (Definition 1),
//!   sequence-based (Definition 2), and lifetime-based (Definition 3, the
//!   one SEER uses);
//! * data reduction from event distances to file distances via the
//!   geometric mean (§3.1.2; arithmetic mean available for ablation);
//! * the practical approximation heuristic (§3.1.3): only the `n = 20`
//!   closest neighbors per file are stored, updates are limited to files
//!   within a window of `M = 100` references, larger values are compensated
//!   by inserting `M`, and replacement follows the paper's priority rule
//!   (deletion-marked files, then the largest distance with random
//!   tie-breaking, then aging);
//! * per-process reference histories with fork inheritance and exit
//!   merging (§4.7), and delayed removal of deleted files (§4.8).
//!
//! The entry point is [`DistanceEngine`], a
//! [`seer_observer::ReferenceSink`] that consumes the observer's cleaned
//! reference stream and maintains a [`NeighborTable`].

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod exact;
pub mod history;
pub mod reduction;
pub mod table;

pub use config::{DistanceConfig, DistanceKind, ReductionKind};
pub use engine::{DistanceEngine, EngineSnapshot as DistanceSnapshot};
pub use table::{ClusterView, NeighborEntry, NeighborTable, TableDirty, TableSnapshot};
