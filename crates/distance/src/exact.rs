//! Naive reference implementation of semantic distance, for testing.
//!
//! Computes distances with unbounded storage and O(N²) work, exactly
//! following the definitions of §3.1.1, so the approximation heuristic of
//! §3.1.3 can be validated against ground truth on small streams.

use crate::config::{DistanceKind, ReductionKind};
use crate::reduction::PairSummary;
use seer_trace::{FileId, Timestamp};
use std::collections::HashMap;

/// One event in a single-process reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactEvent {
    /// Open `file` at `time`.
    Open(FileId, Timestamp),
    /// Close `file`.
    Close(FileId),
}

/// Computes the exact reduced distance between every ordered file pair in
/// a single-process stream.
///
/// Follows the closest-pair rule: each open of `B` contributes one
/// observation from the *latest* earlier open of every other file `A`.
#[must_use]
pub fn exact_distances(
    kind: DistanceKind,
    reduction: ReductionKind,
    events: &[ExactEvent],
) -> HashMap<(FileId, FileId), f64> {
    struct OpenRecord {
        index: u64,
        time: Timestamp,
        open: bool,
    }
    let mut latest: HashMap<FileId, OpenRecord> = HashMap::new();
    let mut summaries: HashMap<(FileId, FileId), PairSummary> = HashMap::new();
    let mut index = 0u64;
    for ev in events {
        match *ev {
            ExactEvent::Open(file, time) => {
                index += 1;
                for (&from, rec) in &latest {
                    if from == file {
                        continue;
                    }
                    let d = match kind {
                        DistanceKind::Temporal => time.saturating_since(rec.time).as_secs() as f64,
                        DistanceKind::Sequence => (index - rec.index).saturating_sub(1) as f64,
                        DistanceKind::Lifetime => {
                            if rec.open {
                                0.0
                            } else {
                                (index - rec.index) as f64
                            }
                        }
                    };
                    summaries
                        .entry((from, file))
                        .and_modify(|s| s.observe(reduction, d))
                        .or_insert_with(|| PairSummary::first(reduction, d));
                }
                latest.insert(
                    file,
                    OpenRecord {
                        index,
                        time,
                        open: true,
                    },
                );
            }
            ExactEvent::Close(file) => {
                if let Some(rec) = latest.get_mut(&file) {
                    rec.open = false;
                }
            }
        }
    }
    summaries
        .into_iter()
        .map(|(k, s)| (k, s.distance(reduction)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(f: u32, t: u64) -> ExactEvent {
        ExactEvent::Open(FileId(f), Timestamp::from_secs(t))
    }

    fn c(f: u32) -> ExactEvent {
        ExactEvent::Close(FileId(f))
    }

    #[test]
    fn figure1_exact() {
        let events = [o(0, 0), o(1, 1), c(1), o(2, 2), c(2), c(0), o(3, 3), c(3)];
        let d = exact_distances(DistanceKind::Lifetime, ReductionKind::Geometric, &events);
        let g = |x: u32, y: u32| d[&(FileId(x), FileId(y))];
        assert!(g(0, 1).abs() < 1e-9);
        assert!(g(0, 2).abs() < 1e-9);
        assert!((g(0, 3) - 3.0).abs() < 1e-9);
        assert!((g(1, 2) - 1.0).abs() < 1e-9);
        assert!((g(1, 3) - 2.0).abs() < 1e-9);
        assert!((g(2, 3) - 1.0).abs() < 1e-9);
        assert!(
            !d.contains_key(&(FileId(3), FileId(0))),
            "backward distances undefined"
        );
    }

    #[test]
    fn repeated_pairs_reduce() {
        // A→B observed twice, at distances 1 and 1.
        let events = [o(0, 0), c(0), o(1, 1), c(1), o(0, 2), c(0), o(1, 3), c(1)];
        let d = exact_distances(DistanceKind::Lifetime, ReductionKind::Geometric, &events);
        assert!((d[&(FileId(0), FileId(1))] - 1.0).abs() < 1e-9);
    }
}
