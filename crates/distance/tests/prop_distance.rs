//! Property-based tests: the §3.1.3 approximation heuristic against the
//! exact O(N²) reference implementation, plus structural invariants.

use proptest::prelude::*;
use seer_distance::exact::{exact_distances, ExactEvent};
use seer_distance::{DistanceConfig, DistanceEngine, DistanceKind, ReductionKind};
use seer_observer::{RefKind, Reference, ReferenceSink};
use seer_trace::{FileId, PathTable, Pid, Seq, Timestamp};

/// A tiny single-process reference script: opens and closes over a small
/// file universe.
fn script_strategy(files: u32, len: usize) -> impl Strategy<Value = Vec<ExactEvent>> {
    prop::collection::vec(0..files, 1..len).prop_map(|ops| {
        // Alternate opens and closes per file so lifetimes are well formed
        // (no nested double-opens; those are exercised in unit tests).
        let mut open = [false; 64];
        let mut out = Vec::new();
        let mut t = 0u64;
        for f in ops {
            let fid = FileId(f);
            if !open[f as usize] {
                t += 1;
                out.push(ExactEvent::Open(fid, Timestamp::from_secs(t)));
                open[f as usize] = true;
            } else {
                out.push(ExactEvent::Close(fid));
                open[f as usize] = false;
            }
        }
        out
    })
}

fn run_engine(config: DistanceConfig, events: &[ExactEvent]) -> DistanceEngine {
    let paths = PathTable::new();
    let mut engine = DistanceEngine::new(config);
    for (seq, ev) in events.iter().enumerate() {
        let (file, kind, time) = match *ev {
            ExactEvent::Open(f, t) => (
                f,
                RefKind::Open {
                    read: true,
                    write: false,
                    exec: false,
                },
                t,
            ),
            ExactEvent::Close(f) => (f, RefKind::Close, Timestamp::ZERO),
        };
        let r = Reference {
            seq: Seq(seq as u64),
            time,
            pid: Pid(1),
            file,
            kind,
        };
        engine.on_reference(&r, &paths);
    }
    engine
}

proptest! {
    /// With an unbounded-size table (n larger than the universe) and a
    /// window larger than the stream, the heuristic must agree exactly
    /// with the naive implementation.
    #[test]
    fn heuristic_matches_exact_when_unconstrained(
        events in script_strategy(8, 60),
        kind in prop::sample::select(vec![
            DistanceKind::Lifetime,
            DistanceKind::Sequence,
            DistanceKind::Temporal,
        ]),
    ) {
        let config = DistanceConfig {
            kind,
            n_neighbors: 64,
            window_m: 1000,
            ..DistanceConfig::default()
        };
        let engine = run_engine(config, &events);
        let exact = exact_distances(kind, ReductionKind::Geometric, &events);
        for (&(from, to), &d_exact) in &exact {
            let d_engine = engine.table().distance(from, to);
            prop_assert!(
                d_engine.is_some(),
                "pair {from:?}->{to:?} missing from engine table"
            );
            let d_engine = d_engine.expect("checked");
            prop_assert!(
                (d_engine - d_exact).abs() < 1e-6,
                "pair {from:?}->{to:?}: engine {d_engine} vs exact {d_exact}"
            );
        }
    }

    /// Neighbor rows never exceed n, and never contain self-references or
    /// duplicate targets.
    #[test]
    fn table_structural_invariants(
        events in script_strategy(12, 120),
        n in 1usize..6,
    ) {
        let config = DistanceConfig {
            n_neighbors: n,
            window_m: 10,
            ..DistanceConfig::default()
        };
        let engine = run_engine(config, &events);
        let table = engine.table();
        for f in table.files() {
            let row: Vec<_> = table.neighbors(f).collect();
            prop_assert!(row.len() <= n, "row of {f:?} has {} > n = {n}", row.len());
            prop_assert!(row.iter().all(|e| e.to != f), "self-reference in row of {f:?}");
            let mut targets: Vec<_> = row.iter().map(|e| e.to).collect();
            targets.sort_unstable();
            targets.dedup();
            prop_assert_eq!(targets.len(), row.len(), "duplicate targets in row");
        }
    }

    /// All stored distances are finite, non-negative, and — for the
    /// sequence/lifetime kinds — bounded by the window cap M.
    #[test]
    fn distances_are_bounded(
        events in script_strategy(10, 100),
        kind in prop::sample::select(vec![DistanceKind::Lifetime, DistanceKind::Sequence]),
    ) {
        let m = 20u64;
        let config = DistanceConfig { kind, window_m: m, ..DistanceConfig::default() };
        let engine = run_engine(config, &events);
        let table = engine.table();
        for f in table.files() {
            for e in table.neighbors(f) {
                let d = e.summary.distance(ReductionKind::Geometric);
                prop_assert!(d.is_finite() && d >= 0.0, "bad distance {d}");
                prop_assert!(d <= m as f64 + 1e-9, "distance {d} exceeds M = {m}");
            }
        }
    }

    /// The lifetime distance from a file that stays open is always zero.
    #[test]
    fn open_file_distance_is_zero(extra in 1u32..30) {
        let mut events = vec![ExactEvent::Open(FileId(0), Timestamp::ZERO)];
        for i in 1..=extra {
            events.push(ExactEvent::Open(FileId(i), Timestamp::from_secs(u64::from(i))));
            events.push(ExactEvent::Close(FileId(i)));
        }
        let config = DistanceConfig { n_neighbors: 64, ..DistanceConfig::default() };
        let engine = run_engine(config, &events);
        for i in 1..=extra {
            let d = engine
                .table()
                .distance(FileId(0), FileId(i))
                .expect("pair must exist");
            prop_assert!(d.abs() < 1e-9, "0→{i} should be 0, got {d}");
        }
    }
}
