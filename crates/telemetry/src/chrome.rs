//! Exporters for completed spans: Chrome trace-event JSON (opens in
//! `chrome://tracing` / Perfetto), an indented span-tree pretty-printer,
//! and the flight recorder's JSON-lines dump format.
//!
//! The Chrome renderer emits *complete* (`"ph":"X"`) events with
//! microsecond timestamps normalized to the earliest span in the export,
//! so files are small, diff-stable, and land at t=0 in the viewer. Field
//! order is fixed by construction (strings are assembled manually), which
//! the golden test locks down.

use crate::tracing::SpanRecord;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Microseconds with fixed three-decimal precision (nanosecond floor),
/// the resolution Chrome's `ts`/`dur` fields expect.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// The track ("thread") a span renders on. Parallel recluster shards get
/// their own lanes so they draw side by side instead of mis-nesting;
/// everything else shares lane 1 and nests by time containment.
fn lane(span: &SpanRecord) -> u64 {
    match span.attr("shard").and_then(|s| s.parse::<u64>().ok()) {
        Some(shard) => 2 + shard,
        None => 1,
    }
}

/// Renders spans as a Chrome trace-event JSON document. Spans are sorted
/// by start time then span id; timestamps are relative to the earliest
/// span. Ids are rendered as zero-padded hex strings in `args` (Chrome's
/// `id` fields truncate 64-bit integers).
#[must_use]
pub fn render_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by(|a, b| {
        a.start_unix_nanos
            .cmp(&b.start_unix_nanos)
            .then_with(|| a.span_id.cmp(&b.span_id))
    });
    let base = sorted.first().map_or(0, |s| s.start_unix_nanos);
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_json(&s.name, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"seer\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            micros(s.start_unix_nanos.saturating_sub(base)),
            micros(s.duration_nanos),
            lane(s),
        );
        let _ = write!(
            out,
            ",\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\"",
            s.trace_id, s.span_id
        );
        if let Some(p) = s.parent_id {
            let _ = write!(out, ",\"parent_id\":\"{p:016x}\"");
        }
        for (k, v) in &s.attrs {
            out.push_str(",\"");
            escape_json(k, &mut out);
            out.push_str("\":\"");
            escape_json(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes spans as JSON lines (one [`SpanRecord`] object per line) — the
/// flight recorder's dump format for panics and shutdown.
///
/// # Errors
///
/// Returns the underlying I/O error if the writer fails.
pub fn write_flight_jsonl<W: std::io::Write>(
    w: &mut W,
    spans: &[SpanRecord],
) -> std::io::Result<()> {
    for s in spans {
        let line = serde_json::to_string(s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// A human-legible duration for tree rendering.
fn fmt_nanos(nanos: u64) -> String {
    let s = nanos as f64 / 1e9;
    if s < 1e-6 {
        format!("{nanos}ns")
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Pretty-prints spans as indented trees, one per trace, children
/// ordered by start time. Spans whose parent is absent from the set
/// (overwritten in the ring, or recorded elsewhere) are promoted to
/// roots, so a partial dump still renders.
#[must_use]
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    use std::collections::BTreeMap;
    // Traces in first-seen-start order; spans within a trace by start.
    let mut by_trace: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    let mut traces: Vec<(u64, Vec<&SpanRecord>)> = by_trace.into_iter().collect();
    traces.sort_by_key(|(_, v)| v.iter().map(|s| s.start_unix_nanos).min().unwrap_or(0));

    let mut out = String::new();
    for (trace_id, mut members) in traces {
        members.sort_by_key(|s| (s.start_unix_nanos, s.span_id));
        let ids: std::collections::HashSet<u64> = members.iter().map(|s| s.span_id).collect();
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for s in &members {
            match s.parent_id {
                Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
                _ => roots.push(s),
            }
        }
        let total: u64 = roots.iter().map(|s| s.duration_nanos).sum();
        let _ = writeln!(
            out,
            "trace {trace_id:016x} — {} spans, {}",
            members.len(),
            fmt_nanos(total)
        );
        fn walk(
            out: &mut String,
            s: &SpanRecord,
            children: &std::collections::BTreeMap<u64, Vec<&SpanRecord>>,
            prefix: &str,
            last: bool,
        ) {
            let branch = if last { "└─ " } else { "├─ " };
            let attrs = if s.attrs.is_empty() {
                String::new()
            } else {
                let joined: Vec<String> = s.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!(" ({})", joined.join(", "))
            };
            let _ = writeln!(
                out,
                "{prefix}{branch}{} {}{attrs}",
                s.name,
                fmt_nanos(s.duration_nanos)
            );
            let next_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
            if let Some(kids) = children.get(&s.span_id) {
                for (i, k) in kids.iter().enumerate() {
                    walk(out, k, children, &next_prefix, i + 1 == kids.len());
                }
            }
        }
        for (i, r) in roots.iter().enumerate() {
            walk(&mut out, r, &children, "", i + 1 == roots.len());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &str,
        trace: u64,
        id: u64,
        parent: Option<u64>,
        start: u64,
        dur: u64,
        attrs: &[(&str, &str)],
    ) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name: name.into(),
            start_unix_nanos: start,
            duration_nanos: dur,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }

    #[test]
    fn chrome_timestamps_are_normalized_microseconds() {
        let spans = vec![
            span("b", 1, 2, Some(1), 2_000_500, 1_000, &[]),
            span("a", 1, 1, None, 1_000_000, 3_000_000, &[]),
        ];
        let json = render_chrome_trace(&spans);
        // Earliest span lands at ts 0; the other at 1000.5 µs.
        assert!(json.contains("\"name\":\"a\",\"cat\":\"seer\",\"ph\":\"X\",\"ts\":0.000"));
        assert!(json.contains("\"ts\":1000.500,\"dur\":1.000"));
        assert!(json.contains("\"parent_id\":\"0000000000000001\""));
    }

    #[test]
    fn shard_spans_get_their_own_lane() {
        let spans = vec![
            span("recluster", 1, 1, None, 0, 10, &[]),
            span("shard_count", 1, 2, Some(1), 1, 5, &[("shard", "3")]),
        ];
        let json = render_chrome_trace(&spans);
        assert!(json.contains("\"tid\":1,"), "plain spans on lane 1");
        assert!(json.contains("\"tid\":5,"), "shard 3 renders on lane 5");
    }

    #[test]
    fn tree_renders_nested_and_orphaned_spans() {
        let spans = vec![
            span("root", 7, 1, None, 0, 1_000_000, &[("conn", "0")]),
            span("child", 7, 2, Some(1), 10, 500_000, &[]),
            span("orphan", 7, 3, Some(99), 20, 1_000, &[]),
        ];
        let tree = render_span_tree(&spans);
        assert!(tree.contains("trace 0000000000000007 — 3 spans"));
        assert!(tree.contains("├─ root 1.0ms (conn=0)"));
        assert!(tree.contains("│  └─ child 500.0µs"));
        assert!(tree.contains("└─ orphan 1.0µs"), "missing parent → root");
    }

    #[test]
    fn flight_jsonl_is_one_record_per_line() {
        let spans = vec![
            span("a", 1, 1, None, 5, 6, &[("k", "v")]),
            span("b", 1, 2, Some(1), 7, 8, &[]),
        ];
        let mut buf = Vec::new();
        write_flight_jsonl(&mut buf, &spans).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, original) in lines.iter().zip(&spans) {
            let back: SpanRecord = serde_json::from_str(line).expect("parse");
            assert_eq!(&back, original);
        }
    }
}
