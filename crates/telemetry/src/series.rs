//! Fixed-capacity time-series rings for windowed metric history.
//!
//! Prometheus snapshots are point-in-time; `seer top` wants *trends* —
//! is the miss-free hoard shrinking, is coverage improving since the
//! last recluster? A [`SeriesRing`] keeps the last `capacity` samples of
//! any named series (a counter's value, a gauge, a histogram quantile —
//! the ring stores plain `f64`s and does not care which). Recording is a
//! short critical section on a plain mutex: samples arrive at evaluator
//! cadence (seconds apart), never on the per-event hot path.
//!
//! The serializable [`SeriesSnapshot`] travels over the wire inside
//! quality responses and backs both the terminal sparklines
//! ([`render_sparkline`]) and the standalone HTML dashboard export
//! ([`render_dashboard_html`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One named series: the most recent `capacity` samples, oldest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoints {
    /// Series name, following metric naming conventions.
    pub name: String,
    /// Samples, oldest first. Length never exceeds the ring capacity.
    pub points: Vec<f64>,
}

impl SeriesPoints {
    /// Most recent sample, if any.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.points.last().copied()
    }

    /// Change across the retained window: `last - first`. `None` until
    /// two samples exist.
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) if self.points.len() >= 2 => Some(b - a),
            _ => None,
        }
    }
}

/// Serializable view of every series in a ring.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Ring capacity (max points retained per series).
    pub capacity: usize,
    /// All series, sorted by name (BTreeMap iteration order).
    pub series: Vec<SeriesPoints>,
}

impl SeriesSnapshot {
    /// Looks up one series by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&SeriesPoints> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// Fixed-capacity windowed history for any number of named series.
///
/// Names are registered implicitly on first [`record`](SeriesRing::record);
/// each keeps an independent ring of the last `capacity` values.
#[derive(Debug)]
pub struct SeriesRing {
    capacity: usize,
    inner: Mutex<BTreeMap<String, VecDeque<f64>>>,
}

impl SeriesRing {
    /// Creates a ring retaining up to `capacity` samples per series.
    /// A capacity of zero disables recording entirely.
    #[must_use]
    pub fn new(capacity: usize) -> SeriesRing {
        SeriesRing {
            capacity,
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Appends one sample to `name`'s ring, evicting the oldest sample
    /// once the ring is full.
    pub fn record(&self, name: &str, value: f64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("series lock");
        let ring = match inner.get_mut(name) {
            Some(r) => r,
            None => inner
                .entry(name.to_string())
                .or_insert_with(|| VecDeque::with_capacity(self.capacity)),
        };
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(value);
    }

    /// Number of samples currently held for `name` (0 if unknown).
    #[must_use]
    pub fn len(&self, name: &str) -> usize {
        self.inner
            .lock()
            .expect("series lock")
            .get(name)
            .map_or(0, VecDeque::len)
    }

    /// True when no series holds any sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("series lock").is_empty()
    }

    /// Snapshots every series, oldest sample first, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> SeriesSnapshot {
        let inner = self.inner.lock().expect("series lock");
        SeriesSnapshot {
            capacity: self.capacity,
            series: inner
                .iter()
                .map(|(name, ring)| SeriesPoints {
                    name: name.clone(),
                    points: ring.iter().copied().collect(),
                })
                .collect(),
        }
    }
}

/// Unicode block characters from lowest to highest.
const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders samples as a one-line unicode sparkline, scaled to the
/// min..max of the slice. A flat series renders as a run of the lowest
/// block; an empty slice renders as an empty string. Non-finite samples
/// render as spaces.
#[must_use]
pub fn render_sparkline(points: &[f64]) -> String {
    let finite: Vec<f64> = points.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = max - min;
    points
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if span <= 0.0 {
                SPARK_LEVELS[0]
            } else {
                let idx = ((v - min) / span * 7.0).round() as usize;
                SPARK_LEVELS[idx.min(7)]
            }
        })
        .collect()
}

/// Renders a snapshot as a standalone HTML dashboard: one inline SVG
/// polyline per series with its latest value and windowed delta. No
/// external assets, no scripts — the file opens anywhere.
#[must_use]
pub fn render_dashboard_html(snapshot: &SeriesSnapshot, title: &str) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>");
    out.push_str(&escape_html(title));
    out.push_str(
        "</title>\n<style>\n\
         body{font-family:monospace;background:#111;color:#ddd;margin:2em}\n\
         h1{font-size:1.2em}\n\
         .card{margin:1em 0;padding:0.6em;border:1px solid #333;border-radius:4px}\n\
         .name{color:#8cf}.val{color:#cf8;float:right}\n\
         svg{display:block;width:100%;height:60px;margin-top:0.4em}\n\
         polyline{fill:none;stroke:#8cf;stroke-width:1.5}\n\
         </style></head><body>\n<h1>",
    );
    out.push_str(&escape_html(title));
    out.push_str("</h1>\n");
    for s in &snapshot.series {
        let last = s.last().map_or_else(|| "-".into(), |v| format!("{v:.3}"));
        let delta = s
            .delta()
            .map_or_else(String::new, |d| format!(" (Δ {d:+.3})"));
        out.push_str("<div class=\"card\"><span class=\"name\">");
        out.push_str(&escape_html(&s.name));
        out.push_str("</span><span class=\"val\">");
        out.push_str(&escape_html(&format!("{last}{delta}")));
        out.push_str("</span>");
        out.push_str(&svg_polyline(&s.points));
        out.push_str("</div>\n");
    }
    out.push_str("</body></html>\n");
    out
}

/// One tenant's card on the fleet dashboard: identity, health score,
/// a free-form status line, and the score history to plot.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPanel {
    /// Tenant name (`_self` for the daemon's own watchdog panel).
    pub tenant: String,
    /// Health score in 0..=100 (100 = fully healthy).
    pub score: f64,
    /// One-line status, e.g. `healthy` or `wal fault: append failed`.
    pub status: String,
    /// Number of alerts currently firing for this tenant.
    pub firing: u64,
    /// Recent health-score samples, oldest first.
    pub score_points: Vec<f64>,
}

/// Renders a fleet of tenants as a standalone HTML dashboard: one card
/// per tenant with its health score, status, firing-alert count, and a
/// score-history polyline. Same zero-asset contract as
/// [`render_dashboard_html`].
#[must_use]
pub fn render_fleet_dashboard_html(panels: &[FleetPanel], title: &str) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>");
    out.push_str(&escape_html(title));
    out.push_str(
        "</title>\n<style>\n\
         body{font-family:monospace;background:#111;color:#ddd;margin:2em}\n\
         h1{font-size:1.2em}\n\
         .card{margin:1em 0;padding:0.6em;border:1px solid #333;border-radius:4px}\n\
         .name{color:#8cf}.status{color:#999;margin-left:1em}.val{float:right}\n\
         .ok{color:#cf8}.warn{color:#fc6}.bad{color:#f66}\n\
         svg{display:block;width:100%;height:60px;margin-top:0.4em}\n\
         polyline{fill:none;stroke:#8cf;stroke-width:1.5}\n\
         </style></head><body>\n<h1>",
    );
    out.push_str(&escape_html(title));
    out.push_str("</h1>\n");
    for p in panels {
        let class = if p.score >= 80.0 {
            "ok"
        } else if p.score >= 50.0 {
            "warn"
        } else {
            "bad"
        };
        out.push_str("<div class=\"card\"><span class=\"name\">");
        out.push_str(&escape_html(&p.tenant));
        out.push_str("</span><span class=\"status\">");
        out.push_str(&escape_html(&p.status));
        out.push_str(&format!(
            "</span><span class=\"val {class}\">score {:.0} · {} firing</span>",
            p.score, p.firing
        ));
        out.push_str(&svg_polyline(&p.score_points));
        out.push_str("</div>\n");
    }
    out.push_str("</body></html>\n");
    out
}

/// One series as an SVG polyline in a 0..100 × 0..60 viewBox.
fn svg_polyline(points: &[f64]) -> String {
    let finite: Vec<f64> = points.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return "<svg viewBox=\"0 0 100 60\" preserveAspectRatio=\"none\"></svg>".into();
    }
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (max - min).max(1e-12);
    let n = points.len().max(2) - 1;
    let coords: Vec<String> = points
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .map(|(i, &v)| {
            let x = i as f64 / n as f64 * 100.0;
            let y = 55.0 - (v - min) / span * 50.0;
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg viewBox=\"0 0 100 60\" preserveAspectRatio=\"none\">\
         <polyline points=\"{}\"/></svg>",
        coords.join(" ")
    )
}

/// Minimal HTML escaping for text nodes and attribute values.
fn escape_html(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let ring = SeriesRing::new(3);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            ring.record("x", v);
        }
        let snap = ring.snapshot();
        let s = snap.get("x").expect("series x");
        assert_eq!(s.points, vec![3.0, 4.0, 5.0]);
        assert_eq!(s.last(), Some(5.0));
        assert_eq!(s.delta(), Some(2.0));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let ring = SeriesRing::new(0);
        ring.record("x", 1.0);
        assert!(ring.is_empty());
        assert_eq!(ring.len("x"), 0);
    }

    #[test]
    fn snapshot_sorted_by_name_and_round_trips() {
        let ring = SeriesRing::new(8);
        ring.record("zeta", 1.0);
        ring.record("alpha", 2.0);
        ring.record("alpha", 3.0);
        let snap = ring.snapshot();
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: SeriesSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(render_sparkline(&[]), "");
        assert_eq!(render_sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        let line = render_sparkline(&[0.0, 3.5, 7.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁') && line.ends_with('█'));
        // Non-finite samples degrade to blanks, not panics.
        assert_eq!(render_sparkline(&[f64::NAN, 1.0]).chars().next(), Some(' '));
    }

    #[test]
    fn dashboard_html_lists_every_series() {
        let ring = SeriesRing::new(4);
        ring.record("seer_quality_coverage", 0.5);
        ring.record("seer_quality_coverage", 0.75);
        ring.record("lru<cov>", 0.25);
        let html = render_dashboard_html(&ring.snapshot(), "seer quality");
        assert!(html.contains("seer_quality_coverage"));
        assert!(html.contains("lru&lt;cov&gt;"), "names are escaped");
        assert!(html.contains("<polyline"));
        assert!(html.contains("Δ +0.250"));
    }

    #[test]
    fn fleet_dashboard_renders_every_tenant_with_score_class() {
        let panels = vec![
            FleetPanel {
                tenant: "machine-a".into(),
                score: 97.0,
                status: "healthy".into(),
                firing: 0,
                score_points: vec![95.0, 96.0, 97.0],
            },
            FleetPanel {
                tenant: "<sick>".into(),
                score: 30.0,
                status: "wal fault: append failed".into(),
                firing: 2,
                score_points: vec![100.0, 60.0, 30.0],
            },
        ];
        let html = render_fleet_dashboard_html(&panels, "seer fleet");
        assert!(html.contains("machine-a"));
        assert!(html.contains("&lt;sick&gt;"), "tenant names are escaped");
        assert!(html.contains("score 97"));
        assert!(html.contains("val ok"), "healthy tenants render green");
        assert!(html.contains("val bad"), "sick tenants render red");
        assert!(html.contains("2 firing"));
        assert!(html.contains("<polyline"));
    }

    #[test]
    fn delta_needs_two_samples() {
        let ring = SeriesRing::new(4);
        ring.record("x", 9.0);
        let snap = ring.snapshot();
        assert_eq!(snap.get("x").expect("x").delta(), None);
    }
}
