//! The metrics registry: atomic counters, gauges, and latency histograms.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonically increasing counter. Cloning is cheap and clones share
/// the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the running total. Intended for mirroring an existing
    /// monotonic counter (e.g. a component's internal stats struct) into
    /// the registry; prefer [`Counter::inc`]/[`Counter::add`] otherwise.
    pub fn set_total(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (queue depths, sizes).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Smallest histogram bucket bound: `2^FIRST_EXP` nanoseconds (256 ns).
const FIRST_EXP: u32 = 8;
/// Largest bound: `2^LAST_EXP` nanoseconds (≈ 275 s); beyond is +Inf.
const LAST_EXP: u32 = 38;
/// Number of finite buckets.
const NUM_BUCKETS: usize = (LAST_EXP - FIRST_EXP + 1) as usize;

struct HistogramInner {
    /// Per-bucket counts; bucket `i` holds observations in
    /// `(2^(FIRST_EXP+i-1), 2^(FIRST_EXP+i)]` ns (bucket 0 from zero).
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Observations above the last finite bound.
    overflow: AtomicU64,
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// A latency histogram with fixed log-spaced (power-of-two nanosecond)
/// buckets from 256 ns to ~275 s. Recording is lock-free: one shift to
/// find the bucket, three relaxed atomic adds.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.0.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records a duration.
    pub fn observe(&self, d: Duration) {
        self.observe_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a raw nanosecond observation.
    pub fn observe_nanos(&self, nanos: u64) {
        let inner = &*self.0;
        // Bit length b means nanos ≤ 2^b - 1 < 2^b, so the bucket with
        // bound 2^b is the first that contains it.
        let bits = 64 - nanos.leading_zeros();
        if bits <= FIRST_EXP {
            inner.buckets[0].fetch_add(1, Ordering::Relaxed);
        } else if bits <= LAST_EXP {
            inner.buckets[(bits - FIRST_EXP) as usize].fetch_add(1, Ordering::Relaxed);
        } else {
            inner.overflow.fetch_add(1, Ordering::Relaxed);
        }
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Starts an RAII timer that records into this histogram on drop.
    #[must_use]
    pub fn start_timer(&self) -> SpanTimer {
        SpanTimer {
            histogram: self.clone(),
            start: Instant::now(),
        }
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> MetricValue {
        let inner = &*self.0;
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        for (i, b) in inner.buckets.iter().enumerate() {
            buckets.push(BucketSnapshot {
                le: bucket_bound_seconds(i),
                count: b.load(Ordering::Relaxed),
            });
        }
        MetricValue::Histogram {
            count: inner.count.load(Ordering::Relaxed),
            sum_seconds: inner.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            buckets,
        }
    }
}

/// Upper bound of finite bucket `i`, in seconds.
fn bucket_bound_seconds(i: usize) -> f64 {
    (1u64 << (FIRST_EXP + i as u32)) as f64 / 1e9
}

/// RAII stage timer: measures from creation to drop and records the
/// elapsed time into its histogram.
pub struct SpanTimer {
    histogram: Histogram,
    start: Instant,
}

impl SpanTimer {
    /// Stops the timer early, recording now instead of at drop.
    pub fn stop(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.histogram.observe(self.start.elapsed());
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A collection of named metrics. Registration takes a short mutex;
/// recording through the returned handles is lock-free. Registration is
/// idempotent on (name, labels): re-registering returns the existing
/// instrument.
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.intern(name, help, labels, || {
            Instrument::Counter(Counter::default())
        }) {
            Instrument::Counter(c) => c,
            other => panic!("metric {name} already registered as {other:?}, wanted counter"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.intern(name, help, labels, || Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            other => panic!("metric {name} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Registers (or finds) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or finds) a labeled histogram.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.intern(name, help, labels, || {
            Instrument::Histogram(Histogram::default())
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("metric {name} already registered as {other:?}, wanted histogram"),
        }
    }

    fn intern(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return e.instrument.clone();
        }
        let instrument = make();
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            instrument: instrument.clone(),
        });
        instrument
    }

    /// A point-in-time copy of every metric, sorted by name then labels
    /// so output is deterministic.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut metrics: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter { total: c.get() },
                    Instrument::Gauge(g) => MetricValue::Gauge { value: g.get() },
                    Instrument::Histogram(h) => h.snapshot(),
                },
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        RegistrySnapshot { metrics }
    }
}

/// One cumulative-export bucket of a histogram snapshot: `count`
/// observations fell in `(previous bound, le]` seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Upper bound, in seconds.
    pub le: f64,
    /// Observations within this bucket (non-cumulative).
    pub count: u64,
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A monotonic total.
    Counter {
        /// The running total.
        total: u64,
    },
    /// An instantaneous value.
    Gauge {
        /// The value at snapshot time.
        value: i64,
    },
    /// A latency distribution.
    Histogram {
        /// Total observations (including overflow).
        count: u64,
        /// Sum of all observations, in seconds.
        sum_seconds: f64,
        /// Finite buckets, ascending by bound; observations above the
        /// last bound appear only in `count`.
        buckets: Vec<BucketSnapshot>,
    },
}

/// One metric in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metric name (`seer_*`).
    pub name: String,
    /// Human description (the Prometheus `# HELP` text).
    pub help: String,
    /// Label key/value pairs.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// The quantile `q` in seconds, if this metric is a histogram with
    /// data. Interpolates geometrically within the winning log bucket
    /// (see [`seer_stats::quantile_from_log_buckets`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match &self.value {
            MetricValue::Histogram { count, buckets, .. } => {
                let bounds: Vec<f64> = buckets.iter().map(|b| b.le).collect();
                let mut counts: Vec<u64> = buckets.iter().map(|b| b.count).collect();
                let finite: u64 = counts.iter().sum();
                counts.push(count.saturating_sub(finite));
                seer_stats::quantile_from_log_buckets(&bounds, &counts, q)
            }
            _ => None,
        }
    }
}

/// A serializable point-in-time copy of a [`Registry`] — the payload of
/// the daemon's `metrics` query and the input to
/// [`crate::render_prometheus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Every metric, sorted by name then labels.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Finds a metric by name, ignoring labels (first match).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Finds a metric by name and exact label set.
    #[must_use]
    pub fn find_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        })
    }

    /// The total of a counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)?.value {
            MetricValue::Counter { total } => Some(total),
            _ => None,
        }
    }

    /// The value of a gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)?.value {
            MetricValue::Gauge { value } => Some(value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_update() {
        let r = Registry::new();
        let c = r.counter("seer_test_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration returns the same underlying atomic.
        let again = r.counter("seer_test_total", "test counter");
        again.inc();
        assert_eq!(c.get(), 6);

        let g = r.gauge("seer_test_depth", "test gauge");
        g.set(7);
        g.add(-3);
        g.set_max(2);
        assert_eq!(g.get(), 4);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn labeled_metrics_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("seer_stage_total", "per stage", &[("stage", "decode")]);
        let b = r.counter_with("seer_stage_total", "per stage", &[("stage", "apply")]);
        a.inc();
        b.add(2);
        let snap = r.snapshot();
        assert_eq!(
            snap.find_with("seer_stage_total", &[("stage", "apply")])
                .map(|m| m.value.clone()),
            Some(MetricValue::Counter { total: 2 })
        );
        assert_eq!(
            snap.find_with("seer_stage_total", &[("stage", "decode")])
                .map(|m| m.value.clone()),
            Some(MetricValue::Counter { total: 1 })
        );
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("seer_lat_seconds", "latencies");
        // 1 µs = 1000 ns → bucket with bound 1024 ns.
        for _ in 0..99 {
            h.observe_nanos(1_000);
        }
        h.observe_nanos(40_000_000_000); // 40 s
        let snap = r.snapshot();
        let m = snap.find("seer_lat_seconds").expect("registered");
        match &m.value {
            MetricValue::Histogram {
                count,
                sum_seconds,
                buckets,
            } => {
                assert_eq!(*count, 100);
                assert!((sum_seconds - (99.0 * 1e-6 + 40.0)).abs() < 1e-6);
                let in_1us: u64 = buckets
                    .iter()
                    .filter(|b| b.le >= 1e-6 && b.le < 2e-6)
                    .map(|b| b.count)
                    .sum();
                assert_eq!(in_1us, 99);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        let p50 = m.quantile(0.50).expect("data");
        assert!(p50 > 0.25e-6 && p50 < 2e-6, "p50 ≈ 1 µs, got {p50}");
        let p99 = m.quantile(0.999).expect("data");
        assert!(p99 > 1.0, "p99.9 lands in the 40 s observation, got {p99}");
    }

    /// The labeled-registry hot path: 8 threads race to register *and*
    /// increment the same (name, labels) pair. Idempotent interning must
    /// hand every thread the same underlying atomic — no increments
    /// lost, exactly one entry in the snapshot.
    #[test]
    fn concurrent_labeled_registration_shares_one_atomic() {
        const THREADS: usize = 8;
        const INCS: u64 = 10_000;
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let c = r.counter_with(
                        "seer_daemon_tenant_events_total",
                        "Per-tenant events.",
                        &[("tenant", "machine-a")],
                    );
                    for _ in 0..INCS {
                        c.inc();
                    }
                });
            }
        });
        let snap = r.snapshot();
        let entries: Vec<_> = snap
            .metrics
            .iter()
            .filter(|m| m.name == "seer_daemon_tenant_events_total")
            .collect();
        assert_eq!(entries.len(), 1, "one entry despite 8 racing registrations");
        assert_eq!(
            entries[0].value,
            MetricValue::Counter {
                total: THREADS as u64 * INCS
            },
            "no increment lost to a racing registration"
        );
    }

    #[test]
    fn span_timer_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("seer_span_seconds", "span");
        {
            let _t = h.start_timer();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("seer_a_total", "a").add(3);
        r.gauge("seer_b", "b").set(-4);
        r.histogram("seer_c_seconds", "c").observe_nanos(5_000);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: RegistrySnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }
}
