//! SLO alerting: a bounded alert ring with firing/resolved transitions
//! and a multi-window burn-rate gauge.
//!
//! The [`AlertCenter`] is deliberately dumb: callers *observe* a boolean
//! condition per (tenant, kind) pair and the center turns edge
//! transitions into [`AlertRecord`]s — at most one active alert per
//! pair, a bounded ring of history, and no background threads. All
//! methods take a short mutex; they are called at health-scoring cadence
//! (hundreds of milliseconds apart), never on the per-event hot path.
//!
//! [`BurnGauge`] implements the classic SRE multi-window burn-rate
//! signal: sample a cumulative (total, bad) pair at a modest cadence,
//! then ask for the bad fraction over any trailing window. Dividing that
//! fraction by the SLO's error budget gives the *burn rate* — 1.0 means
//! the budget is being consumed exactly as fast as it accrues; alerting
//! on a fast **and** a slow window firing together suppresses blips
//! while still catching slow leaks.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// One alert, as recorded in the ring and served over the wire.
///
/// Timestamps are seconds since the owning [`AlertCenter`] was created
/// (daemon start, in practice): wall-clock-free, monotonic, and cheap to
/// serialize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRecord {
    /// Monotonic id, unique within one center, in firing order.
    pub id: u64,
    /// The tenant this alert is about (`_self` for the daemon itself).
    pub tenant: String,
    /// Short machine-readable kind, e.g. `slo-burn` or `shard0/stalled`.
    pub kind: String,
    /// Human-readable explanation captured at firing time.
    pub message: String,
    /// Seconds since center creation when the alert fired.
    pub fired_secs: f64,
    /// Seconds since center creation when it resolved; `None` while the
    /// condition still holds.
    pub resolved_secs: Option<f64>,
}

impl AlertRecord {
    /// True while the alert's condition still holds.
    #[must_use]
    pub fn is_firing(&self) -> bool {
        self.resolved_secs.is_none()
    }
}

/// The edge an [`AlertCenter::observe`] call produced, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertTransition {
    /// The condition went false → true: a new record was appended.
    Fired,
    /// The condition went true → false: the active record was resolved.
    Resolved,
}

struct CenterInner {
    ring: VecDeque<AlertRecord>,
    /// (tenant, kind) → id of the currently-firing record.
    active: HashMap<(String, String), u64>,
    next_id: u64,
    fired_total: u64,
}

/// Bounded, thread-safe alert history with at most one firing alert per
/// (tenant, kind) pair.
pub struct AlertCenter {
    capacity: usize,
    started: Instant,
    inner: Mutex<CenterInner>,
}

impl std::fmt::Debug for AlertCenter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("alert center poisoned");
        f.debug_struct("AlertCenter")
            .field("capacity", &self.capacity)
            .field("recorded", &inner.ring.len())
            .field("firing", &inner.active.len())
            .finish()
    }
}

impl AlertCenter {
    /// A center retaining up to `capacity` records (firing and resolved).
    /// A capacity of zero disables recording entirely.
    #[must_use]
    pub fn new(capacity: usize) -> AlertCenter {
        AlertCenter {
            capacity,
            started: Instant::now(),
            inner: Mutex::new(CenterInner {
                ring: VecDeque::new(),
                active: HashMap::new(),
                next_id: 0,
                fired_total: 0,
            }),
        }
    }

    /// Seconds since the center was created — the clock
    /// [`AlertRecord::fired_secs`] is measured on.
    #[must_use]
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Drives the (tenant, kind) alert from its boolean condition.
    /// `message` is only evaluated on the false→true edge. Returns the
    /// transition this call caused, if any.
    pub fn observe(
        &self,
        tenant: &str,
        kind: &str,
        firing: bool,
        message: impl FnOnce() -> String,
    ) -> Option<AlertTransition> {
        if self.capacity == 0 {
            return None;
        }
        let now = self.uptime_secs();
        let mut inner = self.inner.lock().expect("alert center poisoned");
        let key = (tenant.to_owned(), kind.to_owned());
        let active = inner.active.get(&key).copied();
        match (firing, active) {
            (true, Some(_)) | (false, None) => None,
            (true, None) => {
                let id = inner.next_id;
                inner.next_id += 1;
                inner.fired_total += 1;
                if inner.ring.len() == self.capacity {
                    // Prefer evicting resolved history over a live alert.
                    if let Some(idx) = inner.ring.iter().position(|a| !a.is_firing()) {
                        inner.ring.remove(idx);
                    } else if let Some(evicted) = inner.ring.pop_front() {
                        inner.active.remove(&(evicted.tenant, evicted.kind));
                    }
                }
                inner.ring.push_back(AlertRecord {
                    id,
                    tenant: tenant.to_owned(),
                    kind: kind.to_owned(),
                    message: message(),
                    fired_secs: now,
                    resolved_secs: None,
                });
                inner.active.insert(key, id);
                Some(AlertTransition::Fired)
            }
            (false, Some(id)) => {
                inner.active.remove(&key);
                if let Some(rec) = inner.ring.iter_mut().find(|a| a.id == id) {
                    rec.resolved_secs = Some(now);
                }
                Some(AlertTransition::Resolved)
            }
        }
    }

    /// Number of alerts currently firing.
    #[must_use]
    pub fn firing_count(&self) -> usize {
        self.inner
            .lock()
            .expect("alert center poisoned")
            .active
            .len()
    }

    /// Number of alerts currently firing for one tenant.
    #[must_use]
    pub fn firing_count_for(&self, tenant: &str) -> usize {
        self.inner
            .lock()
            .expect("alert center poisoned")
            .active
            .keys()
            .filter(|(t, _)| t == tenant)
            .count()
    }

    /// Total alerts ever fired (including since-evicted ones).
    #[must_use]
    pub fn fired_total(&self) -> u64 {
        self.inner
            .lock()
            .expect("alert center poisoned")
            .fired_total
    }

    /// The retained records, oldest first, optionally filtered to one
    /// tenant.
    #[must_use]
    pub fn snapshot(&self, tenant: Option<&str>) -> Vec<AlertRecord> {
        let inner = self.inner.lock().expect("alert center poisoned");
        inner
            .ring
            .iter()
            .filter(|a| tenant.is_none_or(|t| a.tenant == t))
            .cloned()
            .collect()
    }
}

/// One cumulative sample: (seconds since gauge creation, total ops, bad
/// ops).
type BurnSample = (f64, u64, u64);

/// A sliding-window burn-rate gauge over a cumulative good/bad stream.
///
/// Not thread-safe by design — each owner (one tenant's health state)
/// samples and reads from a single thread.
#[derive(Debug)]
pub struct BurnGauge {
    started: Instant,
    retain_secs: f64,
    samples: VecDeque<BurnSample>,
}

impl BurnGauge {
    /// A gauge retaining enough samples to answer windows up to
    /// `retain_secs` long.
    #[must_use]
    pub fn new(retain_secs: f64) -> BurnGauge {
        BurnGauge {
            started: Instant::now(),
            retain_secs: retain_secs.max(1e-3),
            samples: VecDeque::new(),
        }
    }

    /// Records the current cumulative totals. Callers throttle the
    /// cadence; every call appends one sample (flat samples are what
    /// lets a quiet window's rate decay back to zero).
    pub fn sample(&mut self, total: u64, bad: u64) {
        let now = self.started.elapsed().as_secs_f64();
        self.samples.push_back((now, total, bad));
        // Keep one sample *older* than the retention horizon as the
        // baseline anchor for full-width windows.
        let horizon = now - self.retain_secs;
        while self.samples.len() > 2 && self.samples[1].0 <= horizon {
            self.samples.pop_front();
        }
    }

    /// The bad fraction of ops over the trailing `window_secs`: 0.0 when
    /// nothing happened in the window.
    #[must_use]
    pub fn rate_over(&self, window_secs: f64) -> f64 {
        let (Some(&end), Some(&front)) = (self.samples.back(), self.samples.front()) else {
            return 0.0;
        };
        let start_t = self.started.elapsed().as_secs_f64() - window_secs;
        if end.0 <= start_t {
            return 0.0; // all activity predates the window
        }
        let mut base = front;
        for &s in &self.samples {
            if s.0 <= start_t {
                base = s;
            } else {
                break;
            }
        }
        let total = end.1.saturating_sub(base.1);
        let bad = end.2.saturating_sub(base.2);
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }

    /// [`rate_over`](BurnGauge::rate_over) divided by the SLO's error
    /// budget `slo` (the allowed bad fraction): the burn rate. 1.0 means
    /// the budget is consumed exactly as fast as it accrues.
    #[must_use]
    pub fn burn_over(&self, window_secs: f64, slo: f64) -> f64 {
        self.rate_over(window_secs) / slo.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn alerts_fire_once_and_resolve_once() {
        let c = AlertCenter::new(16);
        assert_eq!(
            c.observe("a", "slo-burn", true, || "burning".into()),
            Some(AlertTransition::Fired)
        );
        // Re-observing a firing condition is a no-op, not a new alert.
        assert_eq!(c.observe("a", "slo-burn", true, || "again".into()), None);
        assert_eq!(c.firing_count(), 1);
        assert_eq!(c.firing_count_for("a"), 1);
        assert_eq!(c.firing_count_for("b"), 0);

        assert_eq!(
            c.observe("a", "slo-burn", false, || unreachable!()),
            Some(AlertTransition::Resolved)
        );
        assert_eq!(c.observe("a", "slo-burn", false, || unreachable!()), None);
        let snap = c.snapshot(None);
        assert_eq!(snap.len(), 1);
        assert!(!snap[0].is_firing());
        assert!(snap[0].resolved_secs.unwrap() >= snap[0].fired_secs);
        assert_eq!(c.fired_total(), 1);
    }

    #[test]
    fn tenants_and_kinds_are_independent() {
        let c = AlertCenter::new(16);
        c.observe("a", "slo-burn", true, || "a burn".into());
        c.observe("a", "wal-fault", true, || "a wal".into());
        c.observe("b", "slo-burn", true, || "b burn".into());
        assert_eq!(c.firing_count(), 3);
        assert_eq!(c.firing_count_for("a"), 2);
        assert_eq!(c.snapshot(Some("b")).len(), 1);
        assert_eq!(c.snapshot(Some("b"))[0].message, "b burn");
    }

    #[test]
    fn ring_is_bounded_and_prefers_evicting_resolved() {
        let c = AlertCenter::new(3);
        // Two resolved alerts, then three firing ones: the resolved pair
        // gets evicted, the firing ones all survive.
        for kind in ["k0", "k1"] {
            c.observe("t", kind, true, || kind.into());
            c.observe("t", kind, false, || unreachable!());
        }
        for kind in ["k2", "k3", "k4"] {
            c.observe("t", kind, true, || kind.into());
        }
        let snap = c.snapshot(None);
        assert_eq!(snap.len(), 3);
        assert!(snap.iter().all(AlertRecord::is_firing));
        assert_eq!(c.firing_count(), 3);
    }

    #[test]
    fn zero_capacity_disables_alerting() {
        let c = AlertCenter::new(0);
        assert_eq!(c.observe("a", "k", true, || "m".into()), None);
        assert!(c.snapshot(None).is_empty());
        assert_eq!(c.firing_count(), 0);
    }

    #[test]
    fn burn_rate_rises_with_bad_ops_and_decays_when_quiet() {
        let mut g = BurnGauge::new(10.0);
        g.sample(0, 0);
        std::thread::sleep(Duration::from_millis(5));
        g.sample(100, 50);
        let rate = g.rate_over(10.0);
        assert!((rate - 0.5).abs() < 1e-9, "half the ops were bad: {rate}");
        assert!(g.burn_over(10.0, 0.05) > 9.0, "burn = rate / budget");

        // A tiny window that excludes the burst sees nothing.
        std::thread::sleep(Duration::from_millis(30));
        g.sample(100, 50); // flat sample: no new ops
        assert_eq!(g.rate_over(0.02), 0.0, "quiet window decays to zero");
    }

    #[test]
    fn empty_gauge_reports_zero() {
        let g = BurnGauge::new(5.0);
        assert_eq!(g.rate_over(1.0), 0.0);
        assert_eq!(g.burn_over(1.0, 0.01), 0.0);
    }

    #[test]
    fn alert_record_round_trips_through_json() {
        let c = AlertCenter::new(4);
        c.observe("machine-a", "slo-burn", true, || "mf burn 12x".into());
        let snap = c.snapshot(None);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: Vec<AlertRecord> = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }
}
