//! In-house observability layer for the SEER workspace.
//!
//! Three pieces, all dependency-light and cheap on the hot path:
//!
//! - a [`Registry`] of named metrics — lock-free atomic [`Counter`]s and
//!   [`Gauge`]s plus log-bucketed latency [`Histogram`]s with RAII
//!   [`SpanTimer`]s — snapshotted into a serializable [`RegistrySnapshot`];
//! - a leveled structured event log ([`log_event`], [`tlog!`]) writing
//!   JSON lines to stderr (or `SEER_LOG_FILE`), filtered by the
//!   `SEER_LOG` environment variable;
//! - a Prometheus-text-format renderer ([`render_prometheus`]) so a
//!   scraper can consume any snapshot;
//! - fixed-capacity time-series rings ([`SeriesRing`]) holding windowed
//!   history of any counter/gauge/quantile, rendered as terminal
//!   sparklines ([`render_sparkline`]) or a standalone HTML dashboard
//!   ([`render_dashboard_html`], [`render_fleet_dashboard_html`]);
//! - SLO alerting primitives: a bounded [`AlertCenter`] with
//!   firing/resolved transitions and a multi-window [`BurnGauge`] for
//!   burn-rate health signals;
//! - causal span tracing ([`Tracer`], [`Span`]) into a fixed-capacity
//!   lock-free ring that doubles as a flight recorder
//!   ([`register_flight_recorder`]), with Chrome trace-event export
//!   ([`render_chrome_trace`]) and a span-tree pretty-printer.
//!
//! Metric naming follows Prometheus conventions: `snake_case` names
//! prefixed `seer_`, counters suffixed `_total`, durations in seconds
//! suffixed `_seconds`, and dimensions expressed as labels
//! (`seer_daemon_stage_seconds{stage="engine_apply"}`).
//!
//! Registration is idempotent: asking a registry for an already-registered
//! name + label set returns a handle to the same underlying metric, so
//! components can register their instruments independently.

mod alerts;
mod chrome;
mod log;
mod prometheus;
mod registry;
mod series;
mod tracing;

pub use alerts::{AlertCenter, AlertRecord, AlertTransition, BurnGauge};
pub use chrome::{render_chrome_trace, render_span_tree, write_flight_jsonl};
pub use log::{init_from_env, log_enabled, log_event, set_global_filter, FieldValue, Level};
pub use prometheus::render_prometheus;
pub use registry::{
    BucketSnapshot, Counter, Gauge, Histogram, MetricSnapshot, MetricValue, Registry,
    RegistrySnapshot, SpanTimer,
};
pub use series::{
    render_dashboard_html, render_fleet_dashboard_html, render_sparkline, FleetPanel, SeriesPoints,
    SeriesRing, SeriesSnapshot,
};
pub use tracing::{
    new_trace_id, register_flight_recorder, unix_nanos_of, Span, SpanContext, SpanId, SpanRecord,
    SpanRing, TraceId, Tracer,
};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default registry. Components that are not handed an
/// explicit registry (standalone engines, CLI one-shots) register here;
/// the daemon hands its components a private registry instead so that
/// several daemons in one process (tests) stay isolated.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Structured event log macro: `tlog!(Level::Info, "target", "message",
/// key = value, ...)`. Field values are anything with
/// `Into<FieldValue>` (integers, floats, bools, strings). The filter
/// check is inlined so a disabled target costs one atomic load and a
/// prefix match, with no field evaluation.
#[macro_export]
macro_rules! tlog {
    ($level:expr, $target:expr, $msg:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log_enabled($level, $target) {
            $crate::log_event(
                $level,
                $target,
                $msg,
                &[$((stringify!($k), $crate::FieldValue::from($v))),*],
            );
        }
    };
}
