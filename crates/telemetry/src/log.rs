//! Leveled structured event log: JSON lines to stderr or a file.
//!
//! Filtering is controlled by the `SEER_LOG` environment variable, a
//! comma-separated list of `level` and `target=level` directives, e.g.
//! `SEER_LOG=info`, `SEER_LOG=warn,seer_daemon=debug`. Target directives
//! match by prefix, longest prefix wins (`seer_daemon` covers
//! `seer_daemon::pipeline`). The default level with no `SEER_LOG` is
//! `warn`. `SEER_LOG_FILE=path` redirects output from stderr to a file
//! (appending).

use serde::value::Value;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Very fine-grained tracing.
    Trace,
    /// Diagnostic detail.
    Debug,
    /// Normal operational events.
    Info,
    /// Something surprising but survivable.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            "off" => None,
            _ => None,
        }
    }
}

/// A parsed `SEER_LOG` filter.
#[derive(Debug, Clone)]
struct Filter {
    /// Minimum level with no matching target directive; `None` = off.
    default: Option<Level>,
    /// `(target prefix, minimum level)`; `None` level silences the target.
    targets: Vec<(String, Option<Level>)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut default = Some(Level::Warn);
        let mut targets = Vec::new();
        for directive in spec.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            match directive.split_once('=') {
                Some((target, level)) => {
                    let lv = if level.trim().eq_ignore_ascii_case("off") {
                        None
                    } else {
                        Level::parse(level)
                    };
                    targets.push((target.trim().to_owned(), lv));
                }
                None => {
                    default = if directive.eq_ignore_ascii_case("off") {
                        None
                    } else {
                        Level::parse(directive).or(default)
                    };
                }
            }
        }
        Filter { default, targets }
    }

    fn enabled(&self, level: Level, target: &str) -> bool {
        let mut best: Option<&(String, Option<Level>)> = None;
        for t in &self.targets {
            if target.starts_with(t.0.as_str()) && best.is_none_or(|b| t.0.len() > b.0.len()) {
                best = Some(t);
            }
        }
        let min = match best {
            Some((_, lv)) => *lv,
            None => self.default,
        };
        min.is_some_and(|m| level >= m)
    }
}

enum Sink {
    Stderr,
    File(Mutex<std::fs::File>),
}

struct EventLog {
    filter: Filter,
    sink: Sink,
}

static LOG: OnceLock<EventLog> = OnceLock::new();

fn log() -> &'static EventLog {
    LOG.get_or_init(|| {
        let filter = Filter::parse(&std::env::var("SEER_LOG").unwrap_or_default());
        let sink = match std::env::var("SEER_LOG_FILE") {
            Ok(path) if !path.is_empty() => {
                match std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    Ok(f) => Sink::File(Mutex::new(f)),
                    Err(_) => Sink::Stderr,
                }
            }
            _ => Sink::Stderr,
        };
        EventLog { filter, sink }
    })
}

/// Initializes the log from the environment now instead of lazily on the
/// first event. Optional; useful so startup errors with the log file
/// surface early.
pub fn init_from_env() {
    let _ = log();
}

/// Replaces the global filter, if the log has not been initialized yet.
/// Later calls (and any call after the first event) are ignored — the
/// log is write-once, like the `OnceLock` backing it. Intended for tests
/// and embedders that cannot set `SEER_LOG` before first use.
pub fn set_global_filter(spec: &str) {
    let _ = LOG.set(EventLog {
        filter: Filter::parse(spec),
        sink: Sink::Stderr,
    });
}

/// Whether an event at `level` for `target` would be written.
#[must_use]
pub fn log_enabled(level: Level, target: &str) -> bool {
    log().filter.enabled(level, target)
}

/// A structured field value.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> FieldValue {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::UInt(*v),
            FieldValue::I64(v) => Value::Int(*v),
            FieldValue::F64(v) => Value::Float(*v),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
        }
    }
}

/// Writes one structured event as a JSON line:
/// `{"ts_ms":…,"level":"info","target":"…","msg":"…","fields":{…}}`.
/// Callers normally go through [`crate::tlog!`], which performs the
/// filter check before evaluating fields.
pub fn log_event(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    let l = log();
    if !l.filter.enabled(level, target) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut obj: Vec<(String, Value)> = vec![
        ("ts_ms".to_owned(), Value::UInt(ts_ms)),
        ("level".to_owned(), Value::Str(level.as_str().to_owned())),
        ("target".to_owned(), Value::Str(target.to_owned())),
        ("msg".to_owned(), Value::Str(msg.to_owned())),
    ];
    if !fields.is_empty() {
        obj.push((
            "fields".to_owned(),
            Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.to_json()))
                    .collect(),
            ),
        ));
    }
    let line = match serde_json::to_string(&Value::Object(obj)) {
        Ok(s) => s,
        Err(_) => return,
    };
    match &l.sink {
        Sink::Stderr => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
        Sink::File(f) => {
            if let Ok(mut f) = f.lock() {
                let _ = writeln!(f, "{line}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_warn() {
        let f = Filter::parse("");
        assert!(f.enabled(Level::Warn, "anything"));
        assert!(f.enabled(Level::Error, "anything"));
        assert!(!f.enabled(Level::Info, "anything"));
    }

    #[test]
    fn global_level_directive() {
        let f = Filter::parse("debug");
        assert!(f.enabled(Level::Debug, "x"));
        assert!(!f.enabled(Level::Trace, "x"));
        let off = Filter::parse("off");
        assert!(!off.enabled(Level::Error, "x"));
    }

    #[test]
    fn target_directives_match_by_longest_prefix() {
        let f = Filter::parse("warn,seer_daemon=debug,seer_daemon::wire=off");
        assert!(f.enabled(Level::Debug, "seer_daemon::pipeline"));
        assert!(!f.enabled(Level::Error, "seer_daemon::wire"));
        assert!(
            !f.enabled(Level::Info, "seer_core"),
            "falls back to global warn"
        );
        assert!(f.enabled(Level::Warn, "seer_core"));
    }

    #[test]
    fn malformed_directives_are_ignored() {
        let f = Filter::parse("bogus,,seer_x=nonsense,info");
        assert!(f.enabled(Level::Info, "seer_core"));
        // `seer_x=nonsense` parses as target silenced (unknown level = off).
        assert!(!f.enabled(Level::Error, "seer_x"));
    }
}
