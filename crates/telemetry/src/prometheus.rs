//! Prometheus text exposition format (version 0.0.4) for snapshots.

use crate::registry::{MetricSnapshot, MetricValue, RegistrySnapshot};
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text format: `# HELP` / `# TYPE`
/// headers once per metric name, then one series line per label set;
/// histograms expand into cumulative `_bucket{le="…"}` series plus
/// `_sum` and `_count`.
#[must_use]
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for m in &snap.metrics {
        if last_name != Some(m.name.as_str()) {
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
            let _ = writeln!(out, "# TYPE {} {}", m.name, type_name(&m.value));
            last_name = Some(m.name.as_str());
        }
        render_metric(&mut out, m);
    }
    out
}

fn type_name(v: &MetricValue) -> &'static str {
    match v {
        MetricValue::Counter { .. } => "counter",
        MetricValue::Gauge { .. } => "gauge",
        MetricValue::Histogram { .. } => "histogram",
    }
}

fn render_metric(out: &mut String, m: &MetricSnapshot) {
    match &m.value {
        MetricValue::Counter { total } => {
            let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels, None), total);
        }
        MetricValue::Gauge { value } => {
            let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels, None), value);
        }
        MetricValue::Histogram {
            count,
            sum_seconds,
            buckets,
        } => {
            let mut cumulative = 0u64;
            for b in buckets {
                cumulative += b.count;
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    m.name,
                    label_block(&m.labels, Some(&format_f64(b.le))),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                m.name,
                label_block(&m.labels, Some("+Inf")),
                count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                m.name,
                label_block(&m.labels, None),
                format_f64(*sum_seconds)
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                m.name,
                label_block(&m.labels, None),
                count
            );
        }
    }
}

/// Renders `{k="v",…}` (empty string when there are no labels), with an
/// optional trailing `le` label for histogram buckets.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Formats an f64 the way Prometheus expects: no exponent surprises for
/// the magnitudes we emit, and no trailing `.0` stripping games — Rust's
/// shortest-round-trip `Display` is valid Prometheus number syntax.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // "1.0" rather than "1": conventional for sums.
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn counters_and_gauges_render_one_line_each() {
        let r = Registry::new();
        r.counter("seer_events_total", "Events.").add(12);
        r.gauge("seer_depth", "Depth.").set(-3);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE seer_depth gauge\nseer_depth -3\n"));
        assert!(text.contains("# TYPE seer_events_total counter\nseer_events_total 12\n"));
    }

    #[test]
    fn shared_names_emit_one_header() {
        let r = Registry::new();
        r.counter_with("seer_stage_total", "Stages.", &[("stage", "a")])
            .inc();
        r.counter_with("seer_stage_total", "Stages.", &[("stage", "b")])
            .inc();
        let text = render_prometheus(&r.snapshot());
        assert_eq!(text.matches("# TYPE seer_stage_total counter").count(), 1);
        assert!(text.contains("seer_stage_total{stage=\"a\"} 1"));
        assert!(text.contains("seer_stage_total{stage=\"b\"} 1"));
    }

    /// Golden render for per-tenant series: label order follows
    /// registration order within a series, series order follows the
    /// snapshot's (name, labels) sort, and tenant names containing `"`
    /// and `\` are escaped exactly as the exposition format demands.
    #[test]
    fn golden_render_of_tenant_labels_with_quotes_and_backslashes() {
        let r = Registry::new();
        r.counter_with(
            "seer_daemon_tenant_events_total",
            "Per-tenant events.",
            &[("tenant", "machine\\a"), ("shard", "0")],
        )
        .add(7);
        r.counter_with(
            "seer_daemon_tenant_events_total",
            "Per-tenant events.",
            &[("tenant", "quote\"y"), ("shard", "1")],
        )
        .add(3);
        let text = render_prometheus(&r.snapshot());
        assert_eq!(
            text,
            "# HELP seer_daemon_tenant_events_total Per-tenant events.\n\
             # TYPE seer_daemon_tenant_events_total counter\n\
             seer_daemon_tenant_events_total{tenant=\"machine\\\\a\",shard=\"0\"} 7\n\
             seer_daemon_tenant_events_total{tenant=\"quote\\\"y\",shard=\"1\"} 3\n",
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("seer_weird_total", "W.", &[("path", "a\"b\\c")])
            .inc();
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("{path=\"a\\\"b\\\\c\"}"), "escaped: {text}");
    }
}
