//! Tracing integration tests: golden Chrome trace-event export and the
//! flight-recorder ring under wraparound and concurrent writers.

use seer_telemetry::{render_chrome_trace, SpanRecord, SpanRing, Tracer};
use std::sync::Arc;
use std::time::Duration;

fn record(name: &str, id: u64, parent: Option<u64>, start: u64, dur: u64) -> SpanRecord {
    SpanRecord {
        trace_id: 0xabcd,
        span_id: id,
        parent_id: parent,
        name: name.to_owned(),
        start_unix_nanos: start,
        duration_nanos: dur,
        attrs: Vec::new(),
    }
}

/// The Chrome export is byte-stable: field order is fixed, timestamps are
/// normalized to the earliest span, and parent/child links survive. This
/// is the golden test the ISSUE asks for — any change to the exporter's
/// field ordering or formatting shows up as a diff here.
#[test]
fn golden_chrome_trace_export() {
    let spans = vec![
        record("socket_read", 1, None, 1_000_000_000, 50_000),
        {
            let mut s = record("decode", 2, Some(1), 1_000_050_000, 20_000);
            s.attrs.push(("frame".to_owned(), "events".to_owned()));
            s
        },
        {
            let mut s = record("batcher_flush", 3, Some(2), 1_000_070_000, 500_000);
            s.attrs.push(("events".to_owned(), "128".to_owned()));
            s
        },
        record("engine_apply", 4, Some(3), 1_000_570_000, 2_000_000),
        record("recluster", 5, Some(4), 1_002_570_000, 10_000_000),
        {
            let mut s = record("shard_count", 6, Some(5), 1_002_600_000, 9_000_000);
            s.attrs.push(("shard".to_owned(), "0".to_owned()));
            s
        },
    ];
    let expected = concat!(
        "{\"traceEvents\":[\n",
        "{\"name\":\"socket_read\",\"cat\":\"seer\",\"ph\":\"X\",\"ts\":0.000,\"dur\":50.000,\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":\"000000000000abcd\",\"span_id\":\"0000000000000001\"}},\n",
        "{\"name\":\"decode\",\"cat\":\"seer\",\"ph\":\"X\",\"ts\":50.000,\"dur\":20.000,\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":\"000000000000abcd\",\"span_id\":\"0000000000000002\",\"parent_id\":\"0000000000000001\",\"frame\":\"events\"}},\n",
        "{\"name\":\"batcher_flush\",\"cat\":\"seer\",\"ph\":\"X\",\"ts\":70.000,\"dur\":500.000,\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":\"000000000000abcd\",\"span_id\":\"0000000000000003\",\"parent_id\":\"0000000000000002\",\"events\":\"128\"}},\n",
        "{\"name\":\"engine_apply\",\"cat\":\"seer\",\"ph\":\"X\",\"ts\":570.000,\"dur\":2000.000,\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":\"000000000000abcd\",\"span_id\":\"0000000000000004\",\"parent_id\":\"0000000000000003\"}},\n",
        "{\"name\":\"recluster\",\"cat\":\"seer\",\"ph\":\"X\",\"ts\":2570.000,\"dur\":10000.000,\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":\"000000000000abcd\",\"span_id\":\"0000000000000005\",\"parent_id\":\"0000000000000004\"}},\n",
        "{\"name\":\"shard_count\",\"cat\":\"seer\",\"ph\":\"X\",\"ts\":2600.000,\"dur\":9000.000,\"pid\":1,\"tid\":2,\"args\":{\"trace_id\":\"000000000000abcd\",\"span_id\":\"0000000000000006\",\"parent_id\":\"0000000000000005\",\"shard\":\"0\"}},\n",
        "],\"displayTimeUnit\":\"ms\"}\n",
    )
    // The exporter writes no trailing comma before the closing bracket.
    .replace("}},\n],", "}}\n],");
    assert_eq!(render_chrome_trace(&spans), expected);
}

/// The export is structurally valid JSON (vendored serde_json parses it)
/// and every non-root span's parent exists in the document.
#[test]
fn chrome_export_is_well_formed_json_with_valid_parents() {
    let t = Tracer::new(64, Duration::from_secs(60));
    let mut root = t.root("query");
    root.attr("kind", "hoard \"fresh\"\n"); // exercise escaping
    let child = t.child("engine_answer", root.context());
    let grandchild = t.child("recluster", child.context());
    grandchild.end();
    child.end();
    root.end();
    let spans = t.snapshot();
    let json = render_chrome_trace(&spans);
    let value: serde::Value = serde_json::from_str(&json).expect("well-formed JSON");
    let events = match &value {
        serde::Value::Object(fields) => match fields.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, serde::Value::Array(events))) => events,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        },
        other => panic!("not an object: {other:?}"),
    };
    assert_eq!(events.len(), 3);
    let ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
    for s in &spans {
        if let Some(p) = s.parent_id {
            assert!(ids.contains(&p), "span {} has dangling parent", s.name);
        }
    }
}

/// Wraparound: a ring of capacity N holds exactly the N newest spans.
#[test]
fn ring_wraparound_keeps_newest_spans() {
    let ring = SpanRing::new(8);
    for i in 0..20u64 {
        ring.push(record("op", i + 1, None, i * 1_000, 10));
    }
    let kept = ring.snapshot();
    assert_eq!(kept.len(), 8);
    assert_eq!(ring.recorded(), 20);
    assert_eq!(ring.dropped(), 0, "single writer never contends");
    let ids: Vec<u64> = kept.iter().map(|s| s.span_id).collect();
    assert_eq!(ids, (13..=20).collect::<Vec<u64>>(), "newest 8 retained");
}

/// Concurrent writers: every push either lands in the ring or is counted
/// as dropped — nothing vanishes, nothing blocks, and the ring never
/// holds more than its capacity.
#[test]
fn ring_concurrent_writers_account_for_every_span() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 5_000;
    let ring = Arc::new(SpanRing::new(64));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let ring = Arc::clone(&ring);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_WRITER {
                let id = w * PER_WRITER + i + 1;
                ring.push(record("concurrent", id, None, id, 1));
            }
        }));
    }
    for h in handles {
        h.join().expect("writer thread");
    }
    assert_eq!(ring.recorded() + ring.dropped(), WRITERS * PER_WRITER);
    let kept = ring.snapshot();
    assert!(kept.len() <= 64);
    assert!(!kept.is_empty());
    // Retained spans are real pushes (ids in range), not torn records.
    for s in &kept {
        assert!(s.span_id >= 1 && s.span_id <= WRITERS * PER_WRITER);
        assert_eq!(s.name, "concurrent");
    }
}

/// Tracer-level concurrency: spans recorded from many threads under one
/// tracer all share the ring and the accounting holds.
#[test]
fn tracer_concurrent_spans_share_one_ring() {
    let t = Tracer::new(32, Duration::from_secs(60));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let t = t.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..1_000 {
                let root = t.root("work");
                let child = t.child("step", root.context());
                child.end();
                root.end();
            }
        }));
    }
    for h in handles {
        h.join().expect("thread");
    }
    assert_eq!(t.recorded() + t.dropped(), 4 * 1_000 * 2);
    assert!(t.snapshot().len() <= 32);
}
