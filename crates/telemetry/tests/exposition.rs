//! Black-box tests of the telemetry crate: an exact golden rendering of
//! the Prometheus exposition format, and concurrency of the lock-free
//! instruments under thread hammering.

use seer_telemetry::{render_prometheus, Registry};
use std::sync::Arc;
use std::thread;

/// Every byte of the exposition output is pinned: HELP/TYPE headers once
/// per name, counters and gauges one line per label set, histograms as
/// cumulative buckets plus `+Inf`, `_sum`, and `_count`. Scrapers parse
/// this format strictly, so a formatting regression is a real breakage.
#[test]
fn golden_prometheus_rendering() {
    let r = Registry::new();
    r.counter("seer_demo_events_total", "Events ingested.")
        .add(42);
    r.gauge("seer_demo_queue_depth", "Ingest-queue depth.")
        .set(-7);
    let h = r.histogram_with(
        "seer_demo_stage_seconds",
        "Stage latency.",
        &[("stage", "apply")],
    );
    // 300 ns → the (256, 512] ns bucket; 1 µs → (512, 1024]; 400 s is
    // beyond the last finite bound and lands only in +Inf.
    h.observe_nanos(300);
    h.observe_nanos(1_000);
    h.observe_nanos(400_000_000_000);

    let text = render_prometheus(&r.snapshot());

    let expected_head = "\
# HELP seer_demo_events_total Events ingested.
# TYPE seer_demo_events_total counter
seer_demo_events_total 42
# HELP seer_demo_queue_depth Ingest-queue depth.
# TYPE seer_demo_queue_depth gauge
seer_demo_queue_depth -7
# HELP seer_demo_stage_seconds Stage latency.
# TYPE seer_demo_stage_seconds histogram
";
    assert!(
        text.starts_with(expected_head),
        "header and scalar lines:\n{text}"
    );

    // Cumulative buckets: 1 at the 512 ns bound, 2 from 1024 ns on, and
    // the overflow observation appears only at +Inf.
    assert!(text.contains("seer_demo_stage_seconds_bucket{stage=\"apply\",le=\"0.000000512\"} 1\n"));
    assert!(text.contains("seer_demo_stage_seconds_bucket{stage=\"apply\",le=\"0.000001024\"} 2\n"));
    let last_finite = "seer_demo_stage_seconds_bucket{stage=\"apply\",le=\"274.877906944\"} 2\n";
    assert!(
        text.contains(last_finite),
        "overflow excluded from finite buckets:\n{text}"
    );
    let expected_tail = "\
seer_demo_stage_seconds_bucket{stage=\"apply\",le=\"+Inf\"} 3
seer_demo_stage_seconds_sum{stage=\"apply\"} 400.0000013
seer_demo_stage_seconds_count{stage=\"apply\"} 3
";
    assert!(text.ends_with(expected_tail), "histogram tail:\n{text}");

    // Buckets are cumulative: counts never decrease down the page.
    let mut last = 0u64;
    for line in text.lines().filter(|l| l.contains("_bucket{")) {
        let v: u64 = line
            .rsplit(' ')
            .next()
            .expect("value")
            .parse()
            .expect("integer");
        assert!(v >= last, "non-monotonic bucket line: {line}");
        last = v;
    }
}

/// Eight threads hammering one counter, one gauge, and one histogram
/// must lose nothing: the counter total is exact, the high-water mark is
/// the true maximum, and the histogram count equals the observations.
#[test]
fn concurrent_updates_are_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;

    let r = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                // Same (name, labels) from every thread: registration is
                // idempotent, so all threads share one atomic.
                let c = r.counter("seer_hammer_total", "Hammered counter.");
                let g = r.gauge("seer_hammer_peak", "High-water mark.");
                let h = r.histogram("seer_hammer_seconds", "Hammered histogram.");
                for i in 0..PER_THREAD {
                    c.inc();
                    g.set_max((t * PER_THREAD + i) as i64);
                    h.observe_nanos(i + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panics");
    }

    let snap = r.snapshot();
    assert_eq!(
        snap.counter("seer_hammer_total"),
        Some(THREADS * PER_THREAD),
        "every increment counted exactly once"
    );
    assert_eq!(
        snap.gauge("seer_hammer_peak"),
        Some((THREADS * PER_THREAD - 1) as i64),
        "set_max converges on the true maximum"
    );
    match &snap.find("seer_hammer_seconds").expect("registered").value {
        seer_telemetry::MetricValue::Histogram { count, buckets, .. } => {
            assert_eq!(*count, THREADS * PER_THREAD);
            let in_buckets: u64 = buckets.iter().map(|b| b.count).sum();
            assert_eq!(
                in_buckets, *count,
                "no observation fell outside the finite range"
            );
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}
