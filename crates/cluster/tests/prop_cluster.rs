//! Property tests for the clustering algorithm's invariants.

use proptest::prelude::*;
use seer_cluster::{cluster_from_counts, ClusterConfig, UnionFind};
use seer_trace::FileId;

fn pairs_strategy(files: u32, len: usize) -> impl Strategy<Value = Vec<(FileId, FileId, f64)>> {
    prop::collection::vec((0..files, 0..files, 0.0f64..8.0), 0..len).prop_map(|v| {
        v.into_iter()
            .filter(|(a, b, _)| a != b)
            .map(|(a, b, c)| (FileId(a), FileId(b), c))
            .collect()
    })
}

proptest! {
    /// Every file in the universe appears in at least one cluster, and
    /// membership indexes are consistent with member lists.
    #[test]
    fn coverage_and_index_consistency(pairs in pairs_strategy(20, 40)) {
        let universe: Vec<FileId> = (0..20).map(FileId).collect();
        let config = ClusterConfig::default();
        let r = cluster_from_counts(&pairs, &universe, &config);
        for &f in &universe {
            prop_assert!(!r.clusters_of(f).is_empty(), "{f:?} lost");
            for &cid in r.clusters_of(f) {
                prop_assert!(r.cluster(cid).contains(f));
            }
        }
        for (i, c) in r.clusters.iter().enumerate() {
            for &f in &c.files {
                prop_assert!(
                    r.clusters_of(f).iter().any(|cid| cid.index() == i),
                    "member list and index disagree for {f:?}"
                );
            }
        }
    }

    /// Phase one respects union-find semantics: any two files connected by
    /// a chain of ≥ kn pairs share a cluster.
    #[test]
    fn strong_pairs_imply_shared_cluster(pairs in pairs_strategy(15, 30)) {
        let config = ClusterConfig::default();
        let r = cluster_from_counts(&pairs, &[], &config);
        let mut uf = UnionFind::new();
        for &(a, b, c) in &pairs {
            if c >= config.kn {
                uf.union(a, b);
            }
        }
        for &(a, b, c) in &pairs {
            if c >= config.kn {
                let ca = r.clusters_of(a);
                let cb = r.clusters_of(b);
                prop_assert!(
                    ca.iter().any(|x| cb.contains(x)),
                    "{a:?} and {b:?} combined but share no cluster"
                );
            }
        }
    }

    /// Weak pairs (below kf) in isolation never connect two files.
    #[test]
    fn weak_pairs_do_nothing(n in 2u32..10) {
        let config = ClusterConfig::default();
        let pairs: Vec<_> = (1..n)
            .map(|i| (FileId(0), FileId(i), config.kf - 0.5))
            .collect();
        let universe: Vec<FileId> = (0..n).map(FileId).collect();
        let r = cluster_from_counts(&pairs, &universe, &config);
        prop_assert_eq!(r.len(), n as usize, "all singletons");
    }

    /// Overlap insertions never *merge* clusters: the number of clusters
    /// is determined by phase one (plus dedup of identical member sets).
    #[test]
    fn overlap_never_reduces_below_phase_one_groups(pairs in pairs_strategy(12, 25)) {
        let config = ClusterConfig::default();
        let r = cluster_from_counts(&pairs, &[], &config);
        let mut uf = UnionFind::new();
        for &(a, b, c) in &pairs {
            uf.insert(a);
            uf.insert(b);
            if c >= config.kn {
                uf.union(a, b);
            }
        }
        let phase_one = uf.groups().len();
        prop_assert!(
            r.len() <= phase_one,
            "clusters {} exceed phase-one groups {phase_one}",
            r.len()
        );
    }
}
