//! Union-find over arbitrary [`FileId`]s, used by clustering phase one.

use seer_trace::FileId;
use std::collections::HashMap;

/// Disjoint-set forest with path compression and union by size.
#[derive(Debug, Default, Clone)]
pub struct UnionFind {
    parent: HashMap<FileId, FileId>,
    size: HashMap<FileId, u32>,
}

impl UnionFind {
    /// Creates an empty forest.
    #[must_use]
    pub fn new() -> UnionFind {
        UnionFind::default()
    }

    /// Ensures `x` is present as (at least) a singleton set.
    pub fn insert(&mut self, x: FileId) {
        self.parent.entry(x).or_insert(x);
        self.size.entry(x).or_insert(1);
    }

    /// Finds the representative of `x`, inserting it if new.
    pub fn find(&mut self, x: FileId) -> FileId {
        self.insert(x);
        let mut root = x;
        while self.parent[&root] != root {
            root = self.parent[&root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[&cur] != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`.
    pub fn union(&mut self, a: FileId, b: FileId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[&ra] >= self.size[&rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent.insert(small, big);
        let total = self.size[&ra] + self.size[&rb];
        self.size.insert(big, total);
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn same(&mut self, a: FileId, b: FileId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all inserted elements by representative.
    pub fn groups(&mut self) -> Vec<Vec<FileId>> {
        let members: Vec<FileId> = self.parent.keys().copied().collect();
        let mut by_root: HashMap<FileId, Vec<FileId>> = HashMap::new();
        for m in members {
            let r = self.find(m);
            by_root.entry(r).or_default().push(m);
        }
        let mut out: Vec<Vec<FileId>> = by_root.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new();
        uf.union(FileId(1), FileId(2));
        uf.union(FileId(2), FileId(3));
        assert!(uf.same(FileId(1), FileId(3)));
        assert!(!uf.same(FileId(1), FileId(4)));
    }

    #[test]
    fn groups_partition_elements() {
        let mut uf = UnionFind::new();
        uf.union(FileId(1), FileId(2));
        uf.insert(FileId(5));
        uf.union(FileId(3), FileId(4));
        let groups = uf.groups();
        assert_eq!(groups.len(), 3);
        assert!(groups.contains(&vec![FileId(1), FileId(2)]));
        assert!(groups.contains(&vec![FileId(3), FileId(4)]));
        assert!(groups.contains(&vec![FileId(5)]));
    }

    #[test]
    fn transitive_merge_through_chain() {
        let mut uf = UnionFind::new();
        for i in 0..100 {
            uf.union(FileId(i), FileId(i + 1));
        }
        assert!(uf.same(FileId(0), FileId(100)));
        assert_eq!(uf.groups().len(), 1);
    }

    #[test]
    fn self_union_is_noop() {
        let mut uf = UnionFind::new();
        uf.union(FileId(7), FileId(7));
        assert_eq!(uf.groups(), vec![vec![FileId(7)]]);
    }
}
