//! External investigator relations (§3.2, §3.3.3).

use seer_trace::FileId;
use serde::{Deserialize, Serialize};

/// A group of related files reported by an external investigator, "together
/// with an investigator-chosen weight indicating the strength of the
/// relation" (§3.2).
///
/// The strength is *added* to the shared-neighbor count of every pair in
/// the group, so a sufficiently strong relation forces clustering
/// regardless of observed distances (§3.3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalRelation {
    /// The related files (order is irrelevant; duplicates are ignored).
    pub files: Vec<FileId>,
    /// Relation strength, in shared-neighbor units.
    pub strength: f64,
}

impl ExternalRelation {
    /// Creates a relation over `files` with the given strength.
    #[must_use]
    pub fn new(files: Vec<FileId>, strength: f64) -> ExternalRelation {
        ExternalRelation { files, strength }
    }

    /// All unordered pairs within the relation.
    pub fn pairs(&self) -> impl Iterator<Item = (FileId, FileId)> + '_ {
        self.files
            .iter()
            .enumerate()
            .flat_map(move |(i, &a)| self.files[i + 1..].iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_enumerates_unordered_pairs() {
        let r = ExternalRelation::new(vec![FileId(1), FileId(2), FileId(3)], 5.0);
        let pairs: Vec<_> = r.pairs().collect();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(FileId(1), FileId(2))));
        assert!(pairs.contains(&(FileId(1), FileId(3))));
        assert!(pairs.contains(&(FileId(2), FileId(3))));
    }

    #[test]
    fn duplicate_files_do_not_self_pair() {
        let r = ExternalRelation::new(vec![FileId(1), FileId(1)], 1.0);
        assert_eq!(r.pairs().count(), 0);
    }

    #[test]
    fn empty_and_singleton_relations_have_no_pairs() {
        assert_eq!(ExternalRelation::new(vec![], 1.0).pairs().count(), 0);
        assert_eq!(
            ExternalRelation::new(vec![FileId(1)], 1.0).pairs().count(),
            0
        );
    }
}
