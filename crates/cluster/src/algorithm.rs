//! The two-phase combine/overlap clustering algorithm (§3.3.2, §3.3.3).

use crate::config::ClusterConfig;
use crate::relation::ExternalRelation;
use crate::result::Clustering;
use crate::shared::SharedNeighborCounter;
use crate::unionfind::UnionFind;
use seer_distance::NeighborTable;
use seer_trace::{FileId, PathTable};
use std::collections::{HashMap, HashSet};

/// Clusters from explicit candidate pairs with precomputed (already
/// adjusted) shared-neighbor counts.
///
/// This is the algorithm core used by [`cluster_files`]; it is public so
/// tests and benches can drive it with literal inputs such as the paper's
/// Table 2 example.
///
/// Phase one combines the clusters of every pair with `count ≥ kn`. Phase
/// two inserts the files of every pair with `kf ≤ count < kn` into each
/// other's clusters without combining them. `universe` supplies the files
/// that should appear even if no pair mentions them (singletons).
#[must_use]
pub fn cluster_from_counts(
    pairs: &[(FileId, FileId, f64)],
    universe: &[FileId],
    config: &ClusterConfig,
) -> Clustering {
    let mut uf = UnionFind::new();
    for &f in universe {
        uf.insert(f);
    }
    for &(a, b, _) in pairs {
        uf.insert(a);
        uf.insert(b);
    }
    // Phase one: combine.
    for &(a, b, count) in pairs {
        if count >= config.kn {
            uf.union(a, b);
        }
    }
    // Materialize phase-one groups.
    let groups = uf.groups();
    let mut members: Vec<Vec<FileId>> = groups;
    let mut group_of: HashMap<FileId, usize> = HashMap::new();
    for (i, g) in members.iter().enumerate() {
        for &f in g {
            group_of.insert(f, i);
        }
    }
    // Phase two: overlap. Each file of a mid-strength pair joins the other
    // file's cluster, but the clusters stay distinct.
    for &(a, b, count) in pairs {
        if count >= config.kf && count < config.kn {
            let (Some(&ga), Some(&gb)) = (group_of.get(&a), group_of.get(&b)) else {
                continue;
            };
            if ga != gb {
                members[gb].push(a);
                members[ga].push(b);
            }
        }
    }
    if !config.include_singletons {
        members.retain(|m| m.len() > 1);
    }
    Clustering::from_members(members)
}

/// Full clustering pipeline: shared-neighbor counts from the distance
/// table, adjusted by directory distance and external relations (§3.3.3),
/// then the two-phase algorithm.
#[must_use]
pub fn cluster_files(
    table: &NeighborTable,
    paths: &PathTable,
    relations: &[ExternalRelation],
    config: &ClusterConfig,
) -> Clustering {
    cluster_files_excluding(table, paths, relations, &HashSet::new(), config)
}

/// [`cluster_files`] with an exclusion set: files in `exclude`
/// (frequently-referenced, critical — the always-hoard set) take no part
/// in clustering (§4.2).
#[must_use]
pub fn cluster_files_excluding(
    table: &NeighborTable,
    paths: &PathTable,
    relations: &[ExternalRelation],
    exclude: &HashSet<FileId>,
    config: &ClusterConfig,
) -> Clustering {
    let counter = SharedNeighborCounter::from_table_excluding(table, exclude);
    let mut counts: HashMap<(FileId, FileId), f64> = HashMap::new();
    for (a, b) in counter.candidate_pairs() {
        let mut count = f64::from(counter.shared(a, b));
        if let Some(dd) = paths.directory_distance(a, b) {
            // Widely-separated directories argue against clustering
            // (§3.3.3: subtracted from the shared-neighbor count).
            count -= config.directory_weight * f64::from(dd);
        }
        counts.insert((a, b), count);
    }
    // Investigator relations are tested regardless of whether a semantic
    // distance was independently stored (§3.3.3).
    for rel in relations {
        for (a, b) in rel.pairs() {
            let base = counts.get(&(a, b)).copied().unwrap_or_else(|| {
                let mut c = f64::from(counter.shared(a, b));
                if let Some(dd) = paths.directory_distance(a, b) {
                    c -= config.directory_weight * f64::from(dd);
                }
                c
            });
            let adjusted = base + rel.strength;
            // A sufficiently strong relation forces combination outright.
            let forced = rel.strength >= config.force_strength;
            counts.insert((a, b), if forced { f64::INFINITY } else { adjusted });
        }
    }
    let pairs: Vec<(FileId, FileId, f64)> =
        counts.into_iter().map(|((a, b), c)| (a, b, c)).collect();
    let universe = counter.all_files();
    cluster_from_counts(&pairs, &universe, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kn: f64, kf: f64) -> ClusterConfig {
        ClusterConfig {
            kn,
            kf,
            ..ClusterConfig::default()
        }
    }

    const KN: f64 = 4.0;
    const KF: f64 = 2.0;

    fn fid(c: char) -> FileId {
        FileId(c as u32 - 'A' as u32)
    }

    fn files(cluster: &crate::result::Cluster) -> String {
        cluster
            .files
            .iter()
            .map(|f| char::from(b'A' + f.0 as u8))
            .collect()
    }

    /// Table 1: the three regimes of the clustering rule.
    #[test]
    fn table1_regimes() {
        let c = cfg(KN, KF);
        let (a, b) = (FileId(0), FileId(1));
        // x ≥ kn: combined into one cluster.
        let r = cluster_from_counts(&[(a, b, KN)], &[], &c);
        assert_eq!(r.len(), 1);
        assert_eq!(r.clusters[0].files, vec![a, b]);
        // kf ≤ x < kn: inserted into each other's clusters, not combined.
        // Give each file its own companion so the two clusters remain
        // observably distinct after the mutual insertion.
        let (x, y) = (FileId(10), FileId(11));
        let r = cluster_from_counts(&[(a, x, KN), (b, y, KN), (a, b, KF)], &[], &c);
        assert_eq!(r.len(), 2, "two distinct clusters remain");
        assert!(r.clusters.iter().all(|cl| cl.contains(a) && cl.contains(b)));
        assert!(r
            .clusters
            .iter()
            .any(|cl| cl.contains(x) && !cl.contains(y)));
        // x < kf: no action.
        let r = cluster_from_counts(&[(a, b, KF - 1.0)], &[], &c);
        assert_eq!(r.len(), 2);
        assert!(r.clusters.iter().all(|cl| cl.len() == 1));
    }

    /// The paper's Table 2 worked example (§3.3.2): seven files whose
    /// final clusters are {A,B,C,D} and {C,D,E,F,G}.
    #[test]
    fn table2_worked_example() {
        let pairs = [
            (fid('A'), fid('B'), KN),
            (fid('A'), fid('C'), KF),
            (fid('B'), fid('C'), KN),
            (fid('C'), fid('D'), KF),
            (fid('D'), fid('E'), KN),
            (fid('F'), fid('G'), KN),
            (fid('G'), fid('D'), KN),
        ];
        let universe: Vec<FileId> = (0..7).map(FileId).collect();
        let r = cluster_from_counts(&pairs, &universe, &cfg(KN, KF));
        let mut names: Vec<String> = r.clusters.iter().map(files).collect();
        names.sort();
        assert_eq!(names, vec!["ABCD".to_owned(), "CDEFG".to_owned()]);
        // C and D belong to both projects; A only to the first.
        assert_eq!(r.clusters_of(fid('C')).len(), 2);
        assert_eq!(r.clusters_of(fid('D')).len(), 2);
        assert_eq!(r.clusters_of(fid('A')).len(), 1);
    }

    /// Phase one is transitive: A~B and B~C puts A and C together even
    /// with no direct relationship (the example's first step).
    #[test]
    fn phase_one_transitivity() {
        let pairs = [(fid('A'), fid('B'), KN), (fid('B'), fid('C'), KN)];
        let r = cluster_from_counts(&pairs, &[], &cfg(KN, KF));
        assert_eq!(r.len(), 1);
        assert_eq!(files(&r.clusters[0]), "ABC");
    }

    /// Overlap pairs already in the same cluster take no further action.
    #[test]
    fn overlap_within_one_cluster_is_noop() {
        let pairs = [
            (fid('A'), fid('B'), KN),
            (fid('B'), fid('C'), KN),
            (fid('A'), fid('C'), KF), // Same cluster already.
        ];
        let r = cluster_from_counts(&pairs, &[], &cfg(KN, KF));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn singletons_controlled_by_config() {
        let pairs = [(fid('A'), fid('B'), KN)];
        let universe = [fid('A'), fid('B'), fid('Z')];
        let with = cluster_from_counts(&pairs, &universe, &cfg(KN, KF));
        assert_eq!(with.len(), 2, "AB cluster plus singleton Z");
        let without = cluster_from_counts(
            &pairs,
            &universe,
            &ClusterConfig {
                include_singletons: false,
                ..cfg(KN, KF)
            },
        );
        assert_eq!(without.len(), 1);
    }

    #[test]
    fn cluster_files_uses_shared_neighbors() {
        use seer_distance::{DistanceConfig, NeighborTable};
        // Build a table where files 0 and 1 share neighbors 2..7, by
        // observing small distances from each to the common neighbors.
        let dc = DistanceConfig::default();
        let mut t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        for i in 0..10u32 {
            paths.intern(&format!("/proj/f{i}"));
        }
        for target in 2..8u32 {
            t.observe(FileId(0), FileId(target), 1.0);
            t.observe(FileId(1), FileId(target), 1.0);
        }
        // 0 must list 1 (or vice versa) for the pair to be examined.
        t.observe(FileId(0), FileId(1), 1.0);
        let r = cluster_files(&t, &paths, &[], &ClusterConfig::default());
        let c0 = r.clusters_of(FileId(0));
        let c1 = r.clusters_of(FileId(1));
        assert!(
            !c0.is_empty() && c0 == c1,
            "0 and 1 share 6 ≥ kn neighbors: same cluster"
        );
    }

    #[test]
    fn directory_distance_discourages_clustering() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let mut t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        // Files in wildly different trees.
        let a = paths.intern("/home/u/projects/alpha/src/deep/a.c");
        let b = paths.intern("/opt/data/archive/old/backup/b.c");
        assert_eq!(a, FileId(0));
        assert_eq!(b, FileId(1));
        for i in 2..8u32 {
            paths.intern(&format!("/x/f{i}"));
            t.observe(FileId(0), FileId(i), 1.0);
            t.observe(FileId(1), FileId(i), 1.0);
        }
        t.observe(FileId(0), FileId(1), 1.0);
        // Without directory weighting they share 6 ≥ kn neighbors…
        let loose = ClusterConfig {
            directory_weight: 0.0,
            ..ClusterConfig::default()
        };
        let r = cluster_files(&t, &paths, &[], &loose);
        assert_eq!(r.clusters_of(FileId(0)), r.clusters_of(FileId(1)));
        // …but a strong directory weight keeps the distant trees apart.
        let strict = ClusterConfig {
            directory_weight: 1.0,
            ..ClusterConfig::default()
        };
        let r = cluster_files(&t, &paths, &[], &strict);
        assert_ne!(r.clusters_of(FileId(0)), r.clusters_of(FileId(1)));
    }

    #[test]
    fn investigator_relation_bridges_unseen_pairs() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        let a = paths.intern("/p/a.c");
        let b = paths.intern("/p/a.h");
        // No distance data at all, but an investigator knows better.
        let rel = ExternalRelation::new(vec![a, b], 10.0);
        let r = cluster_files(&t, &paths, &[rel], &ClusterConfig::default());
        assert_eq!(r.clusters_of(a), r.clusters_of(b));
        assert!(!r.clusters_of(a).is_empty());
    }

    #[test]
    fn forced_relation_overrides_everything() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        // Enormous directory distance would normally keep these apart.
        let a = paths.intern("/a/b/c/d/e/f/g/x.c");
        let b = paths.intern("/z/y/w/v/u/t/s/y.c");
        let rel = ExternalRelation::new(vec![a, b], 1000.0);
        let config = ClusterConfig {
            directory_weight: 50.0,
            ..ClusterConfig::default()
        };
        let r = cluster_files(&t, &paths, &[rel], &config);
        assert_eq!(
            r.clusters_of(a),
            r.clusters_of(b),
            "forced cluster (§3.3.3)"
        );
    }
}
