//! The two-phase combine/overlap clustering algorithm (§3.3.2, §3.3.3).

use crate::config::ClusterConfig;
use crate::relation::ExternalRelation;
use crate::result::Clustering;
use crate::shared::SharedNeighborCounter;
use crate::unionfind::UnionFind;
use seer_distance::{ClusterView, NeighborTable, TableDirty};
use seer_trace::{FileId, PathTable};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Pre-relation adjusted pair counts carried between consecutive
/// reclusterings, plus the context they were computed under.
///
/// [`cluster_view_incremental`] reuses the cached counts when the
/// exclusion set and configuration still match and the caller supplies
/// the rows whose neighbor membership changed since the cache was built;
/// only pairs touching a dirty row are then recounted. The cache holds
/// *raw* adjusted counts — investigator relations are overlaid per run
/// and never persisted, so a relation added or removed between runs
/// cannot poison the baseline.
#[derive(Debug, Default, Clone)]
pub struct PairCountCache {
    counts: HashMap<(FileId, FileId), f64>,
    exclude: Vec<FileId>,
    config: ClusterConfig,
}

impl PairCountCache {
    /// Directed pairs currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the cache holds no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Clusters from explicit candidate pairs with precomputed (already
/// adjusted) shared-neighbor counts.
///
/// This is the algorithm core used by [`cluster_files`]; it is public so
/// tests and benches can drive it with literal inputs such as the paper's
/// Table 2 example.
///
/// Phase one combines the clusters of every pair with `count ≥ kn`. Phase
/// two inserts the files of every pair with `kf ≤ count < kn` into each
/// other's clusters without combining them. `universe` supplies the files
/// that should appear even if no pair mentions them (singletons).
#[must_use]
pub fn cluster_from_counts(
    pairs: &[(FileId, FileId, f64)],
    universe: &[FileId],
    config: &ClusterConfig,
) -> Clustering {
    let mut uf = UnionFind::new();
    for &f in universe {
        uf.insert(f);
    }
    for &(a, b, _) in pairs {
        uf.insert(a);
        uf.insert(b);
    }
    // Phase one: combine.
    for &(a, b, count) in pairs {
        if count >= config.kn {
            uf.union(a, b);
        }
    }
    // Materialize phase-one groups.
    let groups = uf.groups();
    let mut members: Vec<Vec<FileId>> = groups;
    let mut group_of: HashMap<FileId, usize> = HashMap::new();
    for (i, g) in members.iter().enumerate() {
        for &f in g {
            group_of.insert(f, i);
        }
    }
    // Phase two: overlap. Each file of a mid-strength pair joins the other
    // file's cluster, but the clusters stay distinct. Two mid-strength
    // pairs sharing a file — (a,b) and (a,c) with b, c in one phase-one
    // group — would insert `a` into that group twice; `inserted` keeps
    // each membership unique.
    let mut inserted: HashSet<(usize, FileId)> = HashSet::new();
    for &(a, b, count) in pairs {
        if count >= config.kf && count < config.kn {
            let (Some(&ga), Some(&gb)) = (group_of.get(&a), group_of.get(&b)) else {
                continue;
            };
            if ga != gb {
                if inserted.insert((gb, a)) {
                    members[gb].push(a);
                }
                if inserted.insert((ga, b)) {
                    members[ga].push(b);
                }
            }
        }
    }
    if !config.include_singletons {
        members.retain(|m| m.len() > 1);
    }
    Clustering::from_members(members)
}

/// Full clustering pipeline: shared-neighbor counts from the distance
/// table, adjusted by directory distance and external relations (§3.3.3),
/// then the two-phase algorithm.
#[must_use]
pub fn cluster_files(
    table: &NeighborTable,
    paths: &PathTable,
    relations: &[ExternalRelation],
    config: &ClusterConfig,
) -> Clustering {
    cluster_files_excluding(table, paths, relations, &HashSet::new(), config)
}

/// [`cluster_files`] with an exclusion set: files in `exclude`
/// (frequently-referenced, critical — the always-hoard set) take no part
/// in clustering (§4.2).
#[must_use]
pub fn cluster_files_excluding(
    table: &NeighborTable,
    paths: &PathTable,
    relations: &[ExternalRelation],
    exclude: &HashSet<FileId>,
    config: &ClusterConfig,
) -> Clustering {
    cluster_view_excluding(&table.cluster_view(), paths, relations, exclude, config, 1).clustering
}

/// Outcome of one clustering computation: the assignment plus the wall
/// time each count-phase shard spent, for telemetry.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// The computed project assignment.
    pub clustering: Clustering,
    /// Wall time of each shared-neighbor counting shard (one entry per
    /// worker thread actually used).
    pub shard_count_seconds: Vec<Duration>,
    /// When each shard started, relative to entering the clustering
    /// computation — with [`ClusterRun::shard_count_seconds`], enough to
    /// place every shard on a trace timeline.
    pub shard_start_offsets: Vec<Duration>,
    /// Whether the counting phase reused a [`PairCountCache`] and only
    /// recounted dirty pairs (as opposed to a full recount).
    pub incremental: bool,
}

/// Full clustering pipeline over a frozen [`ClusterView`], with the
/// shared-neighbor counting phase sharded across `threads` worker
/// threads.
///
/// Candidate pairs are directed — pair `(a, b)` originates from `a`'s
/// neighbor row and nowhere else — so partitioning the rows partitions
/// the pairs, per-shard results merge without collisions, and the merged
/// pair set is *identical* to the serial one. The merged pairs are then
/// sorted before the combine/overlap phases, making the resulting
/// [`Clustering`] bit-identical regardless of `threads`.
#[must_use]
pub fn cluster_view_excluding(
    view: &ClusterView,
    paths: &PathTable,
    relations: &[ExternalRelation],
    exclude: &HashSet<FileId>,
    config: &ClusterConfig,
    threads: usize,
) -> ClusterRun {
    cluster_view_incremental(
        view, paths, relations, exclude, config, threads, None, &mut None,
    )
}

/// [`cluster_view_excluding`] with incremental shared-neighbor
/// maintenance across consecutive runs.
///
/// `cache` carries the pre-relation pair counts from the previous call;
/// `dirty` lists the rows whose neighbor membership changed since that
/// call (from [`seer_distance::NeighborTable::take_dirty`], drained at
/// the same moment `view` was captured). When the cache is valid — same
/// configuration, no structural change (snapshot restore) — only pairs
/// touching a dirty row are recounted: a dirty *first* endpoint
/// invalidates its whole row (pairs may have appeared or vanished), a
/// dirty *second* endpoint keeps the pair but refreshes its count.
/// Exclusion-set changes fold into the delta (the flipped files plus
/// every row whose raw targets mention one); file deaths arrive
/// pre-folded the same way from the table's purge path. Everything else
/// falls back to the sharded full recount.
///
/// Either way the result is **bit-identical** to
/// [`cluster_view_excluding`] on the same view: unchanged pairs reuse a
/// count that identical inputs would reproduce exactly, and the sorted
/// pair order into the combine/overlap phases is the same. On return
/// `cache` holds the baseline for the next call.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn cluster_view_incremental(
    view: &ClusterView,
    paths: &PathTable,
    relations: &[ExternalRelation],
    exclude: &HashSet<FileId>,
    config: &ClusterConfig,
    threads: usize,
    dirty: Option<&TableDirty>,
    cache: &mut Option<PairCountCache>,
) -> ClusterRun {
    let counter = SharedNeighborCounter::from_view_excluding(view, exclude);
    let mut exclude_sorted: Vec<FileId> = exclude.iter().copied().collect();
    exclude_sorted.sort_unstable();
    let reusable = matches!(
        (dirty, cache.as_ref()),
        (Some(d), Some(c)) if !d.structural && c.config == *config
    );
    let (counts, shard_count_seconds, shard_start_offsets, incremental) = if reusable {
        let d = dirty.expect("reusable implies dirty");
        let cached = cache.take().expect("reusable implies cache");
        let mut counts = cached.counts;
        let started = Instant::now();
        let mut dirty_rows: HashSet<FileId> = d.rows.iter().copied().collect();
        // An exclusion-set change (§4.2 frequency threshold crossings) is
        // itself a precise row delta: the files whose excluded status
        // flipped, plus every row whose raw targets mention one — those
        // are exactly the neighbor sets whose membership moves.
        let (old, new) = (&cached.exclude, &exclude_sorted);
        let (mut i, mut j) = (0usize, 0usize);
        let mut flipped: Vec<FileId> = Vec::new();
        while i < old.len() && j < new.len() {
            match old[i].cmp(&new[j]) {
                std::cmp::Ordering::Less => {
                    flipped.push(old[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    flipped.push(new[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        flipped.extend_from_slice(&old[i..]);
        flipped.extend_from_slice(&new[j..]);
        if !flipped.is_empty() {
            dirty_rows.extend(flipped.iter().copied());
            for (f, targets) in view.rows() {
                if targets.iter().any(|t| flipped.binary_search(t).is_ok()) {
                    dirty_rows.insert(*f);
                }
            }
        }
        // A dirty first endpoint invalidates the whole row: drop its
        // pairs and recount the row from scratch below.
        counts.retain(|&(a, _), _| !dirty_rows.contains(&a));
        // A dirty second endpoint leaves the pair in place (the first
        // row's membership is unchanged) but moves its shared count.
        let stale: Vec<(FileId, FileId)> = counts
            .keys()
            .filter(|&&(_, b)| dirty_rows.contains(&b))
            .copied()
            .collect();
        for (a, b) in stale {
            counts.insert((a, b), adjusted_count(&counter, paths, config, a, b));
        }
        let mut local = Vec::new();
        for &a in &dirty_rows {
            count_row(&counter, paths, config, a, &mut local);
        }
        counts.extend(local);
        (counts, vec![started.elapsed()], vec![Duration::ZERO], true)
    } else {
        let (counts, secs, offsets) = count_pairs_sharded(&counter, paths, config, threads);
        (counts, secs, offsets, false)
    };
    // Investigator relations are tested regardless of whether a semantic
    // distance was independently stored (§3.3.3). They overlay the raw
    // counts rather than mutating them, so the cached baseline stays
    // relation-free; chained relations on one pair compound through the
    // overlay exactly as sequential inserts would.
    let mut overlay: HashMap<(FileId, FileId), f64> = HashMap::new();
    for rel in relations {
        for (a, b) in rel.pairs() {
            let base = overlay
                .get(&(a, b))
                .or_else(|| counts.get(&(a, b)))
                .copied()
                .unwrap_or_else(|| adjusted_count(&counter, paths, config, a, b));
            let adjusted = base + rel.strength;
            // A sufficiently strong relation forces combination outright.
            let forced = rel.strength >= config.force_strength;
            overlay.insert((a, b), if forced { f64::INFINITY } else { adjusted });
        }
    }
    let mut pairs: Vec<(FileId, FileId, f64)> = counts
        .iter()
        .map(|(&(a, b), &c)| (a, b, overlay.get(&(a, b)).copied().unwrap_or(c)))
        .collect();
    for (&(a, b), &c) in &overlay {
        if !counts.contains_key(&(a, b)) {
            pairs.push((a, b, c));
        }
    }
    // Deterministic order into the combine/overlap phases: the serial and
    // every parallel schedule see the same sequence.
    pairs.sort_unstable_by_key(|&(a, b, _)| (a, b));
    let universe = counter.all_files();
    *cache = Some(PairCountCache {
        counts,
        exclude: exclude_sorted,
        config: *config,
    });
    ClusterRun {
        clustering: cluster_from_counts(&pairs, &universe, config),
        shard_count_seconds,
        shard_start_offsets,
        incremental,
    }
}

/// Shared-neighbor count of `(a, b)`, adjusted by weighted directory
/// distance (§3.3.3: widely-separated directories argue against
/// clustering, subtracted from the shared-neighbor count).
fn adjusted_count(
    counter: &SharedNeighborCounter,
    paths: &PathTable,
    config: &ClusterConfig,
    a: FileId,
    b: FileId,
) -> f64 {
    let mut count = f64::from(counter.shared(a, b));
    if let Some(dd) = paths.directory_distance(a, b) {
        count -= config.directory_weight * f64::from(dd);
    }
    count
}

/// Counts every directed candidate pair of one row into `out`.
fn count_row(
    counter: &SharedNeighborCounter,
    paths: &PathTable,
    config: &ClusterConfig,
    a: FileId,
    out: &mut Vec<((FileId, FileId), f64)>,
) {
    let Some(targets) = counter.neighbors(a) else {
        return;
    };
    for &b in targets {
        if b != a {
            out.push(((a, b), adjusted_count(counter, paths, config, a, b)));
        }
    }
}

/// One shard's output: its directed pair counts, how long the counting
/// took (fed to the per-shard latency histogram), and when the shard
/// started relative to the phase entry (fed to trace spans).
type CountShard = (Vec<((FileId, FileId), f64)>, Duration, Duration);

/// The O(files × neighbors) counting phase, partitioned by candidate
/// row across at most `threads` scoped threads. Row partitioning makes
/// the shards disjoint in their output keys, so the merge is a plain
/// extend and the result is independent of the schedule.
#[allow(clippy::type_complexity)]
fn count_pairs_sharded(
    counter: &SharedNeighborCounter,
    paths: &PathTable,
    config: &ClusterConfig,
    threads: usize,
) -> (HashMap<(FileId, FileId), f64>, Vec<Duration>, Vec<Duration>) {
    let rows = counter.files_sorted();
    let threads = threads.clamp(1, rows.len().max(1));
    let base = Instant::now();
    let mut merged: HashMap<(FileId, FileId), f64> = HashMap::new();
    let mut timings = Vec::with_capacity(threads);
    let mut offsets = Vec::with_capacity(threads);
    if threads == 1 {
        let started = Instant::now();
        let mut local = Vec::new();
        for &a in &rows {
            count_row(counter, paths, config, a, &mut local);
        }
        merged.extend(local);
        offsets.push(started.duration_since(base));
        timings.push(started.elapsed());
        return (merged, timings, offsets);
    }
    let chunk = rows.len().div_ceil(threads);
    let shards: Vec<CountShard> = std::thread::scope(|s| {
        let handles: Vec<_> = rows
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    let started = Instant::now();
                    let mut local = Vec::new();
                    for &a in part {
                        count_row(counter, paths, config, a, &mut local);
                    }
                    (local, started.elapsed(), started.duration_since(base))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("count shard panicked"))
            .collect()
    });
    for (local, wall, offset) in shards {
        merged.extend(local);
        timings.push(wall);
        offsets.push(offset);
    }
    (merged, timings, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kn: f64, kf: f64) -> ClusterConfig {
        ClusterConfig {
            kn,
            kf,
            ..ClusterConfig::default()
        }
    }

    const KN: f64 = 4.0;
    const KF: f64 = 2.0;

    fn fid(c: char) -> FileId {
        FileId(c as u32 - 'A' as u32)
    }

    fn files(cluster: &crate::result::Cluster) -> String {
        cluster
            .files
            .iter()
            .map(|f| char::from(b'A' + f.0 as u8))
            .collect()
    }

    /// Table 1: the three regimes of the clustering rule.
    #[test]
    fn table1_regimes() {
        let c = cfg(KN, KF);
        let (a, b) = (FileId(0), FileId(1));
        // x ≥ kn: combined into one cluster.
        let r = cluster_from_counts(&[(a, b, KN)], &[], &c);
        assert_eq!(r.len(), 1);
        assert_eq!(r.clusters[0].files, vec![a, b]);
        // kf ≤ x < kn: inserted into each other's clusters, not combined.
        // Give each file its own companion so the two clusters remain
        // observably distinct after the mutual insertion.
        let (x, y) = (FileId(10), FileId(11));
        let r = cluster_from_counts(&[(a, x, KN), (b, y, KN), (a, b, KF)], &[], &c);
        assert_eq!(r.len(), 2, "two distinct clusters remain");
        assert!(r.clusters.iter().all(|cl| cl.contains(a) && cl.contains(b)));
        assert!(r
            .clusters
            .iter()
            .any(|cl| cl.contains(x) && !cl.contains(y)));
        // x < kf: no action.
        let r = cluster_from_counts(&[(a, b, KF - 1.0)], &[], &c);
        assert_eq!(r.len(), 2);
        assert!(r.clusters.iter().all(|cl| cl.len() == 1));
    }

    /// The paper's Table 2 worked example (§3.3.2): seven files whose
    /// final clusters are {A,B,C,D} and {C,D,E,F,G}.
    #[test]
    fn table2_worked_example() {
        let pairs = [
            (fid('A'), fid('B'), KN),
            (fid('A'), fid('C'), KF),
            (fid('B'), fid('C'), KN),
            (fid('C'), fid('D'), KF),
            (fid('D'), fid('E'), KN),
            (fid('F'), fid('G'), KN),
            (fid('G'), fid('D'), KN),
        ];
        let universe: Vec<FileId> = (0..7).map(FileId).collect();
        let r = cluster_from_counts(&pairs, &universe, &cfg(KN, KF));
        let mut names: Vec<String> = r.clusters.iter().map(files).collect();
        names.sort();
        assert_eq!(names, vec!["ABCD".to_owned(), "CDEFG".to_owned()]);
        // C and D belong to both projects; A only to the first.
        assert_eq!(r.clusters_of(fid('C')).len(), 2);
        assert_eq!(r.clusters_of(fid('D')).len(), 2);
        assert_eq!(r.clusters_of(fid('A')).len(), 1);
    }

    /// Phase one is transitive: A~B and B~C puts A and C together even
    /// with no direct relationship (the example's first step).
    #[test]
    fn phase_one_transitivity() {
        let pairs = [(fid('A'), fid('B'), KN), (fid('B'), fid('C'), KN)];
        let r = cluster_from_counts(&pairs, &[], &cfg(KN, KF));
        assert_eq!(r.len(), 1);
        assert_eq!(files(&r.clusters[0]), "ABC");
    }

    /// Overlap pairs already in the same cluster take no further action.
    #[test]
    fn overlap_within_one_cluster_is_noop() {
        let pairs = [
            (fid('A'), fid('B'), KN),
            (fid('B'), fid('C'), KN),
            (fid('A'), fid('C'), KF), // Same cluster already.
        ];
        let r = cluster_from_counts(&pairs, &[], &cfg(KN, KF));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn singletons_controlled_by_config() {
        let pairs = [(fid('A'), fid('B'), KN)];
        let universe = [fid('A'), fid('B'), fid('Z')];
        let with = cluster_from_counts(&pairs, &universe, &cfg(KN, KF));
        assert_eq!(with.len(), 2, "AB cluster plus singleton Z");
        let without = cluster_from_counts(
            &pairs,
            &universe,
            &ClusterConfig {
                include_singletons: false,
                ..cfg(KN, KF)
            },
        );
        assert_eq!(without.len(), 1);
    }

    /// Two mid-strength pairs (a,b) and (a,c) with b, c in one phase-one
    /// group insert `a` into that cluster once, not twice — and more
    /// broadly no cluster ever lists a file twice.
    #[test]
    fn overlap_membership_is_deduplicated() {
        let (a, b, c, x) = (fid('A'), fid('B'), fid('C'), fid('X'));
        // Phase one: {B, C} combine; A sits with companion X.
        let pairs = [
            (b, c, KN),
            (a, x, KN),
            (a, b, KF),
            (a, c, KF), // Second mid-strength route for A into {B, C}.
        ];
        let r = cluster_from_counts(&pairs, &[], &cfg(KN, KF));
        for cl in &r.clusters {
            let mut files = cl.files.clone();
            files.dedup();
            assert_eq!(files, cl.files, "no cluster lists a file twice: {cl:?}");
        }
        // A still overlaps into the {B, C} cluster exactly once.
        let bc = r
            .clusters
            .iter()
            .find(|cl| cl.contains(b))
            .expect("BC cluster");
        assert_eq!(bc.files.iter().filter(|&&f| f == a).count(), 1);
    }

    /// The sharded counting phase produces a bit-identical clustering to
    /// the serial path, for every shard width.
    #[test]
    fn parallel_clustering_matches_serial() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let mut t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        // Three directory-separated pseudo-projects with cross traffic.
        for p in 0..3u32 {
            for i in 0..12u32 {
                paths.intern(&format!("/proj{p}/src/f{i}.c"));
            }
        }
        for p in 0..3u32 {
            let base = p * 12;
            for i in 0..12u32 {
                for j in 0..12u32 {
                    if i != j {
                        t.observe(
                            FileId(base + i),
                            FileId(base + j),
                            f64::from((i + j) % 5) + 0.5,
                        );
                    }
                }
            }
            // A little cross-project noise.
            t.observe(FileId(base), FileId((base + 13) % 36), 9.0);
        }
        let rel = ExternalRelation::new(vec![FileId(0), FileId(35)], 3.0);
        let exclude: HashSet<FileId> = [FileId(7)].into_iter().collect();
        let config = ClusterConfig::default();
        let view = t.cluster_view();
        let rels = std::slice::from_ref(&rel);
        let serial = cluster_view_excluding(&view, &paths, rels, &exclude, &config, 1);
        assert_eq!(serial.shard_count_seconds.len(), 1);
        for threads in [2, 3, 8, 64] {
            let par = cluster_view_excluding(&view, &paths, rels, &exclude, &config, threads);
            assert_eq!(
                par.clustering.membership_fingerprint(),
                serial.clustering.membership_fingerprint(),
                "threads={threads} diverged from serial"
            );
            assert_eq!(par.clustering.clusters, serial.clustering.clusters);
            assert!(!par.shard_count_seconds.is_empty());
        }
        // The table-based entry point is the same computation.
        let table_path = cluster_files_excluding(&t, &paths, &[rel], &exclude, &config);
        assert_eq!(table_path.clusters, serial.clustering.clusters);
    }

    /// Incremental maintenance across a stream of table mutations is
    /// bit-identical to a full recount at every step, falls back to a
    /// full recount on structural change or a changed exclusion set,
    /// and actually takes the incremental path in between.
    #[test]
    fn incremental_maintenance_matches_full_recount() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let mut t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        for p in 0..4u32 {
            for i in 0..10u32 {
                paths.intern(&format!("/proj{p}/f{i}.c"));
            }
        }
        let mut exclude: HashSet<FileId> = [FileId(3)].into_iter().collect();
        let config = ClusterConfig::default();
        let mut cache = None;
        let observe_round = |t: &mut NeighborTable, round: u32| {
            for p in 0..4u32 {
                let base = p * 10;
                for i in 0..10u32 {
                    let j = (i + round + 1) % 10;
                    if i != j {
                        t.observe(
                            FileId(base + i),
                            FileId(base + j),
                            f64::from((i + j + round) % 6) + 0.5,
                        );
                    }
                }
            }
            // Cross-project traffic so rows bridge partitions.
            t.observe(FileId(round % 40), FileId((round * 7 + 13) % 40), 8.0);
        };
        // Establish a baseline (first call has no cache: full recount).
        observe_round(&mut t, 0);
        let d0 = t.take_dirty();
        let first = cluster_view_incremental(
            &t.cluster_view(),
            &paths,
            &[],
            &exclude,
            &config,
            1,
            Some(&d0),
            &mut cache,
        );
        assert!(!first.incremental, "no cache yet: full recount");
        // Several incremental rounds, each checked against a full
        // recount of the same view.
        for round in 1..5u32 {
            observe_round(&mut t, round);
            let dirty = t.take_dirty();
            let view = t.cluster_view();
            let inc = cluster_view_incremental(
                &view,
                &paths,
                &[],
                &exclude,
                &config,
                1,
                Some(&dirty),
                &mut cache,
            );
            assert!(inc.incremental, "round {round} should reuse the cache");
            let full = cluster_view_excluding(&view, &paths, &[], &exclude, &config, 1);
            assert_eq!(
                inc.clustering.clusters, full.clustering.clusters,
                "round {round} diverged from the full recount"
            );
        }
        // Relations overlay both paths identically and never poison the
        // cached baseline.
        let rel = ExternalRelation::new(vec![FileId(0), FileId(35)], 4.0);
        observe_round(&mut t, 5);
        let dirty = t.take_dirty();
        let view = t.cluster_view();
        let rels = std::slice::from_ref(&rel);
        let inc = cluster_view_incremental(
            &view,
            &paths,
            rels,
            &exclude,
            &config,
            1,
            Some(&dirty),
            &mut cache,
        );
        assert!(inc.incremental);
        let full = cluster_view_excluding(&view, &paths, rels, &exclude, &config, 1);
        assert_eq!(inc.clustering.clusters, full.clustering.clusters);
        let no_rel = cluster_view_incremental(
            &view,
            &paths,
            &[],
            &exclude,
            &config,
            1,
            Some(&TableDirty::default()),
            &mut cache,
        );
        assert!(no_rel.incremental, "relation overlay left the cache clean");
        // A changed exclusion set folds into the delta instead of
        // invalidating the cache.
        exclude.insert(FileId(5));
        let dirty = t.take_dirty();
        let view = t.cluster_view();
        let inc = cluster_view_incremental(
            &view,
            &paths,
            &[],
            &exclude,
            &config,
            1,
            Some(&dirty),
            &mut cache,
        );
        assert!(
            inc.incremental,
            "exclusion change is absorbed incrementally"
        );
        let full = cluster_view_excluding(&view, &paths, &[], &exclude, &config, 1);
        assert_eq!(inc.clustering.clusters, full.clustering.clusters);
        // Un-excluding restores the original pairs, still incrementally.
        exclude.remove(&FileId(5));
        let dirty = t.take_dirty();
        let view = t.cluster_view();
        let inc = cluster_view_incremental(
            &view,
            &paths,
            &[],
            &exclude,
            &config,
            1,
            Some(&dirty),
            &mut cache,
        );
        assert!(inc.incremental, "un-exclusion is absorbed incrementally");
        let full = cluster_view_excluding(&view, &paths, &[], &exclude, &config, 1);
        assert_eq!(inc.clustering.clusters, full.clustering.clusters);
        // A file death stays on the incremental path: the purge marks the
        // dead row plus every row that listed it, and the cached counts
        // absorb the delta. Mark once, then advance the deletion tick past
        // the delay with other names (re-marking 17 would only refresh its
        // own tick).
        t.note_deletion(FileId(17));
        for k in 0..=dc.deletion_delay {
            t.note_deletion(FileId(900 + u32::try_from(k).unwrap()));
        }
        let dirty = t.take_dirty();
        assert!(!dirty.structural, "a purge is a precise row delta");
        assert!(dirty.rows.contains(&FileId(17)), "the dead row goes dirty");
        let view = t.cluster_view();
        let inc = cluster_view_incremental(
            &view,
            &paths,
            &[],
            &exclude,
            &config,
            1,
            Some(&dirty),
            &mut cache,
        );
        assert!(inc.incremental, "a purge is absorbed incrementally");
        let full = cluster_view_excluding(&view, &paths, &[], &exclude, &config, 1);
        assert_eq!(inc.clustering.clusters, full.clustering.clusters);
    }

    #[test]
    fn cluster_files_uses_shared_neighbors() {
        use seer_distance::{DistanceConfig, NeighborTable};
        // Build a table where files 0 and 1 share neighbors 2..7, by
        // observing small distances from each to the common neighbors.
        let dc = DistanceConfig::default();
        let mut t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        for i in 0..10u32 {
            paths.intern(&format!("/proj/f{i}"));
        }
        for target in 2..8u32 {
            t.observe(FileId(0), FileId(target), 1.0);
            t.observe(FileId(1), FileId(target), 1.0);
        }
        // 0 must list 1 (or vice versa) for the pair to be examined.
        t.observe(FileId(0), FileId(1), 1.0);
        let r = cluster_files(&t, &paths, &[], &ClusterConfig::default());
        let c0 = r.clusters_of(FileId(0));
        let c1 = r.clusters_of(FileId(1));
        assert!(
            !c0.is_empty() && c0 == c1,
            "0 and 1 share 6 ≥ kn neighbors: same cluster"
        );
    }

    #[test]
    fn directory_distance_discourages_clustering() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let mut t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        // Files in wildly different trees.
        let a = paths.intern("/home/u/projects/alpha/src/deep/a.c");
        let b = paths.intern("/opt/data/archive/old/backup/b.c");
        assert_eq!(a, FileId(0));
        assert_eq!(b, FileId(1));
        for i in 2..8u32 {
            paths.intern(&format!("/x/f{i}"));
            t.observe(FileId(0), FileId(i), 1.0);
            t.observe(FileId(1), FileId(i), 1.0);
        }
        t.observe(FileId(0), FileId(1), 1.0);
        // Without directory weighting they share 6 ≥ kn neighbors…
        let loose = ClusterConfig {
            directory_weight: 0.0,
            ..ClusterConfig::default()
        };
        let r = cluster_files(&t, &paths, &[], &loose);
        assert_eq!(r.clusters_of(FileId(0)), r.clusters_of(FileId(1)));
        // …but a strong directory weight keeps the distant trees apart.
        let strict = ClusterConfig {
            directory_weight: 1.0,
            ..ClusterConfig::default()
        };
        let r = cluster_files(&t, &paths, &[], &strict);
        assert_ne!(r.clusters_of(FileId(0)), r.clusters_of(FileId(1)));
    }

    #[test]
    fn investigator_relation_bridges_unseen_pairs() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        let a = paths.intern("/p/a.c");
        let b = paths.intern("/p/a.h");
        // No distance data at all, but an investigator knows better.
        let rel = ExternalRelation::new(vec![a, b], 10.0);
        let r = cluster_files(&t, &paths, &[rel], &ClusterConfig::default());
        assert_eq!(r.clusters_of(a), r.clusters_of(b));
        assert!(!r.clusters_of(a).is_empty());
    }

    #[test]
    fn forced_relation_overrides_everything() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        let mut paths = PathTable::new();
        // Enormous directory distance would normally keep these apart.
        let a = paths.intern("/a/b/c/d/e/f/g/x.c");
        let b = paths.intern("/z/y/w/v/u/t/s/y.c");
        let rel = ExternalRelation::new(vec![a, b], 1000.0);
        let config = ClusterConfig {
            directory_weight: 50.0,
            ..ClusterConfig::default()
        };
        let r = cluster_files(&t, &paths, &[rel], &config);
        assert_eq!(
            r.clusters_of(a),
            r.clusters_of(b),
            "forced cluster (§3.3.3)"
        );
    }
}
