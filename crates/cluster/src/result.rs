//! Clustering results: overlapping file-to-project assignments.

use seer_trace::FileId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a cluster within one [`Clustering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Returns the id as an index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One project: a set of files. Files may belong to several clusters
/// (§3.3.1's overlapping-clusters requirement).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Member files, sorted and deduplicated.
    pub files: Vec<FileId>,
}

impl Cluster {
    /// Number of member files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the cluster has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Whether `file` is a member.
    #[must_use]
    pub fn contains(&self, file: FileId) -> bool {
        self.files.binary_search(&file).is_ok()
    }
}

/// A complete cluster assignment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Clustering {
    /// All clusters, in deterministic order.
    pub clusters: Vec<Cluster>,
    membership: HashMap<FileId, Vec<ClusterId>>,
}

impl Clustering {
    /// Builds a clustering from member lists, deriving the reverse index.
    #[must_use]
    pub fn from_members(mut members: Vec<Vec<FileId>>) -> Clustering {
        for m in &mut members {
            m.sort_unstable();
            m.dedup();
        }
        members.retain(|m| !m.is_empty());
        members.sort();
        members.dedup();
        let mut membership: HashMap<FileId, Vec<ClusterId>> = HashMap::new();
        let clusters: Vec<Cluster> = members
            .into_iter()
            .enumerate()
            .map(|(i, files)| {
                for &f in &files {
                    membership.entry(f).or_default().push(ClusterId(i as u32));
                }
                Cluster { files }
            })
            .collect();
        Clustering {
            clusters,
            membership,
        }
    }

    /// The clusters containing `file` (empty if unknown).
    #[must_use]
    pub fn clusters_of(&self, file: FileId) -> &[ClusterId] {
        self.membership.get(&file).map_or(&[], Vec::as_slice)
    }

    /// The cluster with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this clustering.
    #[must_use]
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// `file`'s memberships with context: `(cluster id, member count)`
    /// per containing cluster, in membership order. Empty if the file is
    /// unclustered — exactly what an explanation wants to show.
    #[must_use]
    pub fn membership_summary(&self, file: FileId) -> Vec<(u32, usize)> {
        self.clusters_of(file)
            .iter()
            .map(|&id| (id.0, self.cluster(id).len()))
            .collect()
    }

    /// Number of clusters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// All distinct files appearing in any cluster.
    #[must_use]
    pub fn all_files(&self) -> Vec<FileId> {
        let mut v: Vec<FileId> = self.membership.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// A per-file fingerprint of cluster membership: each file maps to a
    /// hash of the member lists of every cluster containing it. Cluster
    /// *ids* are not stable across reclusterings, but member lists are
    /// deterministic, so equal fingerprints mean the file sits in the
    /// same projects with the same co-members.
    #[must_use]
    pub fn membership_fingerprint(&self) -> HashMap<FileId, u64> {
        use std::hash::{Hash, Hasher};
        self.membership
            .iter()
            .map(|(&file, ids)| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                for &id in ids {
                    self.clusters[id.index()].files.hash(&mut h);
                }
                (file, h.finish())
            })
            .collect()
    }

    /// Number of files whose cluster membership differs between `previous`
    /// and `self` — files that joined, left, or whose project's member set
    /// changed. This is the churn a reclustering introduced; telemetry
    /// tracks its running total to show how unstable project boundaries
    /// are under a given workload.
    #[must_use]
    pub fn churn_from(&self, previous: &Clustering) -> usize {
        let old = previous.membership_fingerprint();
        let new = self.membership_fingerprint();
        let changed_or_new = new.iter().filter(|(f, fp)| old.get(f) != Some(fp)).count();
        let departed = old.keys().filter(|f| !new.contains_key(f)).count();
        changed_or_new + departed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_members_sorts_dedups_and_indexes() {
        let c = Clustering::from_members(vec![
            vec![FileId(3), FileId(1), FileId(3)],
            vec![FileId(2)],
            vec![],
        ]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.clusters[0].files, vec![FileId(1), FileId(3)]);
        assert_eq!(c.clusters_of(FileId(1)), &[ClusterId(0)]);
        assert_eq!(c.clusters_of(FileId(2)), &[ClusterId(1)]);
        assert!(c.clusters_of(FileId(99)).is_empty());
    }

    #[test]
    fn overlapping_membership() {
        let c =
            Clustering::from_members(vec![vec![FileId(1), FileId(2)], vec![FileId(2), FileId(3)]]);
        assert_eq!(c.clusters_of(FileId(2)).len(), 2);
        assert!(c.cluster(ClusterId(0)).contains(FileId(2)));
        assert!(c.cluster(ClusterId(1)).contains(FileId(2)));
    }

    #[test]
    fn duplicate_clusters_collapse() {
        let c =
            Clustering::from_members(vec![vec![FileId(1), FileId(2)], vec![FileId(2), FileId(1)]]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn churn_counts_membership_changes() {
        let a =
            Clustering::from_members(vec![vec![FileId(1), FileId(2)], vec![FileId(3), FileId(4)]]);
        // Identical clustering: no churn either way.
        let same =
            Clustering::from_members(vec![vec![FileId(1), FileId(2)], vec![FileId(3), FileId(4)]]);
        assert_eq!(same.churn_from(&a), 0);
        // File 4 moves into the first project: 1, 2, and 4 all see their
        // co-member sets change; 3 is now alone so it changes too.
        let b =
            Clustering::from_members(vec![vec![FileId(1), FileId(2), FileId(4)], vec![FileId(3)]]);
        assert_eq!(b.churn_from(&a), 4);
        // A file disappearing entirely is churn as well.
        let c = Clustering::from_members(vec![vec![FileId(1), FileId(2)]]);
        assert_eq!(c.churn_from(&same), 2, "3 and 4 departed");
    }

    #[test]
    fn all_files_is_sorted_union() {
        let c =
            Clustering::from_members(vec![vec![FileId(5), FileId(1)], vec![FileId(3), FileId(1)]]);
        assert_eq!(c.all_files(), vec![FileId(1), FileId(3), FileId(5)]);
    }
}
