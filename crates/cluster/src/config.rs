//! Clustering thresholds and weights.

use serde::{Deserialize, Serialize};

/// Configuration for the clustering algorithm (§3.3.2, §3.3.3).
///
/// The two thresholds satisfy `kn > kf`: smaller thresholds are more
/// lenient, so the lower `kf` lets more-distant relationships overlap
/// clusters without combining them. The paper defers concrete values to
/// the dissertation's parameter search (§4.9); the defaults here come from
/// our own search over the synthetic workloads (see `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Near threshold: pairs sharing at least this many neighbors have
    /// their clusters combined.
    pub kn: f64,
    /// Far threshold: pairs sharing at least this many (but fewer than
    /// `kn`) are inserted into each other's clusters.
    pub kf: f64,
    /// Weight applied to directory distance before subtracting it from the
    /// shared-neighbor count (§3.3.3).
    pub directory_weight: f64,
    /// Investigator relations at or above this strength force files into
    /// one cluster regardless of other evidence (§3.3.3).
    pub force_strength: f64,
    /// Whether files with no qualifying relationships appear as singleton
    /// clusters in the result.
    pub include_singletons: bool,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        // Chosen by the `tune_params` sweep over the calibrated machine
        // workloads (perfect purity and cohesion on both light and heavy
        // machines); see EXPERIMENTS.md.
        ClusterConfig {
            kn: 3.0,
            kf: 2.0,
            directory_weight: 2.0,
            force_strength: 100.0,
            include_singletons: true,
        }
    }
}

impl ClusterConfig {
    /// Validates the threshold ordering invariant `kn > kf > 0`.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.kn > self.kf && self.kf > 0.0 && self.directory_weight >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ClusterConfig::default().is_valid());
    }

    #[test]
    fn inverted_thresholds_are_invalid() {
        let c = ClusterConfig {
            kn: 1.0,
            kf: 5.0,
            ..ClusterConfig::default()
        };
        assert!(!c.is_valid());
        let c = ClusterConfig {
            kn: 5.0,
            kf: 0.0,
            ..ClusterConfig::default()
        };
        assert!(!c.is_valid());
    }

    #[test]
    fn serde_round_trip() {
        let c = ClusterConfig::default();
        let json = serde_json::to_string(&c).expect("serialize");
        let back: ClusterConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
    }
}
