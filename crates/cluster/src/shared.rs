//! Shared-neighbor counting from the stored n-neighbor lists.

use seer_distance::{ClusterView, NeighborTable};
use seer_trace::FileId;
use std::collections::HashMap;

/// Precomputed sorted neighbor sets, supporting O(n) shared-neighbor
/// counting between any candidate pair.
#[derive(Debug, Default, Clone)]
pub struct SharedNeighborCounter {
    sets: HashMap<FileId, Vec<FileId>>,
}

impl SharedNeighborCounter {
    /// Builds the counter from a distance table.
    ///
    /// As in Jarvis & Patrick's formulation, every file is a member of its
    /// own neighbor set, so two mutually-listed files share at least
    /// themselves.
    #[must_use]
    pub fn from_table(table: &NeighborTable) -> SharedNeighborCounter {
        SharedNeighborCounter::from_table_excluding(table, &std::collections::HashSet::new())
    }

    /// Builds the counter, ignoring `exclude`d files entirely — neither as
    /// rows nor as neighbor-set members.
    ///
    /// Frequently-referenced files are "eliminated from the calculation of
    /// semantic distances and file relationships" (§4.2); passing the
    /// always-hoard set here removes the bridges that would otherwise fuse
    /// unrelated projects through shared libraries.
    #[must_use]
    pub fn from_table_excluding(
        table: &NeighborTable,
        exclude: &std::collections::HashSet<FileId>,
    ) -> SharedNeighborCounter {
        let mut sets: HashMap<FileId, Vec<FileId>> = HashMap::new();
        for f in table.files() {
            if exclude.contains(&f) {
                continue;
            }
            let mut targets: Vec<FileId> = table
                .neighbors(f)
                .map(|e| e.to)
                .filter(|t| !exclude.contains(t))
                .collect();
            targets.push(f);
            targets.sort_unstable();
            targets.dedup();
            sets.insert(f, targets);
        }
        SharedNeighborCounter { sets }
    }

    /// Builds the counter from a frozen [`ClusterView`], applying the same
    /// exclusion rule as [`SharedNeighborCounter::from_table_excluding`].
    ///
    /// A view taken with [`seer_distance::NeighborTable::cluster_view`]
    /// yields exactly the counter the live table would, so a clustering
    /// computed off-thread from the view is identical to one computed
    /// in place.
    #[must_use]
    pub fn from_view_excluding(
        view: &ClusterView,
        exclude: &std::collections::HashSet<FileId>,
    ) -> SharedNeighborCounter {
        let mut sets: HashMap<FileId, Vec<FileId>> = HashMap::new();
        for (f, targets) in view.rows() {
            if exclude.contains(f) {
                continue;
            }
            let mut targets: Vec<FileId> = targets
                .iter()
                .filter(|t| !exclude.contains(t))
                .copied()
                .collect();
            targets.push(*f);
            targets.sort_unstable();
            targets.dedup();
            sets.insert(*f, targets);
        }
        SharedNeighborCounter { sets }
    }

    /// Builds the counter directly from neighbor lists (for tests and
    /// synthetic inputs).
    #[must_use]
    pub fn from_lists(lists: Vec<(FileId, Vec<FileId>)>) -> SharedNeighborCounter {
        let mut sets = HashMap::new();
        for (f, mut targets) in lists {
            targets.sort_unstable();
            targets.dedup();
            sets.insert(f, targets);
        }
        SharedNeighborCounter { sets }
    }

    /// Number of neighbors `a` and `b` share.
    #[must_use]
    pub fn shared(&self, a: FileId, b: FileId) -> u32 {
        let (Some(sa), Some(sb)) = (self.sets.get(&a), self.sets.get(&b)) else {
            return 0;
        };
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// The directed candidate pairs `(A, B)` where `B` appears in `A`'s
    /// neighbor list — the only pairs the O(N) variation examines
    /// (§3.3.2).
    pub fn candidate_pairs(&self) -> impl Iterator<Item = (FileId, FileId)> + '_ {
        self.sets
            .iter()
            .flat_map(|(&a, targets)| targets.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
    }

    /// All files with a stored neighbor set, sorted — the deterministic
    /// row order the sharded counting phase partitions.
    #[must_use]
    pub fn files_sorted(&self) -> Vec<FileId> {
        let mut v: Vec<FileId> = self.sets.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Every file mentioned anywhere (as a row or as a neighbor).
    #[must_use]
    pub fn all_files(&self) -> Vec<FileId> {
        let mut v: Vec<FileId> = self.sets.keys().copied().collect();
        for targets in self.sets.values() {
            v.extend_from_slice(targets);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The neighbor set of `file`, if stored.
    #[must_use]
    pub fn neighbors(&self, file: FileId) -> Option<&[FileId]> {
        self.sets.get(&file).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> SharedNeighborCounter {
        SharedNeighborCounter::from_lists(vec![
            (FileId(1), vec![FileId(10), FileId(11), FileId(12)]),
            (FileId(2), vec![FileId(11), FileId(12), FileId(13)]),
            (FileId(3), vec![FileId(20)]),
        ])
    }

    #[test]
    fn shared_counts_intersection() {
        let c = counter();
        assert_eq!(c.shared(FileId(1), FileId(2)), 2);
        assert_eq!(c.shared(FileId(1), FileId(3)), 0);
        assert_eq!(
            c.shared(FileId(1), FileId(99)),
            0,
            "unknown file shares nothing"
        );
    }

    #[test]
    fn candidate_pairs_are_directed_by_listing() {
        let c = counter();
        let pairs: Vec<_> = c.candidate_pairs().collect();
        assert!(pairs.contains(&(FileId(1), FileId(10))));
        assert!(!pairs.contains(&(FileId(10), FileId(1))), "10 has no list");
    }

    #[test]
    fn view_counter_matches_table_counter() {
        use seer_distance::{DistanceConfig, NeighborTable};
        let dc = DistanceConfig::default();
        let mut t = NeighborTable::new(
            dc.n_neighbors,
            dc.reduction,
            dc.aging_refs,
            dc.deletion_delay,
            dc.seed,
        );
        for i in 0..6u32 {
            for j in 0..6u32 {
                if i != j {
                    t.observe(FileId(i), FileId(j), f64::from(i + j));
                }
            }
        }
        let exclude: std::collections::HashSet<FileId> = [FileId(2)].into_iter().collect();
        let from_table = SharedNeighborCounter::from_table_excluding(&t, &exclude);
        let from_view = SharedNeighborCounter::from_view_excluding(&t.cluster_view(), &exclude);
        assert_eq!(from_table.files_sorted(), from_view.files_sorted());
        for f in from_table.files_sorted() {
            assert_eq!(from_table.neighbors(f), from_view.neighbors(f));
        }
    }

    #[test]
    fn all_files_includes_targets() {
        let c = counter();
        let all = c.all_files();
        assert!(all.contains(&FileId(1)));
        assert!(all.contains(&FileId(20)));
        assert_eq!(all.len(), 8);
    }
}
