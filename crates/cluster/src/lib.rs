//! Project clustering — SEER's modified Jarvis–Patrick algorithm (§3.3).
//!
//! Pairwise semantic distances become *projects* through a shared-neighbor
//! clustering algorithm with the properties the problem demands (§3.3.1):
//! linear time and storage, tolerance of partial information, no reliance
//! on a metric, and — unusually — overlapping clusters, because a compiler
//! belongs to every project that uses it.
//!
//! The variation on Jarvis & Patrick (§3.3.2): candidate pairs come only
//! from the stored n-neighbor lists (O(N·n) instead of O(N²)), and two
//! thresholds govern the outcome for a pair sharing `x` neighbors:
//!
//! | relationship      | action                                   |
//! |-------------------|------------------------------------------|
//! | `kn ≤ x`          | clusters combined into one               |
//! | `kf ≤ x < kn`     | files inserted, but clusters not combined |
//! | `x < kf`          | no action                                |
//!
//! External information (§3.3.3) — directory distance and investigator
//! relations — adjusts the shared-neighbor count directly rather than the
//! distances, sidestepping semantic distance's asymmetry.

#![warn(missing_docs)]

pub mod algorithm;
pub mod config;
pub mod relation;
pub mod result;
pub mod shared;
pub mod unionfind;

pub use algorithm::{
    cluster_files, cluster_files_excluding, cluster_from_counts, cluster_view_excluding,
    cluster_view_incremental, ClusterRun, PairCountCache,
};
pub use config::ClusterConfig;
pub use relation::ExternalRelation;
pub use result::{Cluster, ClusterId, Clustering};
pub use shared::SharedNeighborCounter;
pub use unionfind::UnionFind;
