//! Statistics utilities for the SEER reproduction.
//!
//! The paper's evaluation reports means, medians, standard deviations,
//! ranges (Tables 3 and 5), and 99 % confidence intervals (Figure 2), and
//! models unknown file sizes with a geometric distribution (§5.1.2). This
//! crate provides those pieces: [`Summary`] for batch statistics,
//! [`OnlineStats`] for streaming mean/variance, [`Geometric`] for the file
//! size model, and [`Histogram`] for distribution inspection.

#![warn(missing_docs)]

pub mod geometric;
pub mod histogram;
pub mod online;
pub mod summary;

pub use geometric::Geometric;
pub use histogram::{quantile_from_log_buckets, Histogram};
pub use online::OnlineStats;
pub use summary::{confidence_interval_99, Summary};
