//! Geometric distribution, the paper's fallback file-size model.
//!
//! §5.1.2: "when the size of a file was not available, the size was
//! randomly assigned from a geometric distribution with a parameter of
//! 0.00007, for an average file size of 14284 bytes."

use rand::Rng;

/// A geometric distribution over positive integers with success
/// probability `p` (mean ≈ 1/p).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// The paper's file-size distribution: p = 0.00007, mean 14 284 bytes.
    pub const PAPER_FILE_SIZES: Geometric = Geometric { p: 0.00007 };

    /// Creates a geometric distribution; returns `None` unless `0 < p ≤ 1`.
    #[must_use]
    pub fn new(p: f64) -> Option<Geometric> {
        (p > 0.0 && p <= 1.0 && p.is_finite()).then_some(Geometric { p })
    }

    /// The distribution parameter.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The distribution mean, 1/p.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample (≥ 1) by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Inversion: ceil(ln(U) / ln(1-p)) with U in (0, 1).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x = (u.ln() / (1.0 - self.p).ln()).ceil();
        x.max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_parameterization() {
        let g = Geometric::PAPER_FILE_SIZES;
        assert!((g.mean() - 14285.7).abs() < 1.0, "1/0.00007 ≈ 14285.7");
    }

    #[test]
    fn new_validates_p() {
        assert!(Geometric::new(0.0).is_none());
        assert!(Geometric::new(-0.5).is_none());
        assert!(Geometric::new(1.5).is_none());
        assert!(Geometric::new(f64::NAN).is_none());
        assert!(Geometric::new(1.0).is_some());
        assert!(Geometric::new(0.3).is_some());
    }

    #[test]
    fn p_one_always_samples_one() {
        let g = Geometric::new(1.0).expect("valid");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 1);
        }
    }

    #[test]
    fn sample_mean_approximates_distribution_mean() {
        let g = Geometric::PAPER_FILE_SIZES;
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| g.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        let expected = g.mean();
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "sample mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn samples_are_positive() {
        let g = Geometric::new(0.5).expect("valid");
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..1000).all(|_| g.sample(&mut rng) >= 1));
    }
}
