//! Batch summary statistics (mean, median, σ, range, confidence interval).

/// Five-number-style summary of a sample, as reported in the paper's
/// Tables 3 and 5 (mean x̄, median x₀.₅, standard deviation σ, min, max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of middle two for even sizes).
    pub median: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sum of observations.
    pub total: f64,
}

impl Summary {
    /// Computes a summary of `data`; returns `None` for an empty sample or
    /// one containing non-finite values.
    #[must_use]
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let n = data.len();
        let total: f64 = data.iter().sum();
        let mean = total / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            median,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            total,
        })
    }

    /// Half-width of the 99 % confidence interval about the mean.
    #[must_use]
    pub fn ci99_half_width(&self) -> f64 {
        confidence_interval_99(self.stddev, self.n)
    }
}

/// Half-width of a 99 % confidence interval about a sample mean, using the
/// normal approximation (z₀.₀₀₅ ≈ 2.576). Returns 0 for n < 2.
#[must_use]
pub fn confidence_interval_99(stddev: f64, n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    2.576 * stddev / (n as f64).sqrt()
}

/// Quantile of a sample via linear interpolation (`q` in `[0, 1]`).
///
/// Returns `None` for an empty sample, out-of-range `q`, or non-finite data.
#[must_use]
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) || data.iter().any(|x| !x.is_finite()) {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).expect("non-empty");
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.median - 4.5).abs() < 1e-12);
        // Sample stddev with n-1: variance = 32/7.
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.total, 40.0);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_single_element() {
        let s = Summary::of(&[3.5]).expect("single");
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci99_half_width(), 0.0);
    }

    #[test]
    fn median_odd_sample() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).expect("odd");
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let wide = confidence_interval_99(10.0, 4);
        let narrow = confidence_interval_99(10.0, 400);
        assert!(narrow < wide / 5.0);
        assert!((confidence_interval_99(1.0, 100) - 0.2576).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&d, 0.0), Some(1.0));
        assert_eq!(quantile(&d, 1.0), Some(4.0));
        assert_eq!(quantile(&d, 0.5), Some(2.5));
        assert!(quantile(&d, 1.5).is_none());
        assert!(quantile(&[], 0.5).is_none());
    }
}
