//! Streaming mean/variance (Welford's algorithm).

/// Online mean and variance accumulator.
///
/// Uses Welford's numerically stable update so month-scale simulations can
/// accumulate statistics without retaining samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 for n < 2).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_is_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for &x in &a_data {
            a.push(x);
            whole.push(x);
        }
        for &x in &b_data {
            b.push(x);
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
