//! Fixed-bin histogram for distribution inspection.

/// A histogram over `[lo, hi)` with equal-width bins plus underflow,
/// overflow, and non-finite counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    non_finite: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// Returns `None` if `bins == 0`, the range is empty, or the bounds are
    /// not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            non_finite: 0,
        })
    }

    /// Records one observation. NaN and ±∞ have no bin (NaN compares
    /// false against both bounds, which would otherwise drop it into
    /// bin 0); they are tallied separately instead.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    #[must_use]
    pub fn bin(&self, i: usize) -> u64 {
        self.bins.get(i).copied().unwrap_or(0)
    }

    /// `[lo, hi)` bounds of bin `i` (even for out-of-range `i`).
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations that were NaN or infinite.
    #[must_use]
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Total observations recorded, including out-of-range and
    /// non-finite ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.non_finite + self.bins.iter().sum::<u64>()
    }
}

/// Extracts quantile `q` (in `[0, 1]`) from a log-spaced bucketed
/// distribution, interpolating geometrically within the winning bucket.
///
/// `bounds` are the ascending upper bounds of the finite buckets;
/// `counts` has one entry per bound **plus one trailing overflow count**
/// for observations above the last bound (`counts.len() == bounds.len()
/// + 1`). Geometric interpolation matches log-spaced buckets: the
/// estimate inside bucket `(lo, hi]` is `lo · (hi/lo)^frac`, which is
/// linear in log space. A quantile landing in the overflow bucket
/// reports the last finite bound (a deliberate under-estimate, flagged
/// by the caller comparing against `bounds.last()`).
///
/// Returns `None` for empty data or mismatched slice lengths.
#[must_use]
pub fn quantile_from_log_buckets(bounds: &[f64], counts: &[u64], q: f64) -> Option<f64> {
    if counts.len() != bounds.len() + 1 || bounds.is_empty() {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    // Rank of the target observation, 1-based, clamped into range.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            if i == bounds.len() {
                // Overflow bucket: no upper bound to interpolate toward.
                return Some(bounds[bounds.len() - 1]);
            }
            let hi = bounds[i];
            let lo = if i == 0 { hi / 2.0 } else { bounds[i - 1] };
            let frac = (rank - seen) as f64 / c as f64;
            return Some(lo * (hi / lo).powf(frac));
        }
        seen += c;
    }
    Some(bounds[bounds.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_none());
        assert!(Histogram::new(0.0, 10.0, 4).is_some());
    }

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5).expect("valid");
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        assert_eq!(h.bin(0), 2);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.bin(4), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_counts() {
        let mut h = Histogram::new(0.0, 10.0, 2).expect("valid");
        h.record(-1.0);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn non_finite_observations_get_no_bin() {
        let mut h = Histogram::new(0.0, 10.0, 5).expect("valid");
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(1.0);
        assert_eq!(h.non_finite(), 3);
        assert_eq!(h.bin(0), 1, "only the finite observation lands in a bin");
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(0.0, 10.0, 4).expect("valid");
        assert_eq!(h.bin_range(0), (0.0, 2.5));
        assert_eq!(h.bin_range(3), (7.5, 10.0));
        assert_eq!(h.num_bins(), 4);
    }

    #[test]
    fn log_bucket_quantiles_interpolate_geometrically() {
        // Bounds 1, 2, 4, 8; all 10 observations in the (2, 4] bucket.
        let bounds = [1.0, 2.0, 4.0, 8.0];
        let counts = [0, 0, 10, 0, 0];
        let median = quantile_from_log_buckets(&bounds, &counts, 0.5).expect("data");
        assert!(
            median > 2.0 && median <= 4.0,
            "median inside its bucket: {median}"
        );
        // Geometric midpoint of (2, 4] is 2·√2 ≈ 2.83.
        assert!(
            (median - 2.0 * 2.0f64.sqrt()).abs() < 0.2,
            "≈ geometric mid: {median}"
        );
        let p100 = quantile_from_log_buckets(&bounds, &counts, 1.0).expect("data");
        assert!(
            (p100 - 4.0).abs() < 1e-9,
            "p100 is the bucket bound: {p100}"
        );
    }

    #[test]
    fn log_bucket_quantiles_split_across_buckets() {
        let bounds = [1.0, 2.0, 4.0];
        let counts = [5, 0, 5, 0];
        let p25 = quantile_from_log_buckets(&bounds, &counts, 0.25).expect("data");
        assert!(p25 <= 1.0, "p25 in first bucket: {p25}");
        let p75 = quantile_from_log_buckets(&bounds, &counts, 0.75).expect("data");
        assert!(p75 > 2.0 && p75 <= 4.0, "p75 in third bucket: {p75}");
    }

    #[test]
    fn log_bucket_quantiles_handle_overflow_and_empty() {
        let bounds = [1.0, 2.0];
        assert_eq!(quantile_from_log_buckets(&bounds, &[0, 0, 0], 0.5), None);
        assert_eq!(
            quantile_from_log_buckets(&bounds, &[1, 1], 0.5),
            None,
            "length mismatch"
        );
        // All mass in overflow: the reported value clamps to the last bound.
        let v = quantile_from_log_buckets(&bounds, &[0, 0, 7], 0.5).expect("data");
        assert!((v - 2.0).abs() < 1e-9);
    }
}
