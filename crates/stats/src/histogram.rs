//! Fixed-bin histogram for distribution inspection.

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// Returns `None` if `bins == 0`, the range is empty, or the bounds are
    /// not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    #[must_use]
    pub fn bin(&self, i: usize) -> u64 {
        self.bins.get(i).copied().unwrap_or(0)
    }

    /// `[lo, hi)` bounds of bin `i` (even for out-of-range `i`).
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_none());
        assert!(Histogram::new(0.0, 10.0, 4).is_some());
    }

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5).expect("valid");
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        assert_eq!(h.bin(0), 2);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.bin(4), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_counts() {
        let mut h = Histogram::new(0.0, 10.0, 2).expect("valid");
        h.record(-1.0);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(0.0, 10.0, 4).expect("valid");
        assert_eq!(h.bin_range(0), (0.0, 2.5));
        assert_eq!(h.bin_range(3), (7.5, 10.0));
        assert_eq!(h.num_bins(), 4);
    }
}
