//! Live-usage budget calibration shared by the Table 4 and Table 5
//! binaries.
//!
//! The paper's hoards were absolute (50 MB; 98 MB for G) and their bite
//! came from the relation to each user's demand. Our workload scales file
//! counts far more than file sizes, so the budgets here preserve that
//! *relation* instead: an always-hoard base (system binaries, shared
//! libraries, dot-files) plus a multiple of the machine's mean
//! per-disconnection working set.

use seer_sim::{SizeModel, UniverseBuilder};
use seer_trace::Timestamp;
use seer_workload::Workload;

/// The paper's stress multiple per machine: hoard budget (beyond the
/// always-hoard base) as a multiple of the machine's mean disconnection
/// working set.
#[must_use]
pub fn stress_multiple(machine: &str) -> f64 {
    match machine {
        // F's working set often exceeded its hoard (§5.2.2).
        "F" => 1.0,
        // I recorded a single severity-1 failure and several autos.
        "I" => 2.0,
        // G's 98 MB hoard was comfortable.
        "G" => 6.0,
        _ => 5.0,
    }
}

/// `(always-hoard base bytes, mean disconnection working-set bytes)` for a
/// workload.
#[must_use]
pub fn demand_basis(workload: &Workload, size_seed: u64) -> (u64, u64) {
    // Boundaries alternate: [0, disc0.start, disc0.end, disc1.start, …],
    // so even-indexed periods ≥ 1 … actually odd periods are the
    // disconnection windows (period i spans boundaries[i]..boundaries[i+1]).
    let mut boundaries = vec![Timestamp::ZERO];
    for p in &workload.schedule {
        boundaries.push(p.start);
        boundaries.push(p.end);
    }
    let universe = UniverseBuilder::with_boundaries(boundaries).build(&workload.trace);
    let mut sizes = SizeModel::new(&workload.fs, size_seed);
    let mut disc_ws: Vec<u64> = Vec::new();
    for (i, period) in universe.periods.iter().enumerate() {
        if i % 2 == 1 && !period.needed.is_empty() {
            let ws: u64 = period
                .needed
                .iter()
                .filter_map(|&f| universe.paths.resolve(f))
                .map(|p| {
                    let p = p.to_owned();
                    sizes.size_of_path(&p)
                })
                .sum();
            disc_ws.push(ws);
        }
    }
    let mean_ws = if disc_ws.is_empty() {
        0
    } else {
        disc_ws.iter().sum::<u64>() / disc_ws.len() as u64
    };
    let sys = &workload.system;
    let base: u64 = sys
        .shared_libs
        .iter()
        .chain([
            &sys.shell,
            &sys.editor,
            &sys.cc,
            &sys.make,
            &sys.latex,
            &sys.mail,
            &sys.find,
        ])
        .chain(sys.dotfiles.iter())
        .map(|p| sizes.size_of_path(p))
        .sum();
    (base, mean_ws)
}

/// The calibrated live-simulation budget for one machine's workload.
#[must_use]
pub fn live_budget(workload: &Workload, size_seed: u64) -> u64 {
    let (base, mean_ws) = demand_basis(workload, size_seed);
    base + (mean_ws as f64 * stress_multiple(&workload.profile.name)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_workload::{generate, MachineProfile};

    #[test]
    fn stress_multiples_are_ordered() {
        assert!(stress_multiple("F") < stress_multiple("I"));
        assert!(stress_multiple("I") < stress_multiple("A"));
    }

    #[test]
    fn demand_basis_is_positive_for_active_machines() {
        let profile = MachineProfile::by_name("D").expect("D").scaled_to_days(20);
        let w = generate(&profile, 3);
        let (base, ws) = demand_basis(&w, 3);
        assert!(base > 0, "system files have size");
        assert!(ws > 0, "disconnections saw work");
        assert!(live_budget(&w, 3) > base);
    }
}
