//! Refill-policy ablation: user-signalled fills vs. §2's automated
//! periodic hoard filling.
//!
//! "The only user interaction … involves informing the computer that a
//! disconnection is imminent, and even this requirement can be eliminated
//! by automated periodic hoard filling if desired." This binary quantifies
//! the price of eliminating it: periodic hoards are at most one period
//! stale when a disconnection arrives.
//!
//! Run with: `cargo run -p seer-bench --bin ablation_refill --release`

use seer_bench::calibration::live_budget;
use seer_sim::{run_live, LiveConfig, RefillPolicy};
use seer_workload::{generate, MachineProfile};

fn main() {
    let profile = MachineProfile::by_name("F").expect("F").scaled_to_days(90);
    let seed = 1000 + u64::from(profile.name.as_bytes()[0]);
    let workload = generate(&profile, seed);
    let budget = live_budget(&workload, seed);
    println!(
        "machine F, {} days, {} disconnections, budget {} bytes\n",
        profile.days,
        workload.schedule.len(),
        budget
    );
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>12}",
        "policy", "misses", "failed", "auto", "bytes moved"
    );
    let policies = [
        ("on-disconnect (signalled)", RefillPolicy::OnDisconnect),
        ("periodic, 2 h", RefillPolicy::Periodic(2.0)),
        ("periodic, 8 h", RefillPolicy::Periodic(8.0)),
        ("periodic, 24 h", RefillPolicy::Periodic(24.0)),
        ("periodic, 96 h", RefillPolicy::Periodic(96.0)),
    ];
    for (name, refill) in policies {
        let cfg = LiveConfig {
            hoard_bytes: budget,
            size_seed: seed,
            refill,
            ..LiveConfig::default()
        };
        let r = run_live(&workload, &cfg);
        println!(
            "{:<26} {:>8} {:>8} {:>8} {:>12}",
            name,
            r.misses.len(),
            r.failed_disconnections(),
            r.auto_count(),
            r.bytes_fetched
        );
    }
    println!("\nMeasured shape: periodic cadences up to a day match the signalled mode");
    println!("within a few percent — the §2 claim holds: the last bit of user");
    println!("interaction can be eliminated at almost no miss cost, because the");
    println!("user's own planning (the briefcase behavior) keeps disconnected work");
    println!("predictable. Two real trades appear at the extremes: a 2-hour cadence");
    println!("moves ~3× the bytes of signalled filling, and a 4-day-stale hoard");
    println!("misses noticeably more across attention shifts.");
}
