//! Daemon ingestion throughput at different client batch sizes.
//!
//! Streams a machine-F workload through the full socket pipeline at
//! frame sizes 1, 64, and 1024 events and reports events/second — the
//! daemon-era version of §5.3's per-event overhead measurement. Larger
//! frames amortize JSON framing and wakeups, and the batcher coalesces
//! small frames before the engine sees them, so even the frame-size-1
//! column reaches the engine in batches.
//!
//! The final experiment scales out: all nine paper machines (A–I) stream
//! concurrently as separate tenants, eight replica clients each over a
//! mix of unix and tcp transports, into one daemon sharded across engine
//! actors — reporting aggregate fleet events/s and per-tenant flush
//! round-trip p99.
//!
//! Run with: `cargo run -p seer-bench --bin daemon_throughput --release`
//! (also writes `results/daemon_throughput.txt`).

use seer_daemon::{Daemon, DaemonClient, DaemonConfig, FsyncPolicy};
use seer_telemetry::RegistrySnapshot;
use seer_trace::wire::{QueryRequest, QueryResponse};
use seer_workload::{generate, MachineProfile};
use std::fmt::Write as _;
use std::time::Instant;

/// Renders a duration in microseconds with sub-µs latencies kept legible.
fn us(secs: Option<f64>) -> String {
    match secs {
        None => "-".into(),
        Some(s) => format!("{:.1}", s * 1e6),
    }
}

/// Appends one per-stage percentile table pulled from the daemon's
/// telemetry registry after a run.
fn write_stage_table(out: &mut String, chunk: usize, snap: &RegistrySnapshot) {
    let _ = writeln!(out, "\nper-stage latency, frame size {chunk} (µs):");
    let _ = writeln!(
        out,
        "  {:<16} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p95", "p99"
    );
    for m in snap
        .metrics
        .iter()
        .filter(|m| m.name == "seer_daemon_stage_seconds")
    {
        let stage = m
            .labels
            .iter()
            .find(|(k, _)| k == "stage")
            .map_or("?", |(_, v)| v.as_str());
        let count = match &m.value {
            seer_telemetry::MetricValue::Histogram { count, .. } => *count,
            _ => continue,
        };
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>10} {:>10} {:>10}",
            stage,
            count,
            us(m.quantile(0.50)),
            us(m.quantile(0.95)),
            us(m.quantile(0.99)),
        );
    }
}

fn main() {
    let profile = MachineProfile {
        days: 20,
        ..MachineProfile::by_name("F").expect("F")
    };
    let workload = generate(&profile, 9);
    let trace = workload.trace;
    let n = trace.len();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "daemon ingestion throughput — machine F, 20 days, {n} events"
    );
    let _ = writeln!(
        out,
        "(socket + bounded pipeline + batched engine apply; flush-acked)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>14} {:>16} {:>14}",
        "frame size", "seconds", "events/s", "µs per event", "batches"
    );
    let mut stage_tables = String::new();

    for &chunk in &[1usize, 64, 1024] {
        let dir =
            std::env::temp_dir().join(format!("seer-throughput-{chunk}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let handle = Daemon::spawn(DaemonConfig::new(dir.join("sock"))).expect("spawn");
        let mut client =
            DaemonClient::connect(handle.socket_path(), "throughput").expect("connect");

        // Warm the engine's tables once so runs compare steady state.
        client.send_trace(&trace, chunk).expect("warmup send");
        client.flush().expect("warmup flush");

        let start = Instant::now();
        client.send_trace(&trace, chunk).expect("send");
        client.flush().expect("flush");
        let secs = start.elapsed().as_secs_f64();

        // Pull the telemetry registry over the wire while the daemon is
        // still up: per-stage percentiles break the wall-clock number
        // down into where the time actually went.
        match client.query(QueryRequest::Metrics).expect("metrics query") {
            QueryResponse::Metrics { snapshot } => {
                write_stage_table(&mut stage_tables, chunk, &snapshot);
            }
            other => panic!("unexpected response: {other:?}"),
        }

        drop(client);
        let stats = handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();

        let _ = writeln!(
            out,
            "{:<12} {:>12.3} {:>14.0} {:>16.2} {:>14}",
            chunk,
            secs,
            n as f64 / secs,
            secs * 1e6 / n as f64,
            stats.batches_applied
        );
    }

    out.push_str(&stage_tables);

    // Second experiment: does background reclustering stall ingestion?
    // Same workload at frame size 64, once with periodic reclustering
    // disabled and once reclustering aggressively, comparing the
    // engine_apply latency distribution. Reclustering runs off-actor on
    // a worker thread, so the apply path should barely notice it.
    let _ = writeln!(
        out,
        "\ningest latency during background reclustering (frame size 64):"
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "configuration", "p50 µs", "p95 µs", "p99 µs", "applies", "reclusters"
    );
    let mut apply_p99 = [f64::NAN; 2];
    for (i, (label, every)) in [("no reclustering", 0u64), ("recluster every 1000", 1000)]
        .iter()
        .enumerate()
    {
        let dir =
            std::env::temp_dir().join(format!("seer-throughput-rc{i}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut cfg = DaemonConfig::new(dir.join("sock"));
        cfg.recluster_every = *every;
        let handle = Daemon::spawn(cfg).expect("spawn");
        let mut client =
            DaemonClient::connect(handle.socket_path(), "recluster-bench").expect("connect");
        client.send_trace(&trace, 64).expect("warmup send");
        client.flush().expect("warmup flush");
        client.send_trace(&trace, 64).expect("send");
        client.flush().expect("flush");
        let snap = match client.query(QueryRequest::Metrics).expect("metrics query") {
            QueryResponse::Metrics { snapshot } => snapshot,
            other => panic!("unexpected response: {other:?}"),
        };
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();

        let apply = snap
            .find_with("seer_daemon_stage_seconds", &[("stage", "engine_apply")])
            .expect("engine_apply stage");
        let count = match &apply.value {
            seer_telemetry::MetricValue::Histogram { count, .. } => *count,
            _ => 0,
        };
        apply_p99[i] = apply.quantile(0.99).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>12}",
            label,
            us(apply.quantile(0.50)),
            us(apply.quantile(0.95)),
            us(apply.quantile(0.99)),
            count,
            snap.counter("seer_daemon_reclusters_total").unwrap_or(0),
        );
    }
    let ratio = apply_p99[1] / apply_p99[0].max(1e-12);
    let _ = writeln!(
        out,
        "  engine_apply p99 ratio (recluster / baseline): {ratio:.2}x \
         (target: within 2x — reclustering must not stall ingestion)"
    );

    // Third experiment: what does causal tracing cost the hot path?
    // Same workload at frame size 64, once with the flight recorder off
    // (capacity 0, no trace stamps) and once fully on (every frame
    // stamped, so every ingest stage records spans into the ring).
    let _ = writeln!(
        out,
        "\ningest latency with causal tracing on vs off (frame size 64):"
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "configuration", "p50 µs", "p95 µs", "p99 µs", "applies", "spans"
    );
    let mut traced_p99 = [f64::NAN; 2];
    for (i, (label, traced)) in [("tracing disabled", false), ("tracing enabled", true)]
        .iter()
        .enumerate()
    {
        let dir =
            std::env::temp_dir().join(format!("seer-throughput-tr{i}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut cfg = DaemonConfig::new(dir.join("sock"));
        cfg.recluster_every = 0;
        cfg.trace_capacity = if *traced { 4096 } else { 0 };
        let handle = Daemon::spawn(cfg).expect("spawn");
        let mut client =
            DaemonClient::connect(handle.socket_path(), "tracing-bench").expect("connect");
        client.send_trace(&trace, 64).expect("warmup send");
        client.flush().expect("warmup flush");
        if *traced {
            client.set_trace_id(Some(seer_telemetry::new_trace_id().0));
        }
        // Two timed passes: more samples per percentile, less run noise.
        for _ in 0..2 {
            client.send_trace(&trace, 64).expect("send");
            client.flush().expect("flush");
        }
        client.set_trace_id(None);
        // Ring contents at the end plus contention drops — evidence the
        // traced run actually recorded spans.
        let spans_recorded = if *traced {
            match client.query(QueryRequest::Dump).expect("dump") {
                QueryResponse::Dump { spans, dropped } => spans.len() as u64 + dropped,
                other => panic!("unexpected response: {other:?}"),
            }
        } else {
            0
        };
        let snap = match client.query(QueryRequest::Metrics).expect("metrics") {
            QueryResponse::Metrics { snapshot } => snapshot,
            other => panic!("unexpected response: {other:?}"),
        };
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();

        let apply = snap
            .find_with("seer_daemon_stage_seconds", &[("stage", "engine_apply")])
            .expect("engine_apply stage");
        let count = match &apply.value {
            seer_telemetry::MetricValue::Histogram { count, .. } => *count,
            _ => 0,
        };
        traced_p99[i] = apply.quantile(0.99).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>12}",
            label,
            us(apply.quantile(0.50)),
            us(apply.quantile(0.95)),
            us(apply.quantile(0.99)),
            count,
            spans_recorded,
        );
    }
    let tratio = traced_p99[1] / traced_p99[0].max(1e-12);
    let _ = writeln!(
        out,
        "  engine_apply p99 ratio (tracing on / off): {tratio:.2}x \
         (target: within 1.10x — tracing must be invisible on the hot path)"
    );

    // Fourth experiment: what does write-ahead logging cost the ingest
    // path? Same workload at frame size 64, once without a WAL and once
    // per fsync policy. The append itself rides inside the engine_apply
    // stage, so its p99 captures framing + checksum + write() and — for
    // fsync=always — the fdatasync on every batch.
    let _ = writeln!(
        out,
        "\ningest latency with the write-ahead log on vs off (frame size 64):"
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "configuration", "p50 µs", "p95 µs", "p99 µs", "wal records", "wal MiB"
    );
    let mut wal_p99 = [f64::NAN; 4];
    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("wal off", None),
        ("fsync=never", Some(FsyncPolicy::Never)),
        (
            "fsync=interval:50",
            Some(FsyncPolicy::Interval(std::time::Duration::from_millis(50))),
        ),
        ("fsync=always", Some(FsyncPolicy::Always)),
    ];
    for (i, (label, policy)) in policies.iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("seer-throughput-wal{i}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut cfg = DaemonConfig::new(dir.join("sock"));
        cfg.recluster_every = 0;
        if let Some(p) = policy {
            cfg.wal_dir = Some(dir.join("wal"));
            cfg.wal_fsync = *p;
        }
        let handle = Daemon::spawn(cfg).expect("spawn");
        let mut client = DaemonClient::connect(handle.socket_path(), "wal-bench").expect("connect");
        client.send_trace(&trace, 64).expect("warmup send");
        client.flush().expect("warmup flush");
        client.send_trace(&trace, 64).expect("send");
        client.flush().expect("flush");
        let snap = match client.query(QueryRequest::Metrics).expect("metrics query") {
            QueryResponse::Metrics { snapshot } => snapshot,
            other => panic!("unexpected response: {other:?}"),
        };
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();

        let apply = snap
            .find_with("seer_daemon_stage_seconds", &[("stage", "engine_apply")])
            .expect("engine_apply stage");
        wal_p99[i] = apply.quantile(0.99).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>10} {:>10} {:>12} {:>12.2}",
            label,
            us(apply.quantile(0.50)),
            us(apply.quantile(0.95)),
            us(apply.quantile(0.99)),
            snap.counter("seer_wal_records_total").unwrap_or(0),
            snap.counter("seer_wal_appended_bytes_total").unwrap_or(0) as f64 / (1024.0 * 1024.0),
        );
    }
    let wratio = wal_p99[2] / wal_p99[0].max(1e-12);
    let _ = writeln!(
        out,
        "  engine_apply p99 ratio (fsync=interval / wal off): {wratio:.2}x \
         (target: within 1.25x — durability must not throttle ingestion)"
    );

    // Fifth experiment: what does the live quality plane cost the ingest
    // path? The shadow-LRU touch rides inside the engine_apply stage and
    // the evaluator runs off-actor on its own worker, so only the touch
    // (one hash insert per referenced path) should show up in the p99.
    let _ = writeln!(
        out,
        "\ningest latency with the quality plane on vs off (frame size 64):"
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "configuration", "p50 µs", "p95 µs", "p99 µs", "applies", "evals"
    );
    let mut quality_p99 = [f64::NAN; 2];
    for (i, (label, enabled)) in [("quality off", false), ("quality on", true)]
        .iter()
        .enumerate()
    {
        let dir = std::env::temp_dir().join(format!("seer-throughput-q{i}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut cfg = DaemonConfig::new(dir.join("sock"));
        cfg.recluster_every = 0;
        if !enabled {
            cfg.eval_every = std::time::Duration::ZERO;
        }
        let handle = Daemon::spawn(cfg).expect("spawn");
        let mut client =
            DaemonClient::connect(handle.socket_path(), "quality-bench").expect("connect");
        client.send_trace(&trace, 64).expect("warmup send");
        client.flush().expect("warmup flush");
        for _ in 0..2 {
            client.send_trace(&trace, 64).expect("send");
            client.flush().expect("flush");
        }
        if *enabled {
            // One inline evaluation so the evals column is never zero
            // even when the run outpaces the background cadence.
            client.quality().expect("quality report");
        }
        let snap = match client.query(QueryRequest::Metrics).expect("metrics query") {
            QueryResponse::Metrics { snapshot } => snapshot,
            other => panic!("unexpected response: {other:?}"),
        };
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();

        let apply = snap
            .find_with("seer_daemon_stage_seconds", &[("stage", "engine_apply")])
            .expect("engine_apply stage");
        let count = match &apply.value {
            seer_telemetry::MetricValue::Histogram { count, .. } => *count,
            _ => 0,
        };
        quality_p99[i] = apply.quantile(0.99).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>12}",
            label,
            us(apply.quantile(0.50)),
            us(apply.quantile(0.95)),
            us(apply.quantile(0.99)),
            count,
            snap.counter("seer_daemon_quality_evals_total").unwrap_or(0),
        );
    }
    let qratio = quality_p99[1] / quality_p99[0].max(1e-12);
    let _ = writeln!(
        out,
        "  engine_apply p99 ratio (quality on / off): {qratio:.2}x \
         (target: within 1.10x — evaluation must stay off the hot path)"
    );

    // Sixth experiment: the fleet. All nine paper machines (A–I) stream
    // concurrently, each as its own tenant with several replica clients
    // over a mix of unix and tcp transports, into one daemon sharded
    // across engine actors. Reported: aggregate events/s across the
    // whole fleet and the per-tenant flush round-trip p99 (the latency a
    // client sees between handing over a window of events and the shard
    // acknowledging them applied).
    const REPLICAS: usize = 8;
    const FLEET_SHARDS: usize = 4;
    const FLEET_CHUNK: usize = 1024;
    // Flush (and take a latency sample) every this many events.
    const FLUSH_WINDOW: usize = 2 * FLEET_CHUNK;
    let machines = ["A", "B", "C", "D", "E", "F", "G", "H", "I"];
    let fleet: Vec<(&str, seer_trace::Trace)> = machines
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let profile = MachineProfile::by_name(m).expect("paper machine");
            (
                *m,
                generate(&profile.scaled_to_days(20), 40 + i as u64).trace,
            )
        })
        .collect();
    let total_events: u64 = fleet
        .iter()
        .map(|(_, t)| t.len() as u64 * REPLICAS as u64)
        .sum();

    let dir = std::env::temp_dir().join(format!("seer-throughput-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut cfg = DaemonConfig::new(dir.join("sock"));
    cfg.recluster_every = 0;
    cfg.eval_every = std::time::Duration::ZERO;
    cfg.tcp_addr = Some("127.0.0.1:0".into());
    cfg.shards = FLEET_SHARDS;
    let handle = Daemon::spawn(cfg).expect("spawn");
    let socket_path = handle.socket_path().to_path_buf();
    let tcp_addr = handle.tcp_addr().expect("tcp listener");

    let _ = writeln!(
        out,
        "\nfleet ingestion — {} machines x {REPLICAS} replicas, {FLEET_SHARDS} shards, mixed unix/tcp:",
        fleet.len()
    );
    let start = Instant::now();
    // One thread per replica connection; half the fleet arrives over the
    // unix socket, half over tcp, interleaved so every tenant uses both.
    let per_replica: Vec<(usize, Vec<f64>)> = std::thread::scope(|s| {
        let mut workers = Vec::new();
        for (mi, (name, trace)) in fleet.iter().enumerate() {
            for r in 0..REPLICAS {
                let (socket_path, client_name) = (&socket_path, format!("{name}-{r}"));
                workers.push(s.spawn(move || {
                    let mut client = if (mi + r) % 2 == 0 {
                        DaemonClient::connect_tenant(socket_path, &client_name, name)
                    } else {
                        DaemonClient::connect_tcp(tcp_addr, &client_name, Some(name))
                    }
                    .expect("connect");
                    let mut latencies = Vec::new();
                    let mut since_flush = 0usize;
                    for chunk in trace.events.chunks(FLEET_CHUNK) {
                        client.send_events(chunk, &trace.strings).expect("send");
                        since_flush += chunk.len();
                        if since_flush >= FLUSH_WINDOW {
                            let t = Instant::now();
                            client.flush().expect("flush");
                            latencies.push(t.elapsed().as_secs_f64());
                            since_flush = 0;
                        }
                    }
                    let t = Instant::now();
                    let applied = client.flush().expect("final flush");
                    latencies.push(t.elapsed().as_secs_f64());
                    assert_eq!(applied, trace.len() as u64, "every event acknowledged");
                    (mi, latencies)
                }));
            }
        }
        workers
            .into_iter()
            .map(|w| w.join().expect("replica"))
            .collect()
    });
    let fleet_secs = start.elapsed().as_secs_f64();

    let mut per_tenant: Vec<Vec<f64>> = vec![Vec::new(); fleet.len()];
    for (mi, lat) in per_replica {
        per_tenant[mi].extend(lat);
    }
    let p99 = |samples: &mut Vec<f64>| -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        Some(samples[(samples.len() - 1) * 99 / 100])
    };
    let _ = writeln!(
        out,
        "  {:<10} {:>12} {:>14} {:>18}",
        "tenant", "events", "per replica", "flush p99 (µs)"
    );
    for (mi, (name, trace)) in fleet.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<10} {:>12} {:>14} {:>18}",
            name,
            trace.len() * REPLICAS,
            trace.len(),
            us(p99(&mut per_tenant[mi])),
        );
    }
    let _ = writeln!(
        out,
        "  aggregate: {total_events} events in {fleet_secs:.3}s = {:.0} events/s \
         (target: >= 1,000,000 events/s)",
        total_events as f64 / fleet_secs
    );

    // The fleet query is the cross-shard witness: every tenant present,
    // every acknowledged event accounted for in the aggregate.
    let mut client = DaemonClient::connect(&socket_path, "fleet-check").expect("connect");
    match client
        .query(QueryRequest::Fleet { top_k: None })
        .expect("fleet query")
    {
        QueryResponse::Fleet {
            tenants,
            total_events: fleet_total,
            per_tenant,
        } => {
            assert!(tenants >= fleet.len(), "all tenants visible");
            let sum: u64 = per_tenant
                .iter()
                .filter(|t| t.tenant != "default")
                .map(|t| t.events_applied)
                .sum();
            assert_eq!(sum, total_events, "fleet query accounts for every event");
            let _ = writeln!(
                out,
                "  fleet query: {tenants} tenants, {fleet_total} events applied daemon-wide"
            );
        }
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // Seventh experiment: what does the fleet observability plane cost
    // the ingest path? With the plane on, every applied batch bumps the
    // tenant's cached instrument twins and the health scorer samples
    // burn windows on the actor's cadence; with it off, none of that
    // runs. The twins are pre-interned handles (no label lookup per
    // apply), so the delta should be a few counter increments.
    let _ = writeln!(
        out,
        "\ningest latency with the fleet observability plane on vs off (frame size 64):"
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "configuration", "p50 µs", "p95 µs", "p99 µs", "applies", "tenant events"
    );
    let mut obs_p99 = [f64::NAN; 2];
    for (i, (label, enabled)) in [("fleet plane off", false), ("fleet plane on", true)]
        .iter()
        .enumerate()
    {
        let dir =
            std::env::temp_dir().join(format!("seer-throughput-fo{i}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut cfg = DaemonConfig::new(dir.join("sock"));
        cfg.recluster_every = 0;
        cfg.eval_every = std::time::Duration::ZERO;
        cfg.fleet_observability = *enabled;
        let handle = Daemon::spawn(cfg).expect("spawn");
        // A named tenant so the run exercises the twin bundle path, not
        // just the "default" tenant's.
        let mut client =
            DaemonClient::connect_tenant(handle.socket_path(), "fleet-obs-bench", "bench-tenant")
                .expect("connect");
        client.send_trace(&trace, 64).expect("warmup send");
        client.flush().expect("warmup flush");
        for _ in 0..2 {
            client.send_trace(&trace, 64).expect("send");
            client.flush().expect("flush");
        }
        let snap = match client.query(QueryRequest::Metrics).expect("metrics query") {
            QueryResponse::Metrics { snapshot } => snapshot,
            other => panic!("unexpected response: {other:?}"),
        };
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();

        let apply = snap
            .find_with("seer_daemon_stage_seconds", &[("stage", "engine_apply")])
            .expect("engine_apply stage");
        let count = match &apply.value {
            seer_telemetry::MetricValue::Histogram { count, .. } => *count,
            _ => 0,
        };
        obs_p99[i] = apply.quantile(0.99).unwrap_or(f64::NAN);
        let tenant_events = snap
            .find_with(
                "seer_daemon_tenant_events_total",
                &[("tenant", "bench-tenant")],
            )
            .map_or(0, |m| match &m.value {
                seer_telemetry::MetricValue::Counter { total } => *total,
                _ => 0,
            });
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>10} {:>10} {:>10} {:>14}",
            label,
            us(apply.quantile(0.50)),
            us(apply.quantile(0.95)),
            us(apply.quantile(0.99)),
            count,
            tenant_events,
        );
    }
    let oratio = obs_p99[1] / obs_p99[0].max(1e-12);
    let _ = writeln!(
        out,
        "  engine_apply p99 ratio (fleet plane on / off): {oratio:.2}x \
         (target: within 1.10x — per-tenant accounting must be free at ingest)"
    );

    let _ = writeln!(
        out,
        "\nthe paper's observer cost ~35 µs/event on 1997 hardware (§5.3); the\n\
         daemon pipeline must stay well under that for tracing to be invisible."
    );
    print!("{out}");

    let results = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/daemon_throughput.txt"
    );
    if let Err(e) = std::fs::write(results, &out) {
        eprintln!("could not write {results}: {e}");
    } else {
        println!("\nwrote {results}");
    }
}
