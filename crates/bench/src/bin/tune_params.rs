//! Parameter-space search (§4.9): sweeps the clustering thresholds and
//! directory weight, scoring cluster quality against ground truth.
//!
//! "We found it necessary to devote significant effort to searching the
//! parameter space for the values that would produce good results for all
//! users." This binary is that search for the reproduction; the chosen
//! defaults are recorded in `EXPERIMENTS.md`.
//!
//! Run with: `cargo run -p seer-bench --bin tune_params --release`

use seer_bench::cluster_quality;
use seer_cluster::ClusterConfig;
use seer_core::{SeerConfig, SeerEngine};
use seer_trace::EventSink;
use seer_workload::{generate, MachineProfile};

fn main() {
    let machines = ["A", "F"];
    println!(
        "{:<8} {:>4} {:>4} {:>5}  {:>6} {:>8} {:>8} {:>6} {:>8}",
        "machine", "kn", "kf", "dirw", "purity", "cohesion", "f1", "nclust", "largest"
    );
    for m in machines {
        let profile = MachineProfile::by_name(m)
            .expect("machine exists")
            .scaled_to_days(30);
        let workload = generate(&profile, 7);
        for (kn, kf) in [
            (3.0, 2.0),
            (4.0, 2.0),
            (5.0, 2.0),
            (5.0, 3.0),
            (6.0, 3.0),
            (8.0, 4.0),
        ] {
            for dirw in [0.0, 0.5, 1.0, 2.0] {
                let config = SeerConfig {
                    cluster: ClusterConfig {
                        kn,
                        kf,
                        directory_weight: dirw,
                        ..ClusterConfig::default()
                    },
                    ..SeerConfig::default()
                };
                let mut engine = SeerEngine::new(config);
                for ev in &workload.trace.events {
                    engine.on_event(ev, &workload.trace.strings);
                }
                let clustering = engine.recluster().clone();
                let q = cluster_quality(&workload, &engine, &clustering);
                let largest = clustering
                    .clusters
                    .iter()
                    .map(|c| c.len())
                    .max()
                    .unwrap_or(0);
                println!(
                    "{:<8} {:>4} {:>4} {:>5.1}  {:>6.3} {:>8.3} {:>8.3} {:>6} {:>8}",
                    m,
                    kn,
                    kf,
                    dirw,
                    q.purity,
                    q.cohesion,
                    q.f1(),
                    clustering.len(),
                    largest
                );
            }
        }
    }
}
