//! Per-layer cost breakdown of the ingest hot path.
//!
//! Replays a machine-F workload through successively larger slices of the
//! pipeline so each layer's per-event cost is visible in isolation:
//!
//! 1. observer only (path resolution + §4 filters, no-op sink),
//! 2. observer → distance engine (neighbor-table maintenance),
//! 3. full `SeerEngine` (adds activity tracking and telemetry sync),
//!
//! then the two off-CPU-path layers the hot-path overhaul touched:
//!
//! 4. wire decode — JSON line (v2–v5) against the v6 binary frame,
//! 5. recluster — full shared-neighbor recount against incremental
//!    maintenance from the dirty-row delta.
//!
//! Every stage reports the minimum over several passes: single passes on
//! a shared machine are dominated by scheduler noise and first-touch
//! page faults rather than the work being measured.
//!
//! Run with: `cargo run -p seer-bench --bin hotpath_ablation --release`

use seer_core::{PairCountCache, SeerEngine};
use seer_distance::{DistanceConfig, DistanceEngine};
use seer_observer::{Observer, ObserverConfig, Reference, ReferenceSink};
use seer_trace::wire::{self, ClientFrame};
use seer_trace::{EventSink, PathTable};
use seer_workload::{generate, MachineProfile, Workload};
use std::time::Instant;

const PASSES: usize = 3;

struct NullSink;

impl ReferenceSink for NullSink {
    fn on_reference(&mut self, r: &Reference, _paths: &PathTable) {
        std::hint::black_box(r.file);
    }
}

/// Minimum per-event cost in µs over `PASSES` replays, each on a fresh
/// sink built by `mk`.
fn replay_min<S: EventSink>(workload: &Workload, mk: impl Fn() -> S) -> f64 {
    let n = workload.trace.len() as f64;
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut sink = mk();
        let t = Instant::now();
        for ev in &workload.trace.events {
            sink.on_event(ev, &workload.trace.strings);
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e6 / n);
    }
    best
}

fn main() {
    let profile = MachineProfile {
        days: 90,
        ..MachineProfile::by_name("F").expect("F")
    };
    let workload = generate(&profile, 9);
    let n = workload.trace.len();
    println!("workload: machine F, 90 days, {n} events (min of {PASSES} passes per stage)\n");
    println!("{:<44} {:>12}", "stage", "per event");
    let report = |name: &str, us: f64| println!("{name:<44} {us:>9.3} µs");

    report(
        "observer only (filters + path resolve)",
        replay_min(&workload, || {
            Observer::new(ObserverConfig::default(), NullSink)
        }),
    );
    report(
        "observer + distance engine",
        replay_min(&workload, || {
            Observer::new(
                ObserverConfig::default(),
                DistanceEngine::new(DistanceConfig::default()),
            )
        }),
    );
    {
        let mut obs = Observer::new(
            ObserverConfig::default(),
            DistanceEngine::new(DistanceConfig::default()),
        );
        for ev in &workload.trace.events {
            obs.on_event(ev, &workload.trace.strings);
        }
        let stats = *obs.sink().stats();
        println!(
            "  opens: {}; observations: {} ({:.1}/open, {:.1}/event)",
            stats.opens,
            stats.observations,
            stats.observations as f64 / stats.opens.max(1) as f64,
            stats.observations as f64 / n as f64
        );
    }
    report(
        "observer + distance (sequence kind)",
        replay_min(&workload, || {
            Observer::new(
                ObserverConfig::default(),
                DistanceEngine::new(DistanceConfig {
                    kind: seer_distance::DistanceKind::Sequence,
                    ..DistanceConfig::default()
                }),
            )
        }),
    );
    report(
        "observer + distance (arithmetic)",
        replay_min(&workload, || {
            Observer::new(
                ObserverConfig::default(),
                DistanceEngine::new(DistanceConfig {
                    reduction: seer_distance::ReductionKind::Arithmetic,
                    ..DistanceConfig::default()
                }),
            )
        }),
    );
    report(
        "full engine (adds activity + telemetry)",
        replay_min(&workload, SeerEngine::default),
    );

    // Wire decode: one 256-event frame, JSON line against v6 binary.
    {
        let batch: Vec<_> = workload.trace.events[..256.min(n)].to_vec();
        let mut line = Vec::new();
        wire::write_frame(
            &mut line,
            &ClientFrame::Events {
                events: batch.clone(),
                trace_id: Some(7),
            },
        )
        .expect("encode json");
        let bin = wire::encode_events_binary(&batch, Some(7));
        let payload = &bin[5..];
        let reps = 2000;
        let mut json_us = f64::INFINITY;
        let mut bin_us = f64::INFINITY;
        for _ in 0..PASSES {
            let t = Instant::now();
            for _ in 0..reps {
                let text = std::str::from_utf8(std::hint::black_box(&line[..line.len() - 1]))
                    .expect("utf8");
                let frame: ClientFrame = serde_json::from_str(text).expect("decode");
                std::hint::black_box(frame);
            }
            json_us = json_us.min(t.elapsed().as_secs_f64() * 1e6 / (reps * batch.len()) as f64);
            let t = Instant::now();
            for _ in 0..reps {
                let decoded =
                    wire::decode_events_binary(std::hint::black_box(payload)).expect("decode");
                std::hint::black_box(decoded);
            }
            bin_us = bin_us.min(t.elapsed().as_secs_f64() * 1e6 / (reps * batch.len()) as f64);
        }
        println!();
        report("wire decode, JSON line (v2-v5)", json_us);
        report("wire decode, binary frame (v6)", bin_us);
        println!("  binary is {:.0}x faster per event", json_us / bin_us);
    }

    // Recluster: full shared-neighbor recount against incremental
    // maintenance, measured on the delta left by the final 1% of the
    // trace (the daemon's steady-state shape: small dirty set, warm
    // pair-count cache).
    {
        let mut engine = SeerEngine::default();
        let split = n - n / 100;
        engine.on_batch(&workload.trace.events[..split], &workload.trace.strings);
        let mut cache: Option<PairCountCache> = None;
        engine.take_dirty();
        let warm = engine.recluster_input();
        let _ =
            warm.compute_incremental(1, Some(&seer_distance::TableDirty::default()), &mut cache);
        engine.on_batch(&workload.trace.events[split..], &workload.trace.strings);
        let dirty = engine.take_dirty();
        let input = engine.recluster_input();

        let mut full_ms = f64::INFINITY;
        for _ in 0..PASSES {
            let t = Instant::now();
            std::hint::black_box(input.compute(1));
            full_ms = full_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }
        let mut inc_ms = f64::INFINITY;
        let mut ran_incremental = false;
        for _ in 0..PASSES {
            let mut c = cache.clone();
            let t = Instant::now();
            let out = input.compute_incremental(1, Some(&dirty), &mut c);
            inc_ms = inc_ms.min(t.elapsed().as_secs_f64() * 1e3);
            ran_incremental |= out.incremental;
            std::hint::black_box(out);
        }
        println!();
        println!(
            "recluster, full recount                      {full_ms:>9.3} ms  ({} dirty rows pending)",
            dirty.rows.len()
        );
        println!(
            "recluster, incremental maintenance           {inc_ms:>9.3} ms  (incremental path ran: {ran_incremental})"
        );
        println!("  incremental is {:.1}x faster", full_ms / inc_ms);
    }
}
