//! Table 2: the seven-file clustering example (§3.3.2).
//!
//! Relations: A→B kn, A→C kf; B→C kn; C→D kf; D→E kn; F→G kn; G→D kn.
//! The paper walks the algorithm to final clusters {A,B,C,D} and
//! {C,D,E,F,G}.
//!
//! Run with: `cargo run -p seer-bench --bin table2`

use seer_cluster::{cluster_from_counts, ClusterConfig};
use seer_trace::FileId;

fn fid(c: char) -> FileId {
    FileId(c as u32 - 'A' as u32)
}

fn name(f: FileId) -> char {
    char::from(b'A' + f.0 as u8)
}

fn main() {
    let config = ClusterConfig::default();
    let (kn, kf) = (config.kn, config.kf);
    println!("Table 2 — seven-file example (kn = {kn}, kf = {kf})\n");
    let pairs = [
        (fid('A'), fid('B'), kn),
        (fid('A'), fid('C'), kf),
        (fid('B'), fid('C'), kn),
        (fid('C'), fid('D'), kf),
        (fid('D'), fid('E'), kn),
        (fid('F'), fid('G'), kn),
        (fid('G'), fid('D'), kn),
    ];
    println!("input relations:");
    for (a, b, x) in pairs {
        let level = if x >= kn { "kn" } else { "kf" };
        println!("  {} → {}  shares {level}", name(a), name(b));
    }
    let universe: Vec<FileId> = (0..7).map(FileId).collect();
    let r = cluster_from_counts(&pairs, &universe, &config);
    let mut got: Vec<String> = r
        .clusters
        .iter()
        .map(|c| c.files.iter().map(|&f| name(f)).collect())
        .collect();
    got.sort();
    println!("\nfinal clusters: {got:?}");
    println!("paper:          [\"ABCD\", \"CDEFG\"]");
    assert_eq!(got, vec!["ABCD".to_owned(), "CDEFG".to_owned()]);
    println!("result: MATCHES the paper");
}
