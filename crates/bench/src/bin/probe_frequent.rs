//! Diagnostic: per-file reference fractions, for calibrating the §4.2
//! frequently-referenced threshold on model-scale traces.
//!
//! Run with: `cargo run -p seer-bench --bin probe_frequent --release -- A 25`

use seer_core::SeerEngine;
use seer_trace::EventSink;
use seer_workload::{generate, MachineProfile};

fn main() {
    let machine = std::env::args().nth(1).unwrap_or_else(|| "A".into());
    let days: u32 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(25);
    let profile = MachineProfile::by_name(&machine)
        .expect("machine")
        .scaled_to_days(days);
    let workload = generate(&profile, 77);
    let mut engine = SeerEngine::default();
    for ev in &workload.trace.events {
        engine.on_event(ev, &workload.trace.strings);
    }
    let activity = engine.correlator().activity();
    let total: u64 = activity
        .files()
        .filter_map(|f| activity.last_ref(f))
        .map(|r| r.count)
        .sum();
    let mut rows: Vec<(u64, String)> = activity
        .files()
        .filter_map(|f| {
            let r = activity.last_ref(f)?;
            Some((r.count, engine.paths().resolve(f)?.to_owned()))
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.0));
    println!("total correlator-visible refs: {total}");
    for (count, path) in rows.iter().take(25) {
        println!(
            "{count:>6}  {:6.2}%  {path}",
            100.0 * *count as f64 / total as f64
        );
    }
    println!("\n(always-hoard set, for comparison)");
    let mut hoard: Vec<&str> = engine
        .always_hoard()
        .iter()
        .filter_map(|&f| engine.paths().resolve(f))
        .collect();
    hoard.sort_unstable();
    for p in hoard.iter().take(25) {
        println!("  {p}");
    }
}
