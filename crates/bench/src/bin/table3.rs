//! Table 3: disconnection statistics per user.
//!
//! For each machine: days measured, number of disconnections, and the
//! total/mean/median/σ/max disconnection duration in hours. Generated from
//! the calibrated schedules; the paper's measured values are printed
//! alongside for comparison.
//!
//! Run with: `cargo run -p seer-bench --bin table3 --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use seer_stats::Summary;
use seer_workload::{generate_schedule, DisconnectionPeriod, MachineProfile};

fn main() {
    println!("Table 3 — disconnection statistics (measured | paper)\n");
    println!(
        "{:<5} {:>6} {:>12} {:>14} {:>15} {:>15} {:>8} {:>15}",
        "User", "Days", "Disc.", "Total (h)", "mean x̄", "median x.5", "σ", "Max"
    );
    for profile in MachineProfile::paper_machines() {
        let mut rng = StdRng::seed_from_u64(0xD15C + u64::from(profile.name.as_bytes()[0]));
        let schedule = generate_schedule(&profile, &mut rng);
        let hours: Vec<f64> = schedule.iter().map(DisconnectionPeriod::hours).collect();
        let s = Summary::of(&hours).expect("schedules are non-empty");
        println!(
            "{:<5} {:>6} {:>5}|{:<6} {:>6.0}|{:<7} {:>7.2}|{:<7.2} {:>7.2}|{:<7.2} {:>8.2} {:>7.2}|{:<7.2}",
            profile.name,
            profile.days,
            s.n,
            profile.n_disconnections,
            s.total,
            paper_total(&profile.name),
            s.mean,
            profile.mean_disc_hours,
            s.median,
            profile.median_disc_hours,
            s.stddev,
            s.max,
            profile.max_disc_hours,
        );
    }
    println!("\n(paper values after '|'; durations lognormal-calibrated to the paper's");
    println!(" median/mean/max, counts to its disconnection totals; §5.1.1's 15-minute");
    println!(" floor and brief-reconnection merging applied)");
}

fn paper_total(machine: &str) -> u32 {
    match machine {
        "A" => 424,
        "B" => 431,
        "C" => 745,
        "D" => 271,
        "E" => 47,
        "F" => 1711,
        "G" => 862,
        "H" => 763,
        "I" => 274,
        _ => 0,
    }
}
