//! Figure 3: weekly working-set sizes of the most heavily-used machine
//! (F) against each manager's miss-free hoard size, sorted by working-set
//! size (the X axis is the sort order, not calendar order).
//!
//! Run with: `cargo run -p seer-bench --bin figure3 --release`
//! (optionally pass a days cap, e.g. `figure3 84`)

use seer_bench::kb;
use seer_sim::{run_missfree, MissFreeConfig};
use seer_workload::{generate, MachineProfile};

fn main() {
    let days_cap: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(u32::MAX);
    let profile = MachineProfile::by_name("F")
        .expect("F")
        .scaled_to_days(days_cap.min(252));
    let workload = generate(&profile, 404);
    let out = run_missfree(&workload, &MissFreeConfig::weekly());

    let mut rows: Vec<(u64, u64, u64)> = out
        .active_periods()
        .map(|p| (p.working_set, p.seer.bytes, p.lru.bytes))
        .collect();
    rows.sort_by_key(|r| r.0);

    println!("Figure 3 — machine F, weekly disconnections, sorted by working set (KB)\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12}",
        "week", "working", "seer", "lru"
    );
    for (i, (ws, seer, lru)) in rows.iter().enumerate() {
        println!(
            "{:>5} {:>12.1} {:>12.1} {:>12.1}",
            i + 1,
            kb(*ws),
            kb(*seer),
            kb(*lru)
        );
    }
    let n = rows.len().max(1) as f64;
    let mean_ratio_seer: f64 = rows
        .iter()
        .map(|(ws, seer, _)| *seer as f64 / (*ws).max(1) as f64)
        .sum::<f64>()
        / n;
    let mean_ratio_lru: f64 = rows
        .iter()
        .map(|(ws, _, lru)| *lru as f64 / (*ws).max(1) as f64)
        .sum::<f64>()
        / n;
    println!("\nmean seer/working = {mean_ratio_seer:.2}; mean lru/working = {mean_ratio_lru:.2}");
    println!("paper shape: SEER tracks the working set closely across all weeks;");
    println!("LRU frequently requires significantly more space.");
}
