//! §5.3 performance claims: per-event observation cost, clustering cost,
//! and memory per tracked file.
//!
//! Paper figures (133 MHz Pentium / 486 era): ~35 µs per traced system
//! call, ~2 CPU-minutes to form clusters over ~20 000 files, and ~1 KB of
//! (deliberately unoptimized) memory per known file. Absolute numbers on
//! modern hardware differ by orders of magnitude; what should hold is the
//! *structure*: per-event cost constant and far below clustering cost,
//! clustering linear-ish in files, and per-file memory well under the
//! paper's 1 KB.
//!
//! Run with: `cargo run -p seer-bench --bin perf_summary --release`

use seer_core::SeerEngine;
use seer_trace::EventSink;
use seer_workload::{generate, MachineProfile};
use std::time::Instant;

fn main() {
    let profile = MachineProfile {
        days: 90,
        ..MachineProfile::by_name("F").expect("F")
    };
    let workload = generate(&profile, 9);
    let n_events = workload.trace.len();
    println!("workload: machine F, 90 days, {n_events} events");

    // Steady-state per-event cost: best of five replays on fresh
    // engines. A single cold pass is dominated by first-touch page
    // faults and allocator growth rather than the per-event work the
    // paper's figure describes; the minimum suppresses scheduler noise.
    const PASSES: usize = 5;
    let mut per_event_us = f64::INFINITY;
    let mut engine = SeerEngine::default();
    for pass in 0..PASSES {
        let mut fresh = SeerEngine::default();
        let t0 = Instant::now();
        for ev in &workload.trace.events {
            fresh.on_event(ev, &workload.trace.strings);
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / n_events as f64;
        per_event_us = per_event_us.min(us);
        if pass == PASSES - 1 {
            engine = fresh;
        }
    }

    let n_files = engine.paths().len();
    let table = engine.correlator().distance().table();
    let entries = table.total_entries();
    // Rough per-file footprint: path string + neighbor row.
    let path_bytes: usize = (0..n_files)
        .filter_map(|i| engine.paths().resolve(seer_trace::FileId(i as u32)))
        .map(str::len)
        .sum();
    let entry_bytes = entries * std::mem::size_of::<seer_distance::NeighborEntry>();
    let per_file_bytes = (path_bytes + entry_bytes) as f64 / n_files as f64;

    let t1 = Instant::now();
    let clustering = engine.recluster().clone();
    let cluster_time = t1.elapsed();

    println!(
        "\n{:<38} {:>14} {:>18}",
        "metric", "measured", "paper (1997 hw)"
    );
    println!(
        "{:<38} {:>11.2} µs {:>18}",
        "observation cost per event", per_event_us, "~35 µs"
    );
    println!(
        "{:<38} {:>11.2} ms {:>18}",
        "cluster formation",
        cluster_time.as_secs_f64() * 1e3,
        "~2 CPU-min"
    );
    println!(
        "{:<38} {:>11.0} B {:>18}",
        "memory per tracked file", per_file_bytes, "~1 KB"
    );
    println!(
        "\nfiles tracked: {n_files}; neighbor entries: {entries}; clusters: {}",
        clustering.len()
    );
    println!(
        "structure check: clustering is {}× the per-event cost — a rare, schedulable \
         operation, as the paper argues",
        (cluster_time.as_secs_f64() / (per_event_us / 1e6)).round()
    );
}
