//! Figure 1: the lifetime-semantic-distance worked example.
//!
//! The paper's reference sequence {Ao, Bo, Bc, Co, Cc, Ac, Do, Dc} and the
//! distances Definition 3 assigns: A→B = A→C = 0 (A still open), A→D = 3,
//! B→C = 1, B→D = 2, C→D = 1; all reverse distances undefined.
//!
//! Run with: `cargo run -p seer-bench --bin figure1`

use seer_distance::{DistanceConfig, DistanceEngine};
use seer_observer::{RefKind, Reference, ReferenceSink};
use seer_trace::{FileId, PathTable, Pid, Seq, Timestamp};

fn main() {
    let paths = PathTable::new();
    let mut engine = DistanceEngine::new(DistanceConfig::default());
    let mut seq = 0u64;
    let mut send = |engine: &mut DistanceEngine, file: u32, kind: RefKind| {
        let r = Reference {
            seq: Seq(seq),
            time: Timestamp::from_secs(seq),
            pid: Pid(1),
            file: FileId(file),
            kind,
        };
        engine.on_reference(&r, &paths);
        seq += 1;
    };
    let open = RefKind::Open {
        read: true,
        write: false,
        exec: false,
    };
    let (a, b, c, d) = (0u32, 1, 2, 3);
    // The Figure 1 sequence.
    send(&mut engine, a, open);
    send(&mut engine, b, open);
    send(&mut engine, b, RefKind::Close);
    send(&mut engine, c, open);
    send(&mut engine, c, RefKind::Close);
    send(&mut engine, a, RefKind::Close);
    send(&mut engine, d, open);
    send(&mut engine, d, RefKind::Close);

    println!("Figure 1 — lifetime semantic distances for {{Ao Bo Bc Co Cc Ac Do Dc}}\n");
    println!(
        "{:>6} {:>6} {:>10} {:>10}",
        "from", "to", "measured", "paper"
    );
    let names = ["A", "B", "C", "D"];
    let expected = [
        (a, b, Some(0.0)),
        (a, c, Some(0.0)),
        (a, d, Some(3.0)),
        (b, c, Some(1.0)),
        (b, d, Some(2.0)),
        (c, d, Some(1.0)),
        (b, a, None),
        (c, a, None),
        (d, a, None),
        (c, b, None),
        (d, b, None),
        (d, c, None),
    ];
    let mut all_match = true;
    for (x, y, want) in expected {
        let got = engine.table().distance(FileId(x), FileId(y));
        let ok = match (got, want) {
            (Some(g), Some(w)) => (g - w).abs() < 1e-9,
            (None, None) => true,
            _ => false,
        };
        all_match &= ok;
        println!(
            "{:>6} {:>6} {:>10} {:>10}",
            names[x as usize],
            names[y as usize],
            got.map_or("undef".to_owned(), |g| format!("{g:.0}")),
            want.map_or("undef".to_owned(), |w| format!("{w:.0}")),
        );
    }
    println!(
        "\nresult: {}",
        if all_match {
            "MATCHES the paper"
        } else {
            "MISMATCH"
        }
    );
    assert!(all_match);
}
