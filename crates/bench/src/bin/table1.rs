//! Table 1: the clustering algorithm's action summary.
//!
//! | relationship    | action                                    |
//! |-----------------|-------------------------------------------|
//! | kn ≤ x          | clusters combined into one                |
//! | kf ≤ x < kn     | files inserted, but clusters not combined |
//! | x < kf          | no action                                 |
//!
//! Run with: `cargo run -p seer-bench --bin table1`

use seer_cluster::{cluster_from_counts, ClusterConfig};
use seer_trace::FileId;

fn main() {
    let config = ClusterConfig::default();
    let (kn, kf) = (config.kn, config.kf);
    println!("Table 1 — clustering actions (kn = {kn}, kf = {kf})\n");
    println!("{:<16} {:<44} clusters", "shared x", "action (observed)");

    // Each file gets a companion so the outcome is observable.
    let (a, b, x, y) = (FileId(0), FileId(1), FileId(10), FileId(11));
    let base = [(a, x, kn), (b, y, kn)];
    for (label, shared) in [("x ≥ kn", kn), ("kf ≤ x < kn", kf), ("x < kf", kf - 1.0)] {
        let mut pairs = base.to_vec();
        pairs.push((a, b, shared));
        let r = cluster_from_counts(&pairs, &[], &config);
        let a_clusters = r.clusters_of(a).to_vec();
        let b_clusters = r.clusters_of(b).to_vec();
        let combined = a_clusters == b_clusters && a_clusters.len() == 1;
        let overlapped = !combined
            && a_clusters.iter().any(|c| r.cluster(*c).contains(b))
            && b_clusters.iter().any(|c| r.cluster(*c).contains(a));
        let action = if combined {
            "clusters combined into one"
        } else if overlapped {
            "files inserted, but clusters not combined"
        } else {
            "no action"
        };
        println!("{:<16} {:<44} {}", label, action, r.len());
    }
}
