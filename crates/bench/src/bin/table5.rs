//! Table 5: hours until the first miss, for failed disconnections.
//!
//! For each machine and severity class (including automatically detected
//! misses), the mean, median, σ, and range of the time from disconnection
//! start to the first miss at that severity. The paper's reading: misses,
//! when they occurred, often came relatively soon after disconnection
//! (small medians), yet well within much longer disconnections — users
//! kept working after a miss.
//!
//! Run with: `cargo run -p seer-bench --bin table5 --release`
//! (optional arg: days cap)

use seer_bench::calibration::live_budget;
use seer_replication::Severity;
use seer_sim::{run_live, LiveConfig};
use seer_stats::Summary;
use seer_workload::{generate, MachineProfile};

fn main() {
    let days_cap: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(u32::MAX);
    println!("Table 5 — hours until first miss for failed disconnections\n");
    println!(
        "{:<5} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "User", "Sev.", "mean x̄", "median", "σ", "Min", "Max"
    );
    for profile in MachineProfile::paper_machines() {
        let profile = profile.scaled_to_days(days_cap.min(profile.days));
        let seed = 1000 + u64::from(profile.name.as_bytes()[0]);
        let workload = generate(&profile, seed);
        let budget = live_budget(&workload, seed);
        let cfg = LiveConfig {
            hoard_bytes: budget,
            size_seed: seed,
            ..LiveConfig::default()
        };
        let result = run_live(&workload, &cfg);
        let by_sev = result.first_miss_hours();
        let mut keys: Vec<Option<Severity>> = by_sev.keys().copied().collect();
        keys.sort_by_key(|k| k.map_or(99, |s| s.code()));
        for sev in keys {
            let hours = &by_sev[&sev];
            let Some(s) = Summary::of(hours) else {
                continue;
            };
            let label = sev.map_or("Auto".to_owned(), |s| s.code().to_string());
            let median = if s.n >= 4 {
                format!("{:8.2}", s.median)
            } else {
                format!("{:>8}", "—")
            };
            println!(
                "{:<5} {:>5} {:>8.2} {} {:>8.2} {:>8.2} {:>8.2}",
                profile.name, label, s.mean, median, s.stddev, s.min, s.max,
            );
        }
    }
    println!("\n(rows absent for machines or severities with no misses, as in the");
    println!(" paper; medians omitted below 4 samples, also as in the paper)");
}
