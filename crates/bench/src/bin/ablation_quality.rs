//! Quality ablations: what each design choice buys, measured on cluster
//! quality against ground truth and on the weekly miss-free hoard size.
//!
//! Covers the design choices DESIGN.md calls out:
//! * geometric vs arithmetic reduction (§3.1.2),
//! * temporal vs sequence vs lifetime distance (Definitions 1–3),
//! * per-process vs merged reference streams (§4.7),
//! * frequent-file filtering on/off (§4.2),
//! * the four meaningless-process strategies (§4.1).
//!
//! Run with: `cargo run -p seer-bench --bin ablation_quality --release`

use seer_bench::{cluster_quality, kb};
use seer_core::{SeerConfig, SeerEngine};
use seer_distance::{DistanceKind, ReductionKind};
use seer_observer::MeaninglessStrategy;
use seer_sim::{run_missfree, MissFreeConfig};
use seer_trace::EventSink;
use seer_workload::{generate, MachineProfile, Workload};

fn evaluate(name: &str, workload: &Workload, config: SeerConfig) {
    // Cluster quality.
    let mut engine = SeerEngine::new(config.clone());
    for ev in &workload.trace.events {
        engine.on_event(ev, &workload.trace.strings);
    }
    let clustering = engine.recluster().clone();
    let q = cluster_quality(workload, &engine, &clustering);
    // Weekly miss-free size.
    let cfg = MissFreeConfig {
        seer: config,
        ..MissFreeConfig::weekly()
    };
    let out = run_missfree(workload, &cfg);
    let ws = out.mean_of(|p| p.working_set);
    let seer = out.mean_of(|p| p.seer.bytes);
    println!(
        "{:<34} {:>7.3} {:>9.3} {:>7.3} {:>11.1} {:>9.2}",
        name,
        q.purity,
        q.cohesion,
        q.f1(),
        kb(seer as u64),
        if ws > 0.0 { seer / ws } else { 0.0 },
    );
}

fn main() {
    let profile = MachineProfile::by_name("F").expect("F").scaled_to_days(45);
    let workload = generate(&profile, 31);
    println!(
        "{:<34} {:>7} {:>9} {:>7} {:>11} {:>9}",
        "variant", "purity", "cohesion", "f1", "seer(KB)", "seer/ws"
    );

    evaluate("baseline (paper design)", &workload, SeerConfig::default());

    let mut c = SeerConfig::default();
    c.distance.reduction = ReductionKind::Arithmetic;
    evaluate("arithmetic mean (§3.1.2)", &workload, c);

    let mut c = SeerConfig::default();
    c.distance.kind = DistanceKind::Temporal;
    evaluate("temporal distance (Def. 1)", &workload, c);

    let mut c = SeerConfig::default();
    c.distance.kind = DistanceKind::Sequence;
    evaluate("sequence distance (Def. 2)", &workload, c);

    let mut c = SeerConfig::default();
    c.distance.per_process = false;
    evaluate("merged streams (no §4.7)", &workload, c);

    let mut c = SeerConfig::default();
    c.observer.frequent_fraction = 2.0; // Disable frequent-file detection.
    evaluate("no frequent filter (no §4.2)", &workload, c);

    for (name, strategy) in [
        (
            "meaningless: control list only",
            MeaninglessStrategy::ControlListOnly,
        ),
        (
            "meaningless: dir-open forever",
            MeaninglessStrategy::DirOpenForever,
        ),
        (
            "meaningless: while dir open",
            MeaninglessStrategy::DirOpenWhileOpen,
        ),
        (
            "meaningless: access ratio (SEER)",
            MeaninglessStrategy::PotentialAccessRatio,
        ),
    ] {
        let mut c = SeerConfig::default();
        c.observer.meaningless_strategy = strategy;
        evaluate(name, &workload, c);
    }

    println!("\nMeasured shape (see EXPERIMENTS.md): the two filters §4 spends the most");
    println!("text on dominate — disabling frequent-file filtering or meaningless-");
    println!("process detection collapses purity (shared libraries / find sweeps fuse");
    println!("projects) and inflates the miss-free hoard by ~20%. The distance-");
    println!("definition and reduction variants agree on neighbor *ordering* for this");
    println!("workload, so clustering is insensitive to them here; the paper likewise");
    println!("treats them as refinements rather than make-or-break choices.");
}
