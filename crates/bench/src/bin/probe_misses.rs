//! Diagnostic: list the paths behind live-simulation misses.
//!
//! Run with: `cargo run -p seer-bench --bin probe_misses --release -- D 60 60000`

use seer_sim::{run_live, LiveConfig};
use seer_workload::{generate, MachineProfile};
use std::collections::HashMap;

fn main() {
    let machine = std::env::args().nth(1).unwrap_or_else(|| "D".into());
    let days: u32 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    let scale: u64 = std::env::args()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000);
    let profile = MachineProfile::by_name(&machine)
        .expect("machine")
        .scaled_to_days(days);
    let seed = 1000 + u64::from(profile.name.as_bytes()[0]);
    let workload = generate(&profile, seed);
    let _ = scale;
    let budget = {
        use seer_sim::{SizeModel, UniverseBuilder};
        use seer_trace::Timestamp;
        let total = workload
            .trace
            .events
            .last()
            .map_or(Timestamp::ZERO, |e| e.time);
        let u = UniverseBuilder::with_period(total + Timestamp::from_hours(1), total)
            .build(&workload.trace);
        let mut sizes = SizeModel::new(&workload.fs, seed);
        let bytes: u64 = u.paths.iter().map(|(_, p)| sizes.size_of_path(p)).sum();
        (bytes as f64 * 1.2) as u64
    };
    let cfg = LiveConfig {
        hoard_bytes: budget,
        size_seed: seed,
        ..LiveConfig::default()
    };
    let result = run_live(&workload, &cfg);
    let _counts: HashMap<(), ()> = HashMap::new();
    for m in result.misses.iter().take(40) {
        let sev = m
            .severity
            .map_or("auto".to_owned(), |s| s.code().to_string());
        println!(
            "disc {:>3}  start {:>8.1}h  dur {:>7.1}h  +{:>6.2}h  sev={:>4}  {}",
            m.disconnection,
            workload.schedule[m.disconnection].start.as_hours_f64(),
            workload.schedule[m.disconnection].hours(),
            m.hours_into,
            sev,
            m.path
        );
    }
}
