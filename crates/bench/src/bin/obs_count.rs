//! Layered per-event cost breakdown: observer alone, observer + distance,
//! and the full engine, over the machine-F 90-day workload. Reports the
//! minimum of several passes to suppress scheduler noise.

use seer_core::SeerEngine;
use seer_distance::{DistanceConfig, DistanceEngine};
use seer_observer::{Observer, ObserverConfig, Reference, ReferenceSink};
use seer_trace::{EventSink, PathTable};
use seer_workload::{generate, MachineProfile};
use std::time::Instant;

struct Null(u64);
impl ReferenceSink for Null {
    fn on_reference(&mut self, _r: &Reference, _paths: &PathTable) {
        self.0 += 1;
    }
}

const PASSES: usize = 5;

fn main() {
    let profile = MachineProfile {
        days: 90,
        ..MachineProfile::by_name("F").expect("F")
    };
    let workload = generate(&profile, 9);
    let n = workload.trace.len() as f64;

    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut obs = Observer::new(ObserverConfig::default(), Null(0));
        let t = Instant::now();
        for ev in &workload.trace.events {
            obs.on_event(ev, &workload.trace.strings);
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e6 / n);
    }
    println!("observer+null:     {best:.3} us/event");

    let mut best = f64::INFINITY;
    let mut n_obs = 0;
    for _ in 0..PASSES {
        let mut obs = Observer::new(
            ObserverConfig::default(),
            DistanceEngine::new(DistanceConfig::default()),
        );
        let t = Instant::now();
        for ev in &workload.trace.events {
            obs.on_event(ev, &workload.trace.strings);
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e6 / n);
        n_obs = obs.sink().stats().observations;
    }
    println!(
        "observer+distance: {best:.3} us/event (obs/event={:.1})",
        n_obs as f64 / n
    );

    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut engine = SeerEngine::default();
        let t = Instant::now();
        for ev in &workload.trace.events {
            engine.on_event(ev, &workload.trace.strings);
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e6 / n);
    }
    println!("full engine:       {best:.3} us/event");
}
