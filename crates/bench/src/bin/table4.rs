//! Table 4: failed disconnections at each severity, per machine.
//!
//! The paper ran its nine machines live with 50 MB hoards (98 MB for G),
//! sizes "deliberately chosen unrealistically small … to stress the
//! system": post-analysis showed machine F's working set often exceeded
//! its 50 MB hoard, so F (and only F) suffered a significant failure rate
//! (13 % of disconnections), mostly at the unobtrusive severities 3–4, and
//! no machine ever hit severity 0.
//!
//! Our workload scales file *counts* down much more than file sizes, so a
//! single absolute budget cannot reproduce the paper's per-machine stress.
//! Instead each machine's budget preserves the paper's stress relation —
//! hoard versus per-disconnection demand: a base covering the always-hoard
//! system files plus a multiple of the machine's mean disconnection
//! working set. F's multiple sits at its demand (its working set "often
//! exceeded" the hoard); everyone else gets comfortable headroom. See
//! EXPERIMENTS.md for the calibration table.
//!
//! Run with: `cargo run -p seer-bench --bin table4 --release`
//! (optional arg: days cap)

use seer_bench::calibration::live_budget;
use seer_replication::Severity;
use seer_sim::{run_live, LiveConfig, LiveResult};
use seer_workload::{generate, MachineProfile};

fn main() {
    let days_cap: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(u32::MAX);
    println!("Table 4 — failed disconnections by severity (hoard in paper-MB labels)\n");
    println!(
        "{:<5} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>9} {:>6} {:>7}",
        "User", "Hoard", "0", "1", "2", "3", "4", "Any Sev.", "Auto", "#Disc"
    );
    for profile in MachineProfile::paper_machines() {
        let profile = profile.scaled_to_days(days_cap.min(profile.days));
        let result = run(&profile);
        let row: Vec<usize> = Severity::ALL.iter().map(|&s| result.count_at(s)).collect();
        println!(
            "{:<5} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>9} {:>6} {:>7}",
            profile.name,
            profile.hoard_size_mb,
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            result.failed_disconnections(),
            result.auto_count(),
            result.n_disconnections,
        );
    }
    println!("\npaper shape: zero severity-0 failures anywhere; F (and only F) with a");
    println!("significant failure rate, mostly at severities 3–4; scattered auto-only");
    println!("detections elsewhere that users did not consider failures.");
}

fn run(profile: &MachineProfile) -> LiveResult {
    let seed = 1000 + u64::from(profile.name.as_bytes()[0]);
    let workload = generate(profile, seed);
    let budget = live_budget(&workload, seed);
    let cfg = LiveConfig {
        hoard_bytes: budget,
        size_seed: seed,
        ..LiveConfig::default()
    };
    run_live(&workload, &cfg)
}
