//! Figure 2: mean working sets and miss-free hoard sizes for the two
//! managers, per machine, for daily and weekly simulated disconnections,
//! with the investigator variants (B*, F*, G*).
//!
//! Each stacked bar of the paper decomposes as: working set (bottom), the
//! extra space SEER's clustering needs to stay miss-free (middle), and the
//! further extra LRU needs (top). This binary prints those three values
//! with 99 % confidence half-widths, pooled over repetitions with
//! different random seeds (§5.1.2).
//!
//! Run with: `cargo run -p seer-bench --bin figure2 --release`
//! (optionally pass a days cap, e.g. `figure2 60`, to shorten the run)

use seer_bench::{bar, kb};
use seer_sim::{run_missfree, MissFreeConfig};
use seer_stats::Summary;
use seer_workload::{generate, MachineProfile};

const SEEDS: [u64; 3] = [101, 202, 303];

fn main() {
    let days_cap: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(u32::MAX);
    println!("Figure 2 — mean working set and miss-free hoard sizes (KB, model scale)\n");
    println!(
        "{:<9} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "machine", "period", "working", "seer", "lru", "lru/seer", "ci99(seer)"
    );
    for profile in MachineProfile::paper_machines() {
        let profile = profile.scaled_to_days(days_cap.min(profile.days));
        let starred = matches!(profile.name.as_str(), "B" | "F" | "G");
        for investigators in [false, true] {
            if investigators && !starred {
                continue;
            }
            let label = if investigators {
                format!("{}*", profile.name)
            } else {
                profile.name.clone()
            };
            for (period_name, base_cfg) in [
                ("daily", MissFreeConfig::daily()),
                ("weekly", MissFreeConfig::weekly()),
            ] {
                let mut ws = Vec::new();
                let mut seer = Vec::new();
                let mut lru = Vec::new();
                for seed in SEEDS {
                    // Perturb per machine so same-parameter machines (C
                    // and H share a Table 3 row) get distinct workloads.
                    let seed = seed.wrapping_add(u64::from(profile.name.as_bytes()[0]) * 7919);
                    let workload = generate(&profile, seed);
                    let cfg = MissFreeConfig {
                        investigators,
                        size_seed: seed,
                        ..base_cfg.clone()
                    };
                    let out = run_missfree(&workload, &cfg);
                    for p in out.active_periods() {
                        ws.push(p.working_set as f64);
                        seer.push(p.seer.bytes as f64);
                        lru.push(p.lru.bytes as f64);
                    }
                }
                let (Some(ws_s), Some(seer_s), Some(lru_s)) =
                    (Summary::of(&ws), Summary::of(&seer), Summary::of(&lru))
                else {
                    println!("{label:<9} {period_name:>7}  (no active periods)");
                    continue;
                };
                println!(
                    "{:<9} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>9.2} {:>9.1}  {}",
                    label,
                    period_name,
                    kb(ws_s.mean as u64),
                    kb(seer_s.mean as u64),
                    kb(lru_s.mean as u64),
                    lru_s.mean / seer_s.mean,
                    kb(seer_s.ci99_half_width() as u64),
                    bar(lru_s.mean, 16_000_000.0, 28),
                );
            }
        }
    }
    println!("\npaper shape: SEER only slightly above the working set; LRU frequently");
    println!("several times larger; investigators (starred) no significant change.");
}
