//! Shared helpers for the SEER benchmark harness and table/figure
//! regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see `DESIGN.md`'s experiment index); the Criterion
//! benches in `benches/` cover the §5.3 performance claims and the
//! ablations. This library holds what they share: cluster-quality scoring
//! against the workload's ground-truth projects, and small formatting
//! utilities.

#![warn(missing_docs)]

pub mod calibration;

use seer_cluster::Clustering;
use seer_core::SeerEngine;
use seer_trace::FileId;
use seer_workload::Workload;
use std::collections::HashMap;

/// How well a clustering matches the workload's ground-truth projects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterQuality {
    /// Of all same-cluster file pairs (both in ground-truth projects),
    /// the fraction belonging to the same project (precision).
    pub purity: f64,
    /// Of all same-project file pairs that SEER has clustered at all, the
    /// fraction sharing a cluster (recall).
    pub cohesion: f64,
}

impl ClusterQuality {
    /// Harmonic mean of purity and cohesion.
    #[must_use]
    pub fn f1(&self) -> f64 {
        if self.purity + self.cohesion == 0.0 {
            0.0
        } else {
            2.0 * self.purity * self.cohesion / (self.purity + self.cohesion)
        }
    }
}

/// Scores `clustering` against the workload's project ground truth.
///
/// Only files belonging to some ground-truth project participate; system
/// files, mail, and documents have no defined project.
#[must_use]
pub fn cluster_quality(
    workload: &Workload,
    engine: &SeerEngine,
    clustering: &Clustering,
) -> ClusterQuality {
    // Ground truth: engine file id → project index.
    let mut truth: HashMap<FileId, usize> = HashMap::new();
    for (i, p) in workload.projects.iter().enumerate() {
        for f in p.all_files() {
            if let Some(id) = engine.paths().get(f) {
                truth.insert(id, i);
            }
        }
    }
    let mut same_cluster_pairs = 0u64;
    let mut same_cluster_same_project = 0u64;
    for cluster in &clustering.clusters {
        let members: Vec<(FileId, usize)> = cluster
            .files
            .iter()
            .filter_map(|f| truth.get(f).map(|&p| (*f, p)))
            .collect();
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                same_cluster_pairs += 1;
                if members[i].1 == members[j].1 {
                    same_cluster_same_project += 1;
                }
            }
        }
    }
    // Cohesion: same-project pairs among clustered files that share a
    // cluster.
    let mut project_files: HashMap<usize, Vec<FileId>> = HashMap::new();
    for (&f, &p) in &truth {
        if !clustering.clusters_of(f).is_empty() {
            project_files.entry(p).or_default().push(f);
        }
    }
    let mut same_project_pairs = 0u64;
    let mut same_project_shared = 0u64;
    for files in project_files.values() {
        for i in 0..files.len() {
            for j in i + 1..files.len() {
                same_project_pairs += 1;
                let ci = clustering.clusters_of(files[i]);
                let cj = clustering.clusters_of(files[j]);
                if ci.iter().any(|c| cj.contains(c)) {
                    same_project_shared += 1;
                }
            }
        }
    }
    ClusterQuality {
        purity: ratio(same_cluster_same_project, same_cluster_pairs),
        cohesion: ratio(same_project_shared, same_project_pairs),
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Renders a proportional ASCII bar of `value` against `max` within
/// `width` columns.
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// Formats a byte count as fixed-point megabytes.
#[must_use]
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1_048_576.0
}

/// Formats a byte count as fixed-point kilobytes.
#[must_use]
pub fn kb(bytes: u64) -> f64 {
    bytes as f64 / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_math() {
        let q = ClusterQuality {
            purity: 1.0,
            cohesion: 0.5,
        };
        assert!((q.f1() - 2.0 / 3.0).abs() < 1e-12);
        let zero = ClusterQuality {
            purity: 0.0,
            cohesion: 0.0,
        };
        assert_eq!(zero.f1(), 0.0);
    }

    #[test]
    fn unit_helpers() {
        assert!((mb(1_048_576) - 1.0).abs() < 1e-12);
        assert!((kb(2048) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10, "clamped");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
