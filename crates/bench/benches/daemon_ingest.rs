//! Criterion bench: daemon ingestion cost at different client batch sizes.
//!
//! Two axes per batch size (1, 64, 1024 events per frame):
//! - `socket`: the full path — wire serialization, Unix socket, bounded
//!   pipeline, engine actor — measured by streaming a workload trace and
//!   waiting for the flush acknowledgement.
//! - `engine_direct`: the same events applied in-process through
//!   [`seer_trace::EventSink::on_batch`], isolating what the transport
//!   and pipeline add on top of raw engine cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seer_core::SeerEngine;
use seer_daemon::{Daemon, DaemonClient, DaemonConfig};
use seer_trace::EventSink;
use seer_workload::{generate, MachineProfile};

fn bench_daemon_ingest(c: &mut Criterion) {
    let profile = MachineProfile {
        days: 5,
        ..MachineProfile::by_name("A").expect("A")
    };
    let trace = generate(&profile, 17).trace;
    let mut group = c.benchmark_group("daemon_ingest");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);

    for &chunk in &[1usize, 64, 1024] {
        group.bench_with_input(BenchmarkId::new("socket", chunk), &chunk, |b, &chunk| {
            let dir = std::env::temp_dir()
                .join(format!("seer-bench-ingest-{chunk}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            let handle = Daemon::spawn(DaemonConfig::new(dir.join("sock"))).expect("spawn");
            let mut client = DaemonClient::connect(handle.socket_path(), "bench").expect("connect");
            b.iter(|| {
                client.send_trace(&trace, chunk).expect("send");
                client.flush().expect("flush")
            });
            drop(client);
            handle.kill();
            std::fs::remove_dir_all(&dir).ok();
        });

        group.bench_with_input(
            BenchmarkId::new("engine_direct", chunk),
            &chunk,
            |b, &chunk| {
                let mut engine = SeerEngine::default();
                b.iter(|| {
                    for batch in trace.events.chunks(chunk) {
                        engine.on_batch(batch, &trace.strings);
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_daemon_ingest);
criterion_main!(benches);
