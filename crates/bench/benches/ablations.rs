//! Criterion bench: processing-cost ablations of the design choices
//! DESIGN.md calls out (distance definition, reduction, per-process
//! streams, frequent-file filtering).
//!
//! The *quality* impact of the same choices is reported by the
//! `ablation_quality` binary; these benches show their time cost.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use seer_core::{SeerConfig, SeerEngine};
use seer_distance::{DistanceKind, ReductionKind};
use seer_trace::EventSink;
use seer_workload::{generate, MachineProfile, Workload};

fn workload() -> Workload {
    let profile = MachineProfile {
        days: 8,
        ..MachineProfile::by_name("F").expect("F")
    };
    generate(&profile, 23)
}

fn run(workload: &Workload, config: SeerConfig) -> SeerEngine {
    let mut engine = SeerEngine::new(config);
    for ev in &workload.trace.events {
        engine.on_event(ev, &workload.trace.strings);
    }
    engine
}

fn bench_ablations(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(15);

    for kind in [
        DistanceKind::Temporal,
        DistanceKind::Sequence,
        DistanceKind::Lifetime,
    ] {
        group.bench_with_input(
            BenchmarkId::new("distance_kind", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter_batched(
                    || {
                        let mut cfg = SeerConfig::default();
                        cfg.distance.kind = kind;
                        cfg
                    },
                    |cfg| run(&w, cfg),
                    BatchSize::LargeInput,
                );
            },
        );
    }

    for reduction in [ReductionKind::Arithmetic, ReductionKind::Geometric] {
        group.bench_with_input(
            BenchmarkId::new("reduction", format!("{reduction:?}")),
            &reduction,
            |b, &reduction| {
                b.iter_batched(
                    || {
                        let mut cfg = SeerConfig::default();
                        cfg.distance.reduction = reduction;
                        cfg
                    },
                    |cfg| run(&w, cfg),
                    BatchSize::LargeInput,
                );
            },
        );
    }

    for per_process in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("per_process", per_process),
            &per_process,
            |b, &per_process| {
                b.iter_batched(
                    || {
                        let mut cfg = SeerConfig::default();
                        cfg.distance.per_process = per_process;
                        cfg
                    },
                    |cfg| run(&w, cfg),
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
