//! Criterion bench: per-event observation cost (§5.3's 35 µs claim).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use seer_core::SeerEngine;
use seer_observer::reference::CollectRefs;
use seer_observer::{Observer, ObserverConfig};
use seer_trace::EventSink;
use seer_workload::{generate, MachineProfile};

fn bench_observer(c: &mut Criterion) {
    let profile = MachineProfile {
        days: 10,
        ..MachineProfile::by_name("F").expect("F")
    };
    let workload = generate(&profile, 17);
    let trace = workload.trace;
    let mut group = c.benchmark_group("observer_cost");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);

    // Observer alone (the syscall-tracing path of §5.3).
    group.bench_function("observer_only", |b| {
        b.iter_batched(
            || Observer::new(ObserverConfig::default(), CollectRefs::default()),
            |mut obs| {
                for ev in &trace.events {
                    obs.on_event(ev, &trace.strings);
                }
                obs
            },
            BatchSize::LargeInput,
        );
    });

    // Full pipeline: observer + correlator (distance maintenance).
    group.bench_function("full_engine", |b| {
        b.iter_batched(
            SeerEngine::default,
            |mut engine| {
                for ev in &trace.events {
                    engine.on_event(ev, &trace.strings);
                }
                engine
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_observer);
criterion_main!(benches);
