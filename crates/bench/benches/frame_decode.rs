//! Microbenchmarks for events-frame decoding: the JSON line path (wire
//! v2–v5) against the v6 binary path, on a realistic 256-event batch
//! drawn from a generated workload.
//!
//! The daemon decodes every inbound frame on the connection reader
//! thread, so this is the per-byte cost that bounds ingest throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seer_trace::wire::{self, ClientFrame};
use seer_trace::TraceEvent;
use seer_workload::{generate, MachineProfile};

const BATCH: usize = 256;

fn sample_events() -> Vec<TraceEvent> {
    let profile = MachineProfile {
        days: 2,
        ..MachineProfile::by_name("A").expect("A")
    };
    let workload = generate(&profile, 17);
    workload.trace.events[..BATCH.min(workload.trace.len())].to_vec()
}

fn bench_decode_json(c: &mut Criterion) {
    let events = sample_events();
    let mut line = Vec::new();
    wire::write_frame(
        &mut line,
        &ClientFrame::Events {
            events,
            trace_id: Some(7),
        },
    )
    .expect("encode");
    let mut g = c.benchmark_group("frame_decode");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("json", |b| {
        b.iter(|| {
            let text =
                std::str::from_utf8(std::hint::black_box(&line[..line.len() - 1])).expect("utf8");
            let frame: ClientFrame = serde_json::from_str(text).expect("decode");
            std::hint::black_box(frame);
        });
    });
    g.finish();
}

fn bench_decode_binary(c: &mut Criterion) {
    let events = sample_events();
    let frame = wire::encode_events_binary(&events, Some(7));
    let payload = &frame[5..];
    let mut g = c.benchmark_group("frame_decode");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("binary", |b| {
        b.iter(|| {
            let decoded =
                wire::decode_events_binary(std::hint::black_box(payload)).expect("decode");
            std::hint::black_box(decoded);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_decode_json, bench_decode_binary);
criterion_main!(benches);
