//! Criterion bench: cluster formation cost (§5.3's "about 2 minutes of
//! CPU time", §3.3.1's linear-time requirement).
//!
//! Verifies the O(N·n) scaling of the modified Jarvis–Patrick algorithm by
//! clustering synthetic neighbor tables of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seer_cluster::{cluster_files, ClusterConfig};
use seer_distance::{DistanceConfig, NeighborTable};
use seer_trace::{FileId, PathTable};

/// Builds a table of `n_files` files in implicit projects of ~12, each
/// file related to its project neighbors.
fn build_table(n_files: u32) -> (NeighborTable, PathTable) {
    let dc = DistanceConfig::default();
    let mut table = NeighborTable::new(
        dc.n_neighbors,
        dc.reduction,
        dc.aging_refs,
        dc.deletion_delay,
        dc.seed,
    );
    let mut paths = PathTable::new();
    for f in 0..n_files {
        let project = f / 12;
        paths.intern(&format!("/home/user/proj{project}/f{f}.c"));
    }
    for f in 0..n_files {
        let project = f / 12;
        let base = project * 12;
        for k in 0..12u32 {
            let to = base + (f - base + k + 1) % 12;
            if to != f && to < n_files {
                table.observe(FileId(f), FileId(to), f64::from(k % 4));
            }
        }
    }
    (table, paths)
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group.sample_size(15);
    for n_files in [1_000u32, 5_000, 20_000] {
        let (table, paths) = build_table(n_files);
        let config = ClusterConfig::default();
        group.throughput(Throughput::Elements(u64::from(n_files)));
        group.bench_with_input(BenchmarkId::new("files", n_files), &n_files, |b, _| {
            b.iter(|| cluster_files(&table, &paths, &[], &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
