//! Criterion bench: hoard selection (ranking + whole-project packing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer_cluster::Clustering;
use seer_core::{select_hoard, ActivityTracker};
use seer_trace::{FileId, Seq, Timestamp};
use std::collections::HashSet;

fn setup(n_files: u32) -> (Clustering, ActivityTracker) {
    let members: Vec<Vec<FileId>> = (0..n_files / 15)
        .map(|c| (0..15).map(|k| FileId(c * 15 + k)).collect())
        .collect();
    let clustering = Clustering::from_members(members);
    let mut activity = ActivityTracker::new();
    for f in 0..n_files {
        activity.record(
            FileId(f),
            Seq(u64::from((f * 2_654_435_761) % n_files)),
            Timestamp::from_secs(u64::from(f)),
        );
    }
    (clustering, activity)
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("hoard_selection");
    group.sample_size(30);
    for n_files in [1_000u32, 10_000] {
        let (clustering, activity) = setup(n_files);
        let always = HashSet::new();
        let budget = u64::from(n_files) * 500; // Roughly half fits.
        group.bench_with_input(BenchmarkId::new("files", n_files), &n_files, |b, _| {
            b.iter(|| select_hoard(&clustering, &activity, &always, &|_| 1_000, budget));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
