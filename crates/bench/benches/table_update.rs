//! Microbenchmarks for the neighbor-table row update — the single hottest
//! call in the ingest path (one [`NeighborTable::observe`] per distance
//! observation, ~4 per trace event on desktop workloads).
//!
//! Three regimes bracket the real cost:
//!
//! - `existing_hot`: repeated updates to one cache-resident row — the pure
//!   ALU cost of the find-and-fold path.
//! - `existing_cold`: updates scattered over thousands of rows — adds the
//!   cache-miss cost of real table sizes (§5.3 reports ~10k tracked files).
//! - `full_row_reject`: a far candidate probing a full row — the worst-case
//!   priority scan (deletion scan, then max-distance scan over all n).

use criterion::{criterion_group, criterion_main, Criterion};
use seer_distance::{NeighborTable, ReductionKind};
use seer_trace::FileId;

const N: usize = 20;

fn full_table(rows: u32) -> NeighborTable {
    let mut t = NeighborTable::new(N, ReductionKind::Geometric, 1_000_000, 100, 42);
    for i in 0..rows {
        for k in 0..N as u32 {
            let to = (i + 1 + k) % rows.max(2);
            t.observe(FileId(i), FileId(to), f64::from(k % 7));
        }
    }
    t
}

fn bench_existing_hot(c: &mut Criterion) {
    let mut t = full_table(64);
    c.bench_function("table_update/existing_hot", |b| {
        b.iter(|| {
            // Entry 10 of row 3 exists (to = 3 + 1 + 10 = 14).
            std::hint::black_box(t.observe(FileId(3), FileId(14), 3.0));
        });
    });
}

fn bench_existing_cold(c: &mut Criterion) {
    const ROWS: u32 = 8_192;
    let mut t = full_table(ROWS);
    // Pseudo-random row order defeats the prefetcher the same way real
    // reference streams do.
    let order: Vec<u32> = (0..ROWS)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % ROWS)
        .collect();
    let mut cursor = 0usize;
    c.bench_function("table_update/existing_cold", |b| {
        b.iter(|| {
            let i = order[cursor];
            cursor = (cursor + 1) % order.len();
            let to = (i + 1 + 10) % ROWS;
            std::hint::black_box(t.observe(FileId(i), FileId(to), 3.0));
        });
    });
}

fn bench_full_row_reject(c: &mut Criterion) {
    // A rejected candidate leaves the table unchanged, so one table serves
    // every iteration.
    let mut t = full_table(64);
    c.bench_function("table_update/full_row_reject", |b| {
        b.iter(|| {
            // Candidate distance far above every stored entry: walks
            // priority 1 and 2 in full, then rejects.
            std::hint::black_box(t.observe(FileId(3), FileId(60), 1.0e6));
        });
    });
}

criterion_group!(
    benches,
    bench_existing_hot,
    bench_existing_cold,
    bench_full_row_reject
);
criterion_main!(benches);
