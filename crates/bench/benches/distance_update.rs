//! Criterion bench: semantic-distance maintenance (§3.1.3).
//!
//! Measures the cost of one open's worth of distance observations as the
//! window `M` and neighbor count `n` vary — the constants whose O(N²)
//! alternatives the heuristic exists to avoid.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use seer_distance::{DistanceConfig, DistanceEngine};
use seer_observer::{RefKind, Reference, ReferenceSink};
use seer_trace::{FileId, PathTable, Pid, Seq, Timestamp};

/// Builds a reference stream touching `files` distinct files round-robin.
fn stream(len: u64, files: u32) -> Vec<Reference> {
    (0..len)
        .map(|i| Reference {
            seq: Seq(i),
            time: Timestamp::from_millis(i),
            pid: Pid(1),
            file: FileId((i % u64::from(files)) as u32),
            kind: if i % 2 == 0 {
                RefKind::Open {
                    read: true,
                    write: false,
                    exec: false,
                }
            } else {
                RefKind::Close
            },
        })
        .collect()
}

fn bench_distance(c: &mut Criterion) {
    let paths = PathTable::new();
    let mut group = c.benchmark_group("distance_update");
    group.sample_size(20);
    for (m, n) in [(50u64, 10usize), (100, 20), (200, 40)] {
        let refs = stream(20_000, 500);
        group.bench_with_input(
            BenchmarkId::new("window_neighbors", format!("M{m}_n{n}")),
            &(m, n),
            |b, &(m, n)| {
                b.iter_batched(
                    || {
                        DistanceEngine::new(DistanceConfig {
                            window_m: m,
                            n_neighbors: n,
                            ..DistanceConfig::default()
                        })
                    },
                    |mut engine| {
                        for r in &refs {
                            engine.on_reference(r, &paths);
                        }
                        engine
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
