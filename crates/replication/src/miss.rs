//! Hoard-miss recording (§4.4).

use seer_telemetry::{Counter, Registry};
use seer_trace::{FileId, Timestamp};
use serde::{Deserialize, Serialize};

/// User-assigned severity of a hoard miss (§4.4's five-point scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// 0 — the computer is unusable (e.g. a critical startup file is
    /// missing); cannot even be recorded until reconnection.
    Unusable,
    /// 1 — the current task must change.
    TaskChange,
    /// 2 — activity within the task is modified.
    ActivityChange,
    /// 3 — little or no trouble.
    Minor,
    /// 4 — not needed now; preload the hoard for the future.
    Preload,
}

impl Severity {
    /// All severities in ascending numeric order.
    pub const ALL: [Severity; 5] = [
        Severity::Unusable,
        Severity::TaskChange,
        Severity::ActivityChange,
        Severity::Minor,
        Severity::Preload,
    ];

    /// The paper's numeric code (0–4).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Severity::Unusable => 0,
            Severity::TaskChange => 1,
            Severity::ActivityChange => 2,
            Severity::Minor => 3,
            Severity::Preload => 4,
        }
    }
}

/// One recorded hoard miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissRecord {
    /// The missing file.
    pub file: FileId,
    /// When the miss was recorded.
    pub time: Timestamp,
    /// User-assigned severity (`None` for automatically detected misses,
    /// which carry no user judgment).
    pub severity: Option<Severity>,
    /// Whether the miss was implied (noticed in a listing) rather than a
    /// direct access failure.
    pub implied: bool,
}

/// The miss log: manual recording plus the automatic detector's records.
///
/// The same user action records a miss *and* schedules the file for
/// hoarding at the next reconnection — coupling statistics gathering to a
/// function the user needs, so misses do not go unrecorded.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct MissLog {
    records: Vec<MissRecord>,
    /// Files awaiting hoarding at the next reconnection.
    pending_hoard: Vec<FileId>,
    /// How many records postmortem hooks have already drained via
    /// [`MissLog::take_recent`]. Defaults to zero on deserialization so
    /// a restored log re-offers its history to a fresh hook.
    #[serde(default, skip)]
    drained: usize,
    /// Registry handles, present after [`MissLog::attach_telemetry`].
    /// Not part of the persisted log.
    #[serde(skip)]
    telemetry: Option<MissTelemetry>,
}

/// Registry counters mirroring the log: manual misses by severity code
/// plus the automatic detector's count.
#[derive(Debug, Clone)]
struct MissTelemetry {
    by_severity: Vec<Counter>,
    auto_detected: Counter,
}

impl MissLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> MissLog {
        MissLog::default()
    }

    /// Mirrors future recordings into `registry` as
    /// `seer_replication_misses_total{severity="0".."4"}` and
    /// `seer_replication_auto_misses_total`, and replays already-recorded
    /// misses so a log restored from a snapshot reports correct totals.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        let t = MissTelemetry {
            by_severity: Severity::ALL
                .iter()
                .map(|s| {
                    registry.counter_with(
                        "seer_replication_misses_total",
                        "User-recorded hoard misses by severity code (0=unusable … 4=preload).",
                        &[("severity", &s.code().to_string())],
                    )
                })
                .collect(),
            auto_detected: registry.counter(
                "seer_replication_auto_misses_total",
                "Hoard misses found by the automatic detector (no user judgment).",
            ),
        };
        for r in &self.records {
            match r.severity {
                Some(s) => t.by_severity[s.code() as usize].add(1),
                None => t.auto_detected.add(1),
            }
        }
        self.telemetry = Some(t);
    }

    /// Manually records a miss with a severity, scheduling the file for
    /// future hoarding.
    pub fn record_manual(
        &mut self,
        file: FileId,
        time: Timestamp,
        severity: Severity,
        implied: bool,
    ) {
        self.records.push(MissRecord {
            file,
            time,
            severity: Some(severity),
            implied,
        });
        self.pending_hoard.push(file);
        if let Some(t) = &self.telemetry {
            t.by_severity[severity.code() as usize].add(1);
        }
    }

    /// Records an automatically detected miss (§4.4's backup mechanism).
    pub fn record_auto(&mut self, file: FileId, time: Timestamp) {
        self.records.push(MissRecord {
            file,
            time,
            severity: None,
            implied: false,
        });
        self.pending_hoard.push(file);
        if let Some(t) = &self.telemetry {
            t.auto_detected.add(1);
        }
    }

    /// All records in order.
    #[must_use]
    pub fn records(&self) -> &[MissRecord] {
        &self.records
    }

    /// Count of manual records at one severity.
    #[must_use]
    pub fn count_at(&self, severity: Severity) -> usize {
        self.records
            .iter()
            .filter(|r| r.severity == Some(severity))
            .count()
    }

    /// Count of automatically detected misses.
    #[must_use]
    pub fn auto_count(&self) -> usize {
        self.records.iter().filter(|r| r.severity.is_none()).count()
    }

    /// Takes the files scheduled for hoarding, clearing the queue (called
    /// at reconnection).
    pub fn take_pending(&mut self) -> Vec<FileId> {
        std::mem::take(&mut self.pending_hoard)
    }

    /// Records added since the last call — the postmortem hook. A
    /// provenance capturer polls this after recording misses and builds
    /// a postmortem for each returned record; records stay in the log
    /// (this drains a cursor, not the history).
    pub fn take_recent(&mut self) -> &[MissRecord] {
        let from = self.drained.min(self.records.len());
        self.drained = self.records.len();
        &self.records[from..]
    }

    /// Manual-miss counts indexed by severity code 0..=4.
    #[must_use]
    pub fn severity_histogram(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for r in &self.records {
            if let Some(s) = r.severity {
                out[s.code() as usize] += 1;
            }
        }
        out
    }

    /// Whether any miss has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_codes_match_paper() {
        assert_eq!(Severity::Unusable.code(), 0);
        assert_eq!(Severity::TaskChange.code(), 1);
        assert_eq!(Severity::ActivityChange.code(), 2);
        assert_eq!(Severity::Minor.code(), 3);
        assert_eq!(Severity::Preload.code(), 4);
        assert_eq!(Severity::ALL.len(), 5);
    }

    #[test]
    fn manual_record_schedules_hoarding() {
        let mut log = MissLog::new();
        log.record_manual(
            FileId(7),
            Timestamp::from_hours(2),
            Severity::TaskChange,
            false,
        );
        assert_eq!(log.count_at(Severity::TaskChange), 1);
        assert_eq!(log.take_pending(), vec![FileId(7)]);
        assert!(log.take_pending().is_empty(), "queue cleared");
        assert!(!log.is_empty(), "records persist after take");
    }

    #[test]
    fn telemetry_mirrors_recordings_and_replays_history() {
        let registry = seer_telemetry::Registry::new();
        let mut log = MissLog::new();
        // Recorded before attachment: must be replayed into the counters.
        log.record_manual(FileId(1), Timestamp::ZERO, Severity::Unusable, false);
        log.attach_telemetry(&registry);
        log.record_manual(FileId(2), Timestamp::ZERO, Severity::Unusable, false);
        log.record_manual(FileId(3), Timestamp::ZERO, Severity::Preload, true);
        log.record_auto(FileId(4), Timestamp::ZERO);
        let snap = registry.snapshot();
        let count = |severity: &str| {
            snap.metrics
                .iter()
                .find(|m| {
                    m.name == "seer_replication_misses_total"
                        && m.labels == vec![("severity".to_owned(), severity.to_owned())]
                })
                .map(|m| m.value.clone())
        };
        assert_eq!(
            count("0"),
            Some(seer_telemetry::MetricValue::Counter { total: 2 }),
            "pre-attachment record replayed"
        );
        assert_eq!(
            count("4"),
            Some(seer_telemetry::MetricValue::Counter { total: 1 })
        );
        let auto = snap
            .metrics
            .iter()
            .find(|m| m.name == "seer_replication_auto_misses_total")
            .expect("auto counter");
        assert_eq!(
            auto.value,
            seer_telemetry::MetricValue::Counter { total: 1 }
        );
    }

    #[test]
    fn take_recent_drains_a_cursor_not_the_history() {
        let mut log = MissLog::new();
        log.record_auto(FileId(1), Timestamp::ZERO);
        log.record_manual(FileId(2), Timestamp::ZERO, Severity::Minor, false);
        let first: Vec<MissRecord> = log.take_recent().to_vec();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].file, FileId(1));
        assert!(log.take_recent().is_empty(), "nothing new yet");
        log.record_auto(FileId(3), Timestamp::ZERO);
        let next = log.take_recent();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].file, FileId(3));
        assert_eq!(log.records().len(), 3, "history intact");
        assert_eq!(log.severity_histogram(), [0, 0, 0, 1, 0]);
    }

    #[test]
    fn auto_records_are_counted_separately() {
        let mut log = MissLog::new();
        log.record_auto(FileId(1), Timestamp::ZERO);
        log.record_manual(FileId(2), Timestamp::ZERO, Severity::Minor, true);
        assert_eq!(log.auto_count(), 1);
        assert_eq!(log.count_at(Severity::Minor), 1);
        assert_eq!(log.records().len(), 2);
        assert!(log.records()[1].implied);
    }
}
