//! The narrow interface SEER assumes of a replication substrate (§2).

use seer_trace::FileId;
use serde::{Deserialize, Serialize};

/// What a substrate can do for SEER (§4.4: "Depending on the underlying
/// replication system, detecting a hoard miss can range from trivial to
/// impossible").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Whether a non-local access can be serviced remotely while
    /// connected (FICUS/CODA-style remote access).
    pub remote_access: bool,
    /// Whether a failed access to an existing-but-unhoarded file is
    /// distinguishable from an access to a nonexistent file.
    pub detects_misses: bool,
}

/// Result of one file access through the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Served from the local hoard.
    Local,
    /// Served by remote access (connected, remote-access-capable).
    Remote,
    /// Failed, and the substrate knows the file exists but is unhoarded —
    /// an automatically detectable hoard miss.
    MissDetected,
    /// Failed with an error code indistinguishable from "no such file";
    /// only the user can classify it (manual miss logging, §4.4).
    ErrorIndistinct,
    /// The file genuinely does not exist.
    NotFound,
}

impl AccessOutcome {
    /// Whether the access succeeded.
    #[must_use]
    pub fn ok(self) -> bool {
        matches!(self, AccessOutcome::Local | AccessOutcome::Remote)
    }
}

/// Transport report from installing a hoard.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FillReport {
    /// Files fetched from the remote side.
    pub fetched: u64,
    /// Bytes fetched.
    pub bytes_fetched: u64,
    /// Files evicted from the hoard.
    pub evicted: u64,
    /// Files already present and kept.
    pub retained: u64,
}

/// Report from a reconnection-time reconciliation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconcileReport {
    /// Local updates propagated outward.
    pub pushed: u64,
    /// Remote updates brought in.
    pub pulled: u64,
    /// Conflicting concurrent updates detected (resolved per substrate
    /// policy, cf. FICUS resolvers).
    pub conflicts: u64,
}

/// The substrate interface: hoard installation, access servicing, update
/// tracking, and reconciliation. SEER assumes nothing more (§2).
pub trait ReplicationSystem {
    /// Substrate name for reports.
    fn name(&self) -> &'static str;

    /// Capability profile.
    fn capabilities(&self) -> Capabilities;

    /// Replaces the hoard contents with `want` (file, size) pairs,
    /// fetching what is absent and evicting what is no longer wanted.
    fn fill_hoard(&mut self, want: &[(FileId, u64)]) -> FillReport;

    /// Whether `file` is currently hoarded.
    fn contains(&self, file: FileId) -> bool;

    /// Total hoarded bytes.
    fn hoard_bytes(&self) -> u64;

    /// Sets connectivity state.
    fn set_connected(&mut self, connected: bool);

    /// Current connectivity.
    fn is_connected(&self) -> bool;

    /// Services an access to `file`; `exists` says whether the file exists
    /// anywhere in the namespace (the substrate may or may not be able to
    /// tell on a failure).
    fn access(&mut self, file: FileId, exists: bool) -> AccessOutcome;

    /// Records a local update to a hoarded file (while connected it
    /// propagates immediately; while disconnected it is queued).
    fn record_local_update(&mut self, file: FileId, new_size: u64);

    /// Records an update made at another replica (for conflict modeling).
    fn record_remote_update(&mut self, file: FileId, new_size: u64);

    /// Reconciles queued updates at reconnection.
    fn reconcile(&mut self) -> ReconcileReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_ok() {
        assert!(AccessOutcome::Local.ok());
        assert!(AccessOutcome::Remote.ok());
        assert!(!AccessOutcome::MissDetected.ok());
        assert!(!AccessOutcome::ErrorIndistinct.ok());
        assert!(!AccessOutcome::NotFound.ok());
    }
}
