//! The hoard container shared by all substrates.

use crate::system::FillReport;
use seer_trace::FileId;
use std::collections::HashMap;

/// The set of locally hoarded files with their sizes.
#[derive(Debug, Default, Clone)]
pub struct HoardStore {
    files: HashMap<FileId, u64>,
    bytes: u64,
}

impl HoardStore {
    /// Creates an empty hoard.
    #[must_use]
    pub fn new() -> HoardStore {
        HoardStore::default()
    }

    /// Whether `file` is hoarded.
    #[must_use]
    pub fn contains(&self, file: FileId) -> bool {
        self.files.contains_key(&file)
    }

    /// Size of a hoarded file.
    #[must_use]
    pub fn size_of(&self, file: FileId) -> Option<u64> {
        self.files.get(&file).copied()
    }

    /// Total hoarded bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of hoarded files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the hoard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Inserts or resizes a file.
    pub fn insert(&mut self, file: FileId, size: u64) {
        let old = self.files.insert(file, size).unwrap_or(0);
        self.bytes = self.bytes - old + size;
    }

    /// Removes a file, returning its size.
    pub fn remove(&mut self, file: FileId) -> Option<u64> {
        let size = self.files.remove(&file)?;
        self.bytes -= size;
        Some(size)
    }

    /// Replaces the contents with `want`, producing a transport report.
    pub fn refill(&mut self, want: &[(FileId, u64)]) -> FillReport {
        let mut report = FillReport::default();
        let wanted: HashMap<FileId, u64> = want.iter().copied().collect();
        let current: Vec<FileId> = self.files.keys().copied().collect();
        for f in current {
            if !wanted.contains_key(&f) {
                self.remove(f);
                report.evicted += 1;
            }
        }
        for (&f, &size) in &wanted {
            if self.contains(f) {
                report.retained += 1;
                self.insert(f, size);
            } else {
                report.fetched += 1;
                report.bytes_fetched += size;
                self.insert(f, size);
            }
        }
        report
    }

    /// Iterates over hoarded `(file, size)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (FileId, u64)> + '_ {
        self.files.iter().map(|(&f, &s)| (f, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_accounting() {
        let mut h = HoardStore::new();
        h.insert(FileId(1), 100);
        h.insert(FileId(2), 50);
        assert_eq!(h.bytes(), 150);
        h.insert(FileId(1), 80); // Resize.
        assert_eq!(h.bytes(), 130);
        assert_eq!(h.remove(FileId(2)), Some(50));
        assert_eq!(h.bytes(), 80);
        assert_eq!(h.remove(FileId(2)), None);
    }

    #[test]
    fn refill_reports_transport() {
        let mut h = HoardStore::new();
        h.insert(FileId(1), 10);
        h.insert(FileId(2), 20);
        let report = h.refill(&[(FileId(2), 20), (FileId(3), 30)]);
        assert_eq!(report.evicted, 1, "file 1 evicted");
        assert_eq!(report.retained, 1, "file 2 kept");
        assert_eq!(report.fetched, 1, "file 3 fetched");
        assert_eq!(report.bytes_fetched, 30);
        assert!(!h.contains(FileId(1)));
        assert_eq!(h.bytes(), 50);
    }

    #[test]
    fn empty_refill_clears() {
        let mut h = HoardStore::new();
        h.insert(FileId(1), 10);
        let report = h.refill(&[]);
        assert_eq!(report.evicted, 1);
        assert!(h.is_empty());
        assert_eq!(h.bytes(), 0);
    }
}
