//! The three simulated substrates: RUMOR, CHEAP RUMOR, and CODA analogs.

use crate::store::HoardStore;
use crate::system::{AccessOutcome, Capabilities, FillReport, ReconcileReport, ReplicationSystem};
use seer_trace::FileId;
use std::collections::HashMap;

/// State common to all simulated substrates.
#[derive(Debug, Default, Clone)]
struct BaseState {
    store: HoardStore,
    connected: bool,
    /// Updates made locally while disconnected, awaiting propagation.
    local_dirty: HashMap<FileId, u64>,
    /// Updates made at other replicas, awaiting integration.
    remote_dirty: HashMap<FileId, u64>,
}

impl BaseState {
    fn access(&self, file: FileId, exists: bool, caps: Capabilities) -> AccessOutcome {
        if self.store.contains(file) {
            return AccessOutcome::Local;
        }
        if !exists {
            return AccessOutcome::NotFound;
        }
        if self.connected && caps.remote_access {
            return AccessOutcome::Remote;
        }
        if self.connected {
            // Connected without remote access still reaches the network
            // filesystem outside the replication system's purview.
            return AccessOutcome::Remote;
        }
        if caps.detects_misses {
            AccessOutcome::MissDetected
        } else {
            AccessOutcome::ErrorIndistinct
        }
    }

    fn record_local(&mut self, file: FileId, new_size: u64) {
        if self.store.contains(file) {
            self.store.insert(file, new_size);
            if !self.connected {
                self.local_dirty.insert(file, new_size);
            }
        }
    }

    fn record_remote(&mut self, file: FileId, new_size: u64) {
        if self.connected && self.store.contains(file) {
            // Connected: remote updates arrive immediately.
            self.store.insert(file, new_size);
        } else {
            self.remote_dirty.insert(file, new_size);
        }
    }

    /// Reconciles queues; `local_wins` selects the conflict policy.
    fn reconcile(&mut self, local_wins: bool) -> ReconcileReport {
        let mut report = ReconcileReport::default();
        let local: Vec<FileId> = self.local_dirty.keys().copied().collect();
        for f in &local {
            if self.remote_dirty.contains_key(f) {
                report.conflicts += 1;
            }
        }
        report.pushed = self.local_dirty.len() as u64;
        for (f, size) in self.remote_dirty.drain() {
            let conflicted = self.local_dirty.contains_key(&f);
            if self.store.contains(f) && (!conflicted || !local_wins) {
                self.store.insert(f, size);
            }
            if !conflicted {
                report.pulled += 1;
            }
        }
        self.local_dirty.clear();
        report
    }
}

macro_rules! forward_common {
    () => {
        fn fill_hoard(&mut self, want: &[(FileId, u64)]) -> FillReport {
            self.base.store.refill(want)
        }

        fn contains(&self, file: FileId) -> bool {
            self.base.store.contains(file)
        }

        fn hoard_bytes(&self) -> u64 {
            self.base.store.bytes()
        }

        fn set_connected(&mut self, connected: bool) {
            self.base.connected = connected;
        }

        fn is_connected(&self) -> bool {
            self.base.connected
        }

        fn access(&mut self, file: FileId, exists: bool) -> AccessOutcome {
            self.base.access(file, exists, self.capabilities())
        }

        fn record_local_update(&mut self, file: FileId, new_size: u64) {
            self.base.record_local(file, new_size);
        }

        fn record_remote_update(&mut self, file: FileId, new_size: u64) {
            self.base.record_remote(file, new_size);
        }
    };
}

/// RUMOR analog: user-level, optimistic, peer-to-peer reconciliation.
///
/// No remote access and no miss detection — failed disconnected accesses
/// are indistinguishable from nonexistent files, forcing the manual miss
/// log (§4.4).
#[derive(Debug, Default, Clone)]
pub struct RumorLike {
    base: BaseState,
}

impl RumorLike {
    /// Creates a disconnected, empty substrate.
    #[must_use]
    pub fn new() -> RumorLike {
        RumorLike::default()
    }
}

impl ReplicationSystem for RumorLike {
    fn name(&self) -> &'static str {
        "rumor"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            remote_access: false,
            detects_misses: false,
        }
    }

    fn reconcile(&mut self) -> ReconcileReport {
        // Peer reconciliation: latest update wins; we model local
        // preference, as RUMOR's resolver favors the reconciling replica.
        self.base.reconcile(true)
    }

    forward_common!();
}

/// CHEAP RUMOR analog: custom master–slave replication.
///
/// The laptop is a slave; the master's copy wins conflicts. The custom
/// service reports hoard misses distinctly.
#[derive(Debug, Default, Clone)]
pub struct CheapRumor {
    base: BaseState,
}

impl CheapRumor {
    /// Creates a disconnected, empty substrate.
    #[must_use]
    pub fn new() -> CheapRumor {
        CheapRumor::default()
    }
}

impl ReplicationSystem for CheapRumor {
    fn name(&self) -> &'static str {
        "cheap-rumor"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            remote_access: false,
            detects_misses: true,
        }
    }

    fn reconcile(&mut self) -> ReconcileReport {
        self.base.reconcile(false)
    }

    forward_common!();
}

/// CODA analog: client–server with remote access while connected and
/// distinguishable disconnected misses.
#[derive(Debug, Default, Clone)]
pub struct CodaLike {
    base: BaseState,
}

impl CodaLike {
    /// Creates a disconnected, empty substrate.
    #[must_use]
    pub fn new() -> CodaLike {
        CodaLike::default()
    }
}

impl ReplicationSystem for CodaLike {
    fn name(&self) -> &'static str {
        "coda"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            remote_access: true,
            detects_misses: true,
        }
    }

    fn reconcile(&mut self) -> ReconcileReport {
        // Coda reintegration: local mutations replay at the server; we
        // model local preference with conflicts surfaced.
        self.base.reconcile(true)
    }

    forward_common!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill<S: ReplicationSystem>(s: &mut S) {
        s.fill_hoard(&[(FileId(1), 100), (FileId(2), 200)]);
    }

    #[test]
    fn hoarded_files_are_local_everywhere() {
        let mut r = RumorLike::new();
        fill(&mut r);
        assert_eq!(r.access(FileId(1), true), AccessOutcome::Local);
        assert_eq!(r.hoard_bytes(), 300);
    }

    #[test]
    fn miss_detection_differs_by_substrate() {
        let mut rumor = RumorLike::new();
        let mut cheap = CheapRumor::new();
        let mut coda = CodaLike::new();
        for s in [
            &mut rumor as &mut dyn ReplicationSystem,
            &mut cheap as &mut dyn ReplicationSystem,
            &mut coda as &mut dyn ReplicationSystem,
        ] {
            s.set_connected(false);
        }
        // Existing but unhoarded file, disconnected:
        assert_eq!(
            rumor.access(FileId(9), true),
            AccessOutcome::ErrorIndistinct
        );
        assert_eq!(cheap.access(FileId(9), true), AccessOutcome::MissDetected);
        assert_eq!(coda.access(FileId(9), true), AccessOutcome::MissDetected);
        // Nonexistent file is NotFound everywhere:
        assert_eq!(rumor.access(FileId(9), false), AccessOutcome::NotFound);
        assert_eq!(coda.access(FileId(9), false), AccessOutcome::NotFound);
    }

    #[test]
    fn connected_access_reaches_unhoarded_files() {
        let mut coda = CodaLike::new();
        coda.set_connected(true);
        assert_eq!(coda.access(FileId(5), true), AccessOutcome::Remote);
        assert_eq!(coda.access(FileId(5), false), AccessOutcome::NotFound);
    }

    #[test]
    fn disconnected_updates_push_at_reconcile() {
        let mut r = RumorLike::new();
        fill(&mut r);
        r.set_connected(false);
        r.record_local_update(FileId(1), 150);
        r.set_connected(true);
        let report = r.reconcile();
        assert_eq!(report.pushed, 1);
        assert_eq!(report.conflicts, 0);
    }

    #[test]
    fn conflicting_updates_are_detected() {
        let mut r = RumorLike::new();
        fill(&mut r);
        r.set_connected(false);
        r.record_local_update(FileId(1), 150);
        r.record_remote_update(FileId(1), 175);
        r.record_remote_update(FileId(2), 250);
        let report = r.reconcile();
        assert_eq!(report.conflicts, 1);
        assert_eq!(
            report.pulled, 1,
            "only the non-conflicting remote update counts as pulled"
        );
        // Local wins under rumor: file 1 keeps the local size.
        assert_eq!(r.base.store.size_of(FileId(1)), Some(150));
        assert_eq!(r.base.store.size_of(FileId(2)), Some(250));
    }

    #[test]
    fn master_wins_under_cheap_rumor() {
        let mut c = CheapRumor::new();
        c.fill_hoard(&[(FileId(1), 100)]);
        c.set_connected(false);
        c.record_local_update(FileId(1), 150);
        c.record_remote_update(FileId(1), 175);
        let report = c.reconcile();
        assert_eq!(report.conflicts, 1);
        assert_eq!(
            c.base.store.size_of(FileId(1)),
            Some(175),
            "master copy wins"
        );
    }

    #[test]
    fn connected_updates_propagate_immediately() {
        let mut r = RumorLike::new();
        fill(&mut r);
        r.set_connected(true);
        r.record_local_update(FileId(1), 111);
        r.record_remote_update(FileId(2), 222);
        let report = r.reconcile();
        assert_eq!(report.pushed, 0);
        assert_eq!(report.pulled, 0);
        assert_eq!(r.base.store.size_of(FileId(2)), Some(222));
    }

    #[test]
    fn updates_to_unhoarded_files_are_ignored_locally() {
        let mut r = RumorLike::new();
        r.set_connected(false);
        r.record_local_update(FileId(42), 10);
        let report = r.reconcile();
        assert_eq!(report.pushed, 0);
    }
}
