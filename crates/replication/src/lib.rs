//! Simulated replication substrates (§2, §4.4).
//!
//! SEER deliberately does *not* move files itself: "an underlying
//! replication system performs this task", freeing SEER from transport,
//! update propagation, and conflict management. The paper runs atop RUMOR
//! (user-level peer reconciliation), a custom master–slave service called
//! CHEAP RUMOR, and CODA, and notes that miss *detection* capability varies
//! by substrate — from trivial to impossible (§4.4).
//!
//! This crate supplies the same narrow interface ([`ReplicationSystem`])
//! and three simulated substrates mirroring those capability profiles:
//!
//! * [`RumorLike`] — optimistic peer reconciliation; no remote access, no
//!   automatic miss detection (misses must be logged manually);
//! * [`CheapRumor`] — master–slave; no remote access, but misses are
//!   detectable;
//! * [`CodaLike`] — client–server with remote access while connected and
//!   detectable misses when disconnected.
//!
//! [`MissLog`] implements §4.4's manual miss recording with severity codes
//! 0–4 plus the automatic detector's counter.

#![warn(missing_docs)]

pub mod miss;
pub mod store;
pub mod substrates;
pub mod system;

pub use miss::{MissLog, MissRecord, Severity};
pub use store::HoardStore;
pub use substrates::{CheapRumor, CodaLike, RumorLike};
pub use system::{AccessOutcome, Capabilities, FillReport, ReconcileReport, ReplicationSystem};
