//! Property tests for the replication substrates.

use proptest::prelude::*;
use seer_replication::{
    AccessOutcome, CheapRumor, CodaLike, HoardStore, ReplicationSystem, RumorLike,
};
use seer_trace::FileId;
use std::collections::HashMap;

fn fill_list() -> impl Strategy<Value = Vec<(FileId, u64)>> {
    prop::collection::vec((0u32..40, 1u64..100_000), 0..30).prop_map(|v| {
        let mut seen = HashMap::new();
        for (f, s) in v {
            seen.insert(FileId(f), s);
        }
        seen.into_iter().collect()
    })
}

proptest! {
    /// Refill makes the store contents exactly the wanted set, and byte
    /// accounting matches the sum of sizes.
    #[test]
    fn refill_is_set_semantics(first in fill_list(), second in fill_list()) {
        let mut store = HoardStore::new();
        store.refill(&first);
        let report = store.refill(&second);
        prop_assert_eq!(store.len(), second.len());
        let want_bytes: u64 = second.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(store.bytes(), want_bytes);
        for &(f, s) in &second {
            prop_assert_eq!(store.size_of(f), Some(s));
        }
        // Transport accounting: retained + fetched = wanted.
        prop_assert_eq!(report.retained + report.fetched, second.len() as u64);
        // Evicted = files in first but not in second.
        let evicted_expect = first
            .iter()
            .filter(|&&(f, _)| !second.iter().any(|&(g, _)| g == f))
            .count() as u64;
        prop_assert_eq!(report.evicted, evicted_expect);
    }

    /// For every substrate: hoarded files are always locally accessible;
    /// unhoarded existing files fail while disconnected, with the outcome
    /// determined by the substrate's capability.
    #[test]
    fn access_outcomes_respect_capabilities(want in fill_list(), probe in 0u32..50) {
        let probe = FileId(probe);
        let substrates: Vec<Box<dyn ReplicationSystem>> = vec![
            Box::new(RumorLike::new()),
            Box::new(CheapRumor::new()),
            Box::new(CodaLike::new()),
        ];
        for mut s in substrates {
            s.fill_hoard(&want);
            s.set_connected(false);
            let hoarded = want.iter().any(|&(f, _)| f == probe);
            let outcome = s.access(probe, true);
            if hoarded {
                prop_assert_eq!(outcome, AccessOutcome::Local, "{}", s.name());
            } else if s.capabilities().detects_misses {
                prop_assert_eq!(outcome, AccessOutcome::MissDetected, "{}", s.name());
            } else {
                prop_assert_eq!(outcome, AccessOutcome::ErrorIndistinct, "{}", s.name());
            }
            // Nonexistent files are NotFound regardless of hoarding state.
            if !hoarded {
                prop_assert_eq!(s.access(probe, false), AccessOutcome::NotFound);
            }
        }
    }

    /// Reconciliation invariants: conflicts never exceed pushed updates,
    /// and a second reconcile with no new updates is a no-op.
    #[test]
    fn reconcile_invariants(
        want in fill_list(),
        local in prop::collection::vec(0u32..40, 0..10),
        remote in prop::collection::vec(0u32..40, 0..10),
    ) {
        let mut s = RumorLike::new();
        s.fill_hoard(&want);
        s.set_connected(false);
        for &f in &local {
            s.record_local_update(FileId(f), 1_000);
        }
        for &f in &remote {
            s.record_remote_update(FileId(f), 2_000);
        }
        s.set_connected(true);
        let r1 = s.reconcile();
        prop_assert!(r1.conflicts <= r1.pushed, "conflicts ≤ pushed");
        let r2 = s.reconcile();
        prop_assert_eq!(r2.pushed, 0);
        prop_assert_eq!(r2.pulled, 0);
        prop_assert_eq!(r2.conflicts, 0);
    }
}
