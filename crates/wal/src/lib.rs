//! `seer-wal` — durable write-ahead log for the SEER daemon.
//!
//! Snapshots alone lose every event since the last snapshot on a crash.
//! This crate closes that window: the daemon appends each applied event
//! batch (plus the string-table deltas that make its ids meaningful) to
//! a segmented, CRC-checksummed log *before* acknowledging it, and
//! recovery becomes *latest snapshot + replay of the log suffix*.
//!
//! Design points:
//!
//! - **Framing** ([`record`]): every record is length-prefixed and
//!   CRC-32-checksummed JSON; decoding classifies damage as a torn tail
//!   (truncate and continue) or corruption (truncate and continue), and
//!   never panics or over-allocates on garbage.
//! - **Segments** ([`wal`]): the log is a directory of numbered segment
//!   files rotated at a size threshold. Each segment opens with a full
//!   string-table snapshot, so compaction can drop any prefix of sealed
//!   segments once a daemon snapshot covers their batches.
//! - **Fsync policy**: `always` (no acknowledged batch is ever lost to
//!   `kill -9`), `interval:<ms>` (loss bounded by the window), or
//!   `never` (page-cache durability only).
//! - **Point-in-time restore**: [`Wal::truncate_after`] cuts the log
//!   right after a target generation, and [`replay_dir`] feeds any
//!   prefix into a fresh engine for as-of-generation queries.

#![warn(missing_docs)]

pub mod record;
pub mod wal;

pub use record::{
    crc32, decode, encode, Decoded, WalRecord, MAX_RECORD_BYTES, RECORD_HEADER_BYTES,
};
pub use wal::{
    replay_dir, AppendOutcome, CompactReport, FsyncPolicy, RecoveryReport, ReplayStats, Wal,
    WalConfig, WalError, WalStatus, SEGMENT_MAGIC,
};
