//! On-disk record framing: length-prefixed, CRC-checksummed JSON.
//!
//! Every record in a segment is framed as
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload JSON bytes]
//! ```
//!
//! The checksum covers only the payload; a flipped bit anywhere in the
//! frame fails either the length sanity check, the CRC, or the JSON
//! parse, and decoding classifies the damage as *incomplete* (a torn
//! tail — more bytes might have made it whole) or *corrupt* (no suffix
//! could repair it). Recovery truncates at the first record that is
//! either, so a crash mid-`write` never poisons earlier records.

use seer_trace::TraceEvent;
use serde::{Deserialize, Serialize};

/// Upper bound on a single record's payload. A length prefix above this
/// is treated as corruption rather than an allocation request — a torn
/// header bit-flipped into a huge length must not wedge recovery.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// Bytes of framing overhead per record (length + checksum).
pub const RECORD_HEADER_BYTES: usize = 8;

/// One logical entry in the log.
///
/// The two variants mirror the daemon's wire protocol split between
/// intern declarations and event batches: `Interns` extends the global
/// string table with dense ids starting at `base`, and `Batch` carries
/// events whose raw-path ids refer to previously declared strings.
/// `generation` is the engine's total applied-event count *after* the
/// batch — the same generation clusterings and snapshots are tagged
/// with, which is what makes point-in-time restore line up with live
/// query answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Declares global string ids `base..base + paths.len()`, in order.
    ///
    /// The first record of every segment is an `Interns { base: 0, .. }`
    /// carrying the *entire* table at segment-creation time, which makes
    /// each segment self-contained: compaction can drop any prefix of
    /// sealed segments without losing id→path mappings.
    Interns {
        /// First id being declared.
        base: u32,
        /// The strings, dense from `base`.
        paths: Vec<String>,
    },
    /// One applied event batch, raw-path ids in the global space.
    Batch {
        /// Total events applied *after* this batch.
        generation: u64,
        /// The events, in application order.
        events: Vec<TraceEvent>,
    },
}

impl WalRecord {
    /// The batch generation, if this is a batch record.
    #[must_use]
    pub fn generation(&self) -> Option<u64> {
        match self {
            WalRecord::Batch { generation, .. } => Some(*generation),
            WalRecord::Interns { .. } => None,
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut c = 0xFFFF_FFFF_u32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames a record for appending: header + JSON payload.
#[must_use]
pub fn encode(record: &WalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record).expect("WalRecord serializes");
    let payload = payload.as_bytes();
    let mut buf = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    buf.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("record < 4 GiB")
            .to_le_bytes(),
    );
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Outcome of decoding one record from the front of `buf`.
#[derive(Debug)]
pub enum Decoded {
    /// A complete, valid record occupying `consumed` bytes.
    Record {
        /// The decoded record.
        record: WalRecord,
        /// Frame size in bytes (header + payload).
        consumed: usize,
    },
    /// The buffer ends mid-record: a torn tail, not damage.
    Incomplete,
    /// The front of the buffer can never decode, whatever follows.
    Corrupt(&'static str),
}

/// Decodes the record at the front of `buf`.
///
/// Never panics and never allocates more than [`MAX_RECORD_BYTES`]:
/// arbitrary garbage classifies as [`Decoded::Incomplete`] or
/// [`Decoded::Corrupt`].
#[must_use]
pub fn decode(buf: &[u8]) -> Decoded {
    if buf.len() < RECORD_HEADER_BYTES {
        return Decoded::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 || len > MAX_RECORD_BYTES {
        return Decoded::Corrupt("implausible record length");
    }
    let Some(total) = len.checked_add(RECORD_HEADER_BYTES) else {
        return Decoded::Corrupt("record length overflows");
    };
    if buf.len() < total {
        return Decoded::Incomplete;
    }
    let expected = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let payload = &buf[RECORD_HEADER_BYTES..total];
    if crc32(payload) != expected {
        return Decoded::Corrupt("checksum mismatch");
    }
    let Ok(text) = std::str::from_utf8(payload) else {
        return Decoded::Corrupt("payload is not UTF-8");
    };
    match serde_json::from_str::<WalRecord>(text) {
        Ok(record) => Decoded::Record {
            record,
            consumed: total,
        },
        Err(_) => Decoded::Corrupt("payload is not a record"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_trace::{EventKind, Fd, OpenMode, Pid, RawPathId, Seq, Timestamp};

    fn sample_batch() -> WalRecord {
        WalRecord::Batch {
            generation: 42,
            events: vec![TraceEvent {
                seq: Seq(1),
                time: Timestamp::from_millis(5),
                pid: Pid(9),
                root: false,
                kind: EventKind::Open {
                    path: RawPathId(0),
                    mode: OpenMode::Read,
                    fd: Fd(3),
                },
                error: None,
            }],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        for rec in [
            WalRecord::Interns {
                base: 0,
                paths: vec!["/a".into(), "/b".into()],
            },
            sample_batch(),
        ] {
            let buf = encode(&rec);
            match decode(&buf) {
                Decoded::Record { record, consumed } => {
                    assert_eq!(record, rec);
                    assert_eq!(consumed, buf.len());
                }
                other => panic!("expected record, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_frames_are_incomplete() {
        let buf = encode(&sample_batch());
        for cut in 0..buf.len() {
            match decode(&buf[..cut]) {
                Decoded::Incomplete => {}
                other => panic!("cut at {cut}: expected incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_payload_bit_is_corrupt() {
        let mut buf = encode(&sample_batch());
        let mid = RECORD_HEADER_BYTES + 3;
        buf[mid] ^= 0x10;
        assert!(matches!(decode(&buf), Decoded::Corrupt(_)));
    }

    #[test]
    fn absurd_length_is_corrupt_not_an_allocation() {
        let mut buf = encode(&sample_batch());
        buf[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&buf), Decoded::Corrupt(_)));
        buf[..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(decode(&buf), Decoded::Corrupt(_)));
    }

    #[test]
    fn decode_consumes_exactly_one_record() {
        let a = encode(&WalRecord::Interns {
            base: 0,
            paths: vec!["/x".into()],
        });
        let b = encode(&sample_batch());
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        match decode(&joined) {
            Decoded::Record { consumed, .. } => assert_eq!(consumed, a.len()),
            other => panic!("expected record, got {other:?}"),
        }
    }
}
