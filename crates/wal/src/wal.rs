//! The log itself: segment files, append, recovery, compaction, and
//! point-in-time truncation.
//!
//! A log directory holds numbered segment files (`wal-00000042.seg`),
//! each beginning with an 8-byte magic and containing framed
//! [`WalRecord`]s (see [`crate::record`]), plus a small `wal.meta` JSON
//! noting the generation compaction has discarded history through.
//! Appends go to the highest-numbered segment; at a size threshold the
//! segment is sealed and a new one started. Every segment opens with a
//! full string-table snapshot, so any *prefix* of sealed segments can be
//! deleted once a snapshot covers their batches — replay of the
//! remaining suffix still resolves every id.

use crate::record::{self, Decoded, WalRecord};
use seer_trace::{RawPathId, StringTable, TraceEvent};
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// First 8 bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SEERWAL1";

/// The compaction bookkeeping file kept next to the segments.
const META_FILE: &str = "wal.meta";

/// When to `fsync` appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: an acknowledged batch survives `kill -9`.
    Always,
    /// Sync when at least this long has passed since the last sync:
    /// bounded loss (everything appended within the window).
    Interval(Duration),
    /// Never sync explicitly; durability rides on the OS flushing dirty
    /// pages (process crashes still lose nothing — only machine crashes
    /// and power loss do).
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `never`, `interval:<ms>`, or a
    /// bare `interval` (50 ms).
    #[must_use]
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(Duration::from_millis(50))),
            _ => {
                let ms: u64 = s.strip_prefix("interval:")?.parse().ok()?;
                Some(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Configuration for opening a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding segments and `wal.meta`; created if missing.
    pub dir: PathBuf,
    /// Sync policy for appends.
    pub fsync: FsyncPolicy,
    /// Seal the active segment once it reaches this many bytes.
    pub segment_max_bytes: u64,
}

impl WalConfig {
    /// Defaults: 50 ms interval fsync, 8 MiB segments.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
            segment_max_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Errors from log operations.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// On-disk state that recovery refuses to guess about.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A truncation target predating what compaction already discarded.
    Compacted {
        /// The requested generation.
        requested: u64,
        /// History at or before this generation is gone.
        compacted_through: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
            WalError::Corrupt { path, detail } => {
                write!(f, "wal corrupt at {}: {detail}", path.display())
            }
            WalError::Compacted {
                requested,
                compacted_through,
            } => write!(
                f,
                "generation {requested} unreachable: log compacted through {compacted_through}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// Compaction bookkeeping persisted as `wal.meta`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct WalMeta {
    /// Batches with generation at or below this have been discarded by
    /// compaction; replay from generation zero is impossible past it.
    compacted_through: u64,
}

/// A segment the log knows about (sealed or active).
#[derive(Debug, Clone)]
struct SegmentState {
    path: PathBuf,
    bytes: u64,
    /// Highest batch generation in the segment; `None` if it holds no
    /// batch records (yet).
    last_generation: Option<u64>,
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Segment files present after recovery.
    pub segments: usize,
    /// Valid records across all segments.
    pub records: u64,
    /// Valid batch records across all segments.
    pub batches: u64,
    /// Highest batch generation in the log (0 when empty).
    pub last_generation: u64,
    /// Torn/corrupt tail bytes truncated away.
    pub truncated_bytes: u64,
    /// Segment files dropped entirely (unreadable, or stranded after a
    /// damaged predecessor).
    pub dropped_segments: usize,
}

/// What one append did.
#[derive(Debug, Clone, Copy)]
pub struct AppendOutcome {
    /// Bytes appended (framing included).
    pub bytes: u64,
    /// Records appended (1 or 2: an optional interns delta + the batch).
    pub records: u32,
    /// Whether the append sealed a segment and started a new one.
    pub rotated: bool,
    /// Time spent in `fsync`, when the policy synced this append.
    pub fsync: Option<Duration>,
}

/// What a compaction pass removed.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactReport {
    /// Sealed segments deleted.
    pub segments_dropped: usize,
    /// Their total size.
    pub bytes_dropped: u64,
}

/// Point-in-time size and position of the log.
#[derive(Debug, Clone, Copy)]
pub struct WalStatus {
    /// Segment files on disk (sealed + active).
    pub segments: usize,
    /// Total bytes across them.
    pub disk_bytes: u64,
    /// Highest batch generation appended or recovered.
    pub last_generation: u64,
    /// Generation compaction has discarded history through.
    pub compacted_through: u64,
}

/// Replay statistics from [`Wal::replay`] / [`replay_dir`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplayStats {
    /// Records delivered to the callback.
    pub records: u64,
    /// Batch records among them.
    pub batches: u64,
    /// Whether the callback stopped the replay early.
    pub stopped: bool,
    /// Whether a torn or corrupt tail cut the replay short.
    pub damaged: bool,
}

/// A segmented, checksummed append-only log of intern declarations and
/// event batches.
pub struct Wal {
    cfg: WalConfig,
    meta: WalMeta,
    /// All segments in sequence order; the last one is active.
    segments: Vec<SegmentState>,
    /// Open handle on the last segment, if any exists yet.
    active: Option<File>,
    next_seq: u64,
    /// Global string ids already declared in the log (dense high-water).
    declared: u32,
    last_generation: u64,
    last_sync: Instant,
    /// Unsynced appends outstanding.
    dirty: bool,
}

fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// One decoded walk over a segment's bytes.
struct SegmentScan {
    /// Bytes of magic + valid records.
    valid_len: u64,
    file_len: u64,
    records: u64,
    batches: u64,
    last_generation: Option<u64>,
    /// Highest `base + paths.len()` over interns records.
    declared_high: u32,
    /// Why the walk stopped before the end of the file, if it did.
    damage: Option<&'static str>,
}

/// Walks a segment, calling `f` for each valid record; `f` returning
/// `false` stops the walk (not counted as damage).
fn scan_segment(
    path: &Path,
    mut f: impl FnMut(WalRecord) -> bool,
) -> std::io::Result<(SegmentScan, bool)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;
    let mut scan = SegmentScan {
        valid_len: 0,
        file_len,
        records: 0,
        batches: 0,
        last_generation: None,
        declared_high: 0,
        damage: None,
    };
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        scan.damage = Some("bad or torn segment magic");
        return Ok((scan, false));
    }
    let mut off = SEGMENT_MAGIC.len();
    scan.valid_len = off as u64;
    let mut stopped = false;
    while off < bytes.len() {
        match record::decode(&bytes[off..]) {
            Decoded::Record { record, consumed } => {
                off += consumed;
                scan.valid_len = off as u64;
                scan.records += 1;
                match &record {
                    WalRecord::Batch { generation, .. } => {
                        scan.batches += 1;
                        scan.last_generation = Some(*generation);
                    }
                    WalRecord::Interns { base, paths } => {
                        let high = base.saturating_add(paths.len() as u32);
                        scan.declared_high = scan.declared_high.max(high);
                    }
                }
                if !f(record) {
                    stopped = true;
                    break;
                }
            }
            Decoded::Incomplete => {
                scan.damage = Some("torn tail record");
                break;
            }
            Decoded::Corrupt(why) => {
                scan.damage = Some(why);
                break;
            }
        }
    }
    Ok((scan, stopped))
}

/// Lists segment files under `dir`, ordered by sequence number.
fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_seq) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// Replays every valid record under `dir` in order, without opening a
/// [`Wal`]. `f` returning `false` stops the replay. A torn or corrupt
/// tail stops it too (flagged in the stats), as do any segments after
/// the damaged one — their batches would leave a generation gap.
///
/// Safe to run against a live log: appends only extend the tail, and a
/// half-written tail record classifies as damage, exactly like a crash.
///
/// # Errors
///
/// Returns [`WalError::Io`] on filesystem failure; a missing directory
/// replays nothing.
pub fn replay_dir(
    dir: &Path,
    mut f: impl FnMut(WalRecord) -> bool,
) -> Result<ReplayStats, WalError> {
    let mut stats = ReplayStats::default();
    let segments = match list_segments(dir) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(stats),
        Err(e) => return Err(e.into()),
    };
    for (_seq, path) in segments {
        let (scan, stopped) = scan_segment(&path, &mut f)?;
        stats.records += scan.records;
        stats.batches += scan.batches;
        if stopped {
            stats.stopped = true;
            return Ok(stats);
        }
        if scan.damage.is_some() {
            stats.damaged = true;
            return Ok(stats);
        }
    }
    Ok(stats)
}

impl Wal {
    /// Opens (or creates) the log in `cfg.dir`, truncating any torn or
    /// corrupt tail so the surviving prefix is entirely valid.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on filesystem failure and
    /// [`WalError::Corrupt`] when `wal.meta` exists but does not parse
    /// (guessing at compaction state could silently fabricate history).
    pub fn open(cfg: WalConfig) -> Result<(Wal, RecoveryReport), WalError> {
        fs::create_dir_all(&cfg.dir)?;
        let meta_path = cfg.dir.join(META_FILE);
        let meta = match fs::read_to_string(&meta_path) {
            Ok(text) => serde_json::from_str(&text).map_err(|e| WalError::Corrupt {
                path: meta_path.clone(),
                detail: format!("unreadable wal.meta: {e}"),
            })?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => WalMeta::default(),
            Err(e) => return Err(e.into()),
        };
        let mut wal = Wal {
            cfg,
            meta,
            segments: Vec::new(),
            active: None,
            next_seq: 0,
            declared: 0,
            last_generation: 0,
            last_sync: Instant::now(),
            dirty: false,
        };
        let report = wal.recover()?;
        Ok((wal, report))
    }

    /// Scans the directory, truncating damage, and rebuilds in-memory
    /// state. Called by [`Wal::open`] and after file surgery.
    fn recover(&mut self) -> Result<RecoveryReport, WalError> {
        self.segments.clear();
        self.active = None;
        self.declared = 0;
        self.last_generation = 0;
        let mut report = RecoveryReport::default();
        let listed = list_segments(&self.cfg.dir)?;
        self.next_seq = listed.iter().map(|(s, _)| s + 1).max().unwrap_or(0);
        let mut damaged_at: Option<usize> = None;
        for (i, (_seq, path)) in listed.iter().enumerate() {
            if damaged_at.is_some() {
                // A damaged predecessor leaves a generation gap; batches
                // here are unreachable for contiguous replay. Drop them.
                report.truncated_bytes += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                report.dropped_segments += 1;
                fs::remove_file(path)?;
                continue;
            }
            let (scan, _) = scan_segment(path, |_| true)?;
            if scan.damage.is_some() {
                damaged_at = Some(i);
                report.truncated_bytes += scan.file_len - scan.valid_len;
                if scan.valid_len <= SEGMENT_MAGIC.len() as u64 {
                    // Nothing valid in it (possibly not even the magic —
                    // a crash during segment creation). Remove the file.
                    report.dropped_segments += 1;
                    fs::remove_file(path)?;
                    continue;
                }
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(scan.valid_len)?;
                f.sync_all()?;
            }
            self.declared = self.declared.max(scan.declared_high);
            if let Some(g) = scan.last_generation {
                self.last_generation = self.last_generation.max(g);
            }
            report.records += scan.records;
            report.batches += scan.batches;
            self.segments.push(SegmentState {
                path: path.clone(),
                bytes: scan.valid_len.max(SEGMENT_MAGIC.len() as u64),
                last_generation: scan.last_generation,
            });
        }
        if report.dropped_segments > 0 {
            sync_dir(&self.cfg.dir)?;
        }
        if let Some(last) = self.segments.last() {
            let mut f = OpenOptions::new().read(true).write(true).open(&last.path)?;
            f.seek(SeekFrom::End(0))?;
            self.active = Some(f);
        }
        report.segments = self.segments.len();
        report.last_generation = self.last_generation;
        Ok(report)
    }

    /// Replays every record in the log through `f` (see [`replay_dir`]).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on filesystem failure.
    pub fn replay(&self, f: impl FnMut(WalRecord) -> bool) -> Result<ReplayStats, WalError> {
        replay_dir(&self.cfg.dir, f)
    }

    /// Generation compaction has discarded history through (0 when the
    /// whole log is still replayable from generation zero).
    #[must_use]
    pub fn compacted_through(&self) -> u64 {
        self.meta.compacted_through
    }

    /// Current size and position of the log.
    #[must_use]
    pub fn status(&self) -> WalStatus {
        WalStatus {
            segments: self.segments.len(),
            disk_bytes: self.segments.iter().map(|s| s.bytes).sum(),
            last_generation: self.last_generation,
            compacted_through: self.meta.compacted_through,
        }
    }

    /// Starts a fresh segment whose first record snapshots the entire
    /// string table, making the segment self-contained.
    fn create_segment(&mut self, strings: &StringTable) -> Result<(), WalError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = self.cfg.dir.join(segment_file_name(seq));
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .read(true)
            .open(&path)?;
        let mut buf = Vec::with_capacity(SEGMENT_MAGIC.len() + 64);
        buf.extend_from_slice(SEGMENT_MAGIC);
        let paths: Vec<String> = strings.iter().map(|(_, s)| s.to_owned()).collect();
        buf.extend_from_slice(&record::encode(&WalRecord::Interns { base: 0, paths }));
        file.write_all(&buf)?;
        sync_dir(&self.cfg.dir)?;
        self.declared = strings.len() as u32;
        self.segments.push(SegmentState {
            path,
            bytes: buf.len() as u64,
            last_generation: None,
        });
        self.active = Some(file);
        self.dirty = true;
        Ok(())
    }

    /// Seals the active segment (syncing it unless the policy is
    /// `Never`) and starts a new one.
    fn rotate(&mut self, strings: &StringTable) -> Result<(), WalError> {
        if let Some(f) = self.active.take() {
            if self.cfg.fsync != FsyncPolicy::Never {
                f.sync_data()?;
                self.dirty = false;
                self.last_sync = Instant::now();
            }
        }
        self.create_segment(strings)
    }

    /// Appends one applied batch, preceded when necessary by an interns
    /// delta declaring any strings interned since the last append.
    ///
    /// `generation` is the engine's applied-event count *after* the
    /// batch; `events` must already be in the global id space of
    /// `strings`. Rotation happens *before* the write when the active
    /// segment is over the size threshold, so a batch never splits
    /// across segments.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on write or sync failure; the in-memory
    /// high-water marks are only advanced on success.
    pub fn append_batch(
        &mut self,
        strings: &StringTable,
        generation: u64,
        events: &[TraceEvent],
    ) -> Result<AppendOutcome, WalError> {
        let mut rotated = false;
        match self.segments.last() {
            None => {
                // The log's very first segment is a creation, not a
                // rotation: nothing was sealed.
                self.create_segment(strings)?;
            }
            Some(s) if s.bytes >= self.cfg.segment_max_bytes => {
                self.rotate(strings)?;
                rotated = true;
            }
            Some(_) => {}
        }
        let mut buf = Vec::new();
        let mut records = 0u32;
        let table_len = strings.len() as u32;
        if table_len > self.declared {
            let paths: Vec<String> = (self.declared..table_len)
                .map(|id| {
                    strings
                        .resolve(RawPathId(id))
                        .expect("dense table")
                        .to_owned()
                })
                .collect();
            buf.extend_from_slice(&record::encode(&WalRecord::Interns {
                base: self.declared,
                paths,
            }));
            records += 1;
        }
        buf.extend_from_slice(&record::encode(&WalRecord::Batch {
            generation,
            events: events.to_vec(),
        }));
        records += 1;
        let file = self.active.as_mut().expect("segment created above");
        file.write_all(&buf)?;
        self.dirty = true;
        self.declared = self.declared.max(table_len);
        self.last_generation = self.last_generation.max(generation);
        let seg = self.segments.last_mut().expect("segment created above");
        seg.bytes += buf.len() as u64;
        seg.last_generation = Some(
            seg.last_generation
                .map_or(generation, |g| g.max(generation)),
        );
        let fsync = match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval(d) if self.last_sync.elapsed() >= d => self.sync()?,
            FsyncPolicy::Interval(_) | FsyncPolicy::Never => None,
        };
        Ok(AppendOutcome {
            bytes: buf.len() as u64,
            records,
            rotated,
            fsync,
        })
    }

    /// Syncs outstanding appends to disk, returning the time spent, or
    /// `None` when nothing was dirty.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the sync fails.
    pub fn sync(&mut self) -> Result<Option<Duration>, WalError> {
        if !self.dirty {
            return Ok(None);
        }
        let Some(f) = self.active.as_ref() else {
            return Ok(None);
        };
        let started = Instant::now();
        f.sync_data()?;
        self.dirty = false;
        self.last_sync = Instant::now();
        Ok(Some(started.elapsed()))
    }

    /// Under an interval policy, syncs if the window has elapsed since
    /// the last sync — the idle-tick hook that bounds loss when appends
    /// pause.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the sync fails.
    pub fn maybe_sync(&mut self) -> Result<Option<Duration>, WalError> {
        match self.cfg.fsync {
            FsyncPolicy::Interval(d) if self.dirty && self.last_sync.elapsed() >= d => self.sync(),
            _ => Ok(None),
        }
    }

    /// Drops sealed segments whose every batch is at or below `covered`
    /// (the newest snapshot's generation). Only a *prefix* of segments
    /// can qualify — generations are monotone across the log — and the
    /// active segment is never dropped. `wal.meta` is updated (and
    /// synced) *before* any file is deleted, so a crash between the two
    /// can only over-claim compaction, never fabricate replayable
    /// history.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on filesystem failure.
    pub fn compact(&mut self, covered: u64) -> Result<CompactReport, WalError> {
        let sealed = self.segments.len().saturating_sub(1);
        let mut drop_count = 0;
        let mut high = None;
        for seg in &self.segments[..sealed] {
            if seg.last_generation.unwrap_or(0) <= covered {
                drop_count += 1;
                high = seg.last_generation.or(high);
            } else {
                break;
            }
        }
        if drop_count == 0 {
            return Ok(CompactReport::default());
        }
        if let Some(g) = high {
            if g > self.meta.compacted_through {
                self.meta.compacted_through = g;
                self.write_meta()?;
            }
        }
        let mut report = CompactReport::default();
        for seg in self.segments.drain(..drop_count) {
            report.bytes_dropped += seg.bytes;
            report.segments_dropped += 1;
            fs::remove_file(&seg.path)?;
        }
        sync_dir(&self.cfg.dir)?;
        Ok(report)
    }

    /// Atomically persists `wal.meta`.
    fn write_meta(&self) -> Result<(), WalError> {
        let path = self.cfg.dir.join(META_FILE);
        let tmp = self.cfg.dir.join(format!("{META_FILE}.tmp"));
        let text = serde_json::to_string(&self.meta).expect("meta serializes");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        sync_dir(&self.cfg.dir)?;
        Ok(())
    }

    /// Discards every batch with generation above `target`, starting a
    /// new timeline there: the log is cut right after the last batch at
    /// or below `target` (trailing interns deltas go too — replay of the
    /// truncated log re-derives the string table they described).
    ///
    /// Returns the highest batch generation remaining (the *achieved*
    /// restore point — `target` itself when it lands on a batch
    /// boundary).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Compacted`] when `target` predates what
    /// compaction discarded, and [`WalError::Io`] on filesystem failure.
    pub fn truncate_after(&mut self, target: u64) -> Result<u64, WalError> {
        if target < self.meta.compacted_through {
            return Err(WalError::Compacted {
                requested: target,
                compacted_through: self.meta.compacted_through,
            });
        }
        self.sync()?;
        self.active = None;
        let mut cut_from: Option<usize> = None;
        let mut cut_offset: Option<u64> = None;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.last_generation.unwrap_or(0) <= target {
                continue;
            }
            // First segment holding a batch beyond the target: find the
            // byte offset right after its last keepable batch.
            let mut bytes = Vec::new();
            File::open(&seg.path)?.read_to_end(&mut bytes)?;
            let mut off = SEGMENT_MAGIC.len();
            let mut keep_until: Option<u64> = None;
            while off < bytes.len() {
                match record::decode(&bytes[off..]) {
                    Decoded::Record { record, consumed } => {
                        let end = off + consumed;
                        match record.generation() {
                            Some(g) if g > target => break,
                            Some(_) => keep_until = Some(end as u64),
                            None => {}
                        }
                        off = end;
                    }
                    _ => break,
                }
            }
            cut_from = Some(i);
            cut_offset = keep_until;
            break;
        }
        if let Some(i) = cut_from {
            match cut_offset {
                Some(end) => {
                    let f = OpenOptions::new()
                        .write(true)
                        .open(&self.segments[i].path)?;
                    f.set_len(end)?;
                    f.sync_all()?;
                    for seg in &self.segments[i + 1..] {
                        fs::remove_file(&seg.path)?;
                    }
                }
                None => {
                    // No keepable batch in this segment at all: its base
                    // interns record belongs to the discarded timeline.
                    for seg in &self.segments[i..] {
                        fs::remove_file(&seg.path)?;
                    }
                }
            }
            sync_dir(&self.cfg.dir)?;
        }
        self.recover()?;
        Ok(self.last_generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_trace::{EventKind, Fd, OpenMode, Pid, Seq, Timestamp};

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seer-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn ev(strings: &mut StringTable, seq: u64, path: &str) -> TraceEvent {
        TraceEvent {
            seq: Seq(seq),
            time: Timestamp::from_millis(seq),
            pid: Pid(1),
            root: false,
            kind: EventKind::Open {
                path: strings.intern(path),
                mode: OpenMode::Read,
                fd: Fd(3),
            },
            error: None,
        }
    }

    /// Appends `n` one-event batches, interning a fresh path each time.
    fn fill(wal: &mut Wal, strings: &mut StringTable, start_gen: u64, n: u64) {
        for i in 0..n {
            let g = start_gen + i + 1;
            let e = ev(strings, g, &format!("/proj/file-{g}.c"));
            wal.append_batch(strings, g, &[e]).expect("append");
        }
    }

    fn collect(dir: &Path) -> (Vec<WalRecord>, ReplayStats) {
        let mut recs = Vec::new();
        let stats = replay_dir(dir, |r| {
            recs.push(r);
            true
        })
        .expect("replay");
        (recs, stats)
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = scratch("rt");
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = FsyncPolicy::Always;
        let (mut wal, report) = Wal::open(cfg).expect("open");
        assert_eq!(report.segments, 0);
        let mut strings = StringTable::new();
        fill(&mut wal, &mut strings, 0, 5);
        let (recs, stats) = collect(&dir);
        assert_eq!(stats.batches, 5);
        assert!(!stats.damaged);
        // First record snapshots the table as of segment creation —
        // the first batch's path was already interned by then.
        assert_eq!(
            recs[0],
            WalRecord::Interns {
                base: 0,
                paths: vec!["/proj/file-1.c".into()]
            }
        );
        let gens: Vec<u64> = recs.iter().filter_map(WalRecord::generation).collect();
        assert_eq!(gens, vec![1, 2, 3, 4, 5]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_generation_and_interning_watermarks() {
        let dir = scratch("reopen");
        let mut strings = StringTable::new();
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            fill(&mut wal, &mut strings, 0, 3);
            wal.sync().expect("sync");
        }
        let (mut wal, report) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(report.last_generation, 3);
        assert_eq!(report.batches, 3);
        // Appending after reopen must not re-declare old strings.
        fill(&mut wal, &mut strings, 3, 1);
        let (recs, _) = collect(&dir);
        let interns: Vec<&WalRecord> = recs
            .iter()
            .filter(|r| matches!(r, WalRecord::Interns { .. }))
            .collect();
        // Base snapshot + one delta per new path: no duplicate ids.
        let mut seen = StringTable::new();
        for r in &interns {
            if let WalRecord::Interns { base, paths } = r {
                assert_eq!(*base as usize, seen.len(), "dense declarations");
                for p in paths {
                    seen.intern(p);
                }
            }
        }
        assert_eq!(seen.len(), strings.len());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = scratch("torn");
        let mut strings = StringTable::new();
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            fill(&mut wal, &mut strings, 0, 4);
            wal.sync().expect("sync");
        }
        // Tear the tail: append half a record's worth of garbage.
        let segs = list_segments(&dir).expect("list");
        let last = &segs.last().expect("segment").1;
        let mut f = OpenOptions::new().append(true).open(last).expect("open");
        f.write_all(&[0x13, 0x00, 0x00, 0x00, 0xAA, 0xBB])
            .expect("tear");
        drop(f);

        let (wal, report) = Wal::open(WalConfig::new(&dir)).expect("recover");
        assert_eq!(report.last_generation, 4, "valid prefix survives");
        assert!(report.truncated_bytes > 0);
        let (_, stats) = collect(&dir);
        assert_eq!(stats.batches, 4);
        assert!(!stats.damaged, "tail was repaired at open");
        drop(wal);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_starts_self_contained_segments() {
        let dir = scratch("rot");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_max_bytes = 256; // force rotation every record or two
        let (mut wal, _) = Wal::open(cfg).expect("open");
        let mut strings = StringTable::new();
        fill(&mut wal, &mut strings, 0, 10);
        let status = wal.status();
        assert!(status.segments > 2, "tiny threshold rotated: {status:?}");
        // Every segment must open with a full-table interns record.
        for (_, path) in list_segments(&dir).expect("list") {
            let mut first = None;
            let (scan, _) = scan_segment(&path, |r| {
                first = Some(r);
                false
            })
            .expect("scan");
            assert!(scan.damage.is_none());
            match first {
                Some(WalRecord::Interns { base: 0, .. }) => {}
                other => panic!("segment {} starts with {other:?}", path.display()),
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_drops_covered_prefix_only() {
        let dir = scratch("compact");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_max_bytes = 256;
        let (mut wal, _) = Wal::open(cfg).expect("open");
        let mut strings = StringTable::new();
        fill(&mut wal, &mut strings, 0, 12);
        let before = wal.status();
        assert!(before.segments > 3);

        // A snapshot covering generation 6: only sealed segments whose
        // last batch is ≤ 6 may go.
        let report = wal.compact(6).expect("compact");
        assert!(report.segments_dropped > 0);
        let after = wal.status();
        assert!(after.segments < before.segments);
        assert!(after.compacted_through <= 6);

        // Replay of the suffix still resolves every path and reaches 12.
        let mut table = StringTable::new();
        let mut last = 0;
        let mut unresolved = 0;
        replay_dir(&dir, |rec| {
            match rec {
                WalRecord::Interns { paths, .. } => {
                    for p in &paths {
                        table.intern(p);
                    }
                }
                WalRecord::Batch { generation, events } => {
                    last = generation;
                    for e in &events {
                        if let Some(p) = e.kind.path() {
                            if table.resolve(p).is_none() {
                                unresolved += 1;
                            }
                        }
                    }
                }
            }
            true
        })
        .expect("replay");
        assert_eq!(last, 12);
        assert_eq!(unresolved, 0, "segments are self-contained");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_never_drops_the_active_segment() {
        let dir = scratch("compact-active");
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
        let mut strings = StringTable::new();
        fill(&mut wal, &mut strings, 0, 3);
        let report = wal.compact(1_000).expect("compact");
        assert_eq!(report.segments_dropped, 0, "single active segment stays");
        assert_eq!(wal.status().segments, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_after_cuts_a_new_timeline() {
        let dir = scratch("trunc");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_max_bytes = 256;
        let (mut wal, _) = Wal::open(cfg).expect("open");
        let mut strings = StringTable::new();
        fill(&mut wal, &mut strings, 0, 10);
        let achieved = wal.truncate_after(6).expect("truncate");
        assert_eq!(achieved, 6);
        let (recs, stats) = collect(&dir);
        assert!(!stats.damaged);
        let gens: Vec<u64> = recs.iter().filter_map(WalRecord::generation).collect();
        assert_eq!(gens, vec![1, 2, 3, 4, 5, 6]);
        // The new timeline continues from the restore point.
        fill(&mut wal, &mut strings, 6, 2);
        let (recs, _) = collect(&dir);
        let gens: Vec<u64> = recs.iter().filter_map(WalRecord::generation).collect();
        assert_eq!(gens, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_below_compaction_point_is_refused() {
        let dir = scratch("trunc-compacted");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_max_bytes = 128;
        let (mut wal, _) = Wal::open(cfg).expect("open");
        let mut strings = StringTable::new();
        fill(&mut wal, &mut strings, 0, 10);
        wal.compact(8).expect("compact");
        let compacted = wal.compacted_through();
        assert!(compacted > 0, "compaction advanced");
        match wal.truncate_after(compacted - 1) {
            Err(WalError::Compacted { .. }) => {}
            other => panic!("expected Compacted, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:200"),
            Some(FsyncPolicy::Interval(Duration::from_millis(200)))
        );
        assert_eq!(
            FsyncPolicy::parse("interval"),
            Some(FsyncPolicy::Interval(Duration::from_millis(50)))
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::parse("interval:x"), None);
    }

    #[test]
    fn always_policy_reports_sync_time_per_append() {
        let dir = scratch("fsync");
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = FsyncPolicy::Always;
        let (mut wal, _) = Wal::open(cfg).expect("open");
        let mut strings = StringTable::new();
        let e = ev(&mut strings, 1, "/a");
        let out = wal.append_batch(&strings, 1, &[e]).expect("append");
        assert!(out.fsync.is_some(), "always syncs");
        let out2 = wal.sync().expect("sync");
        assert!(out2.is_none(), "nothing dirty after a synced append");
        fs::remove_dir_all(&dir).ok();
    }
}
