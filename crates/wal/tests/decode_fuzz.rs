//! Property tests: record decoding must survive arbitrary damage —
//! torn writes, bit flips, truncated tails — without panicking,
//! over-allocating, or mis-decoding.

use proptest::prelude::*;
use seer_trace::{EventKind, Fd, OpenMode, Pid, RawPathId, Seq, Timestamp, TraceEvent};
use seer_wal::{decode, encode, Decoded, WalRecord, RECORD_HEADER_BYTES};

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        0u64..1_000,
        0u64..1_000_000,
        1u32..100,
        0u32..64,
        prop::bool::ANY,
    )
        .prop_map(|(seq, ms, pid, path, read)| TraceEvent {
            seq: Seq(seq),
            time: Timestamp::from_millis(ms),
            pid: Pid(pid),
            root: false,
            kind: EventKind::Open {
                path: RawPathId(path),
                mode: if read {
                    OpenMode::Read
                } else {
                    OpenMode::Write
                },
                fd: Fd(3),
            },
            error: None,
        })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (0u32..1_000, prop::collection::vec("[a-z/._-]{1,20}", 0..8))
            .prop_map(|(base, paths)| WalRecord::Interns { base, paths }),
        (1u64..1_000_000, prop::collection::vec(arb_event(), 0..8))
            .prop_map(|(generation, events)| WalRecord::Batch { generation, events }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics and never claims a record.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        match decode(&bytes) {
            Decoded::Record { consumed, .. } => prop_assert!(consumed <= bytes.len()),
            Decoded::Incomplete | Decoded::Corrupt(_) => {}
        }
    }

    /// Every well-formed record round-trips exactly.
    #[test]
    fn round_trip(rec in arb_record()) {
        let buf = encode(&rec);
        match decode(&buf) {
            Decoded::Record { record, consumed } => {
                prop_assert_eq!(record, rec);
                prop_assert_eq!(consumed, buf.len());
            }
            other => prop_assert!(false, "expected record, got {:?}", other),
        }
    }

    /// Any truncation of a valid frame is Incomplete — a torn tail,
    /// never a phantom record and never corruption that would make
    /// recovery distrust the preceding (valid) log.
    #[test]
    fn truncation_is_always_incomplete(rec in arb_record(), keep_frac in 0.0f64..1.0) {
        let buf = encode(&rec);
        let keep = (((buf.len() as f64) * keep_frac) as usize).min(buf.len() - 1);
        prop_assert!(matches!(decode(&buf[..keep]), Decoded::Incomplete));
    }

    /// A flipped bit anywhere in a frame is detected: decode yields the
    /// original record only from undamaged bytes, otherwise classifies
    /// as Incomplete/Corrupt — it never produces a *different* record.
    #[test]
    fn bit_flips_never_mis_decode(rec in arb_record(), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = encode(&rec);
        let idx = ((buf.len() as f64) * byte_frac) as usize % buf.len();
        buf[idx] ^= 1 << bit;
        match decode(&buf) {
            Decoded::Record { record, .. } => {
                // A flip in the length prefix can shorten the frame so a
                // prefix still decodes; CRC makes that astronomically
                // unlikely, and the payload flip case must checksum-fail.
                prop_assert_eq!(record, rec, "damaged frame decoded to a different record");
            }
            Decoded::Incomplete | Decoded::Corrupt(_) => {}
        }
    }

    /// Garbage appended after a valid frame never disturbs decoding the
    /// frame itself, and `consumed` points exactly past it.
    #[test]
    fn trailing_garbage_is_ignored(rec in arb_record(), junk in prop::collection::vec(0u8..=255, 0..64)) {
        let mut buf = encode(&rec);
        let frame = buf.len();
        buf.extend_from_slice(&junk);
        match decode(&buf) {
            Decoded::Record { record, consumed } => {
                prop_assert_eq!(record, rec);
                prop_assert_eq!(consumed, frame);
            }
            other => prop_assert!(false, "expected record, got {:?}", other),
        }
    }

    /// A header whose length field points past the buffer is Incomplete
    /// (could be torn) unless implausibly large (Corrupt) — and in
    /// neither case does decoding allocate the claimed length.
    #[test]
    fn huge_lengths_are_rejected_cheaply(len in 0u32..=u32::MAX, crc in 0u32..=u32::MAX) {
        let mut buf = Vec::with_capacity(RECORD_HEADER_BYTES);
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        match decode(&buf) {
            Decoded::Record { .. } => prop_assert!(false, "header alone cannot be a record"),
            Decoded::Incomplete | Decoded::Corrupt(_) => {}
        }
    }
}
