//! Cheap, deterministic hashing for dense id keys.
//!
//! The pipeline's hot maps are keyed by small newtype ids ([`crate::Pid`],
//! [`crate::Fd`], [`crate::FileId`]) whose values are already
//! well-distributed small integers. SipHash's DoS resistance buys nothing
//! there and costs a measurable slice of the per-event budget, so these
//! maps use an FxHash-style multiply hasher instead. The seed is fixed,
//! which also makes iteration order reproducible across runs — though
//! nothing may *rely* on that order; every exported collection is sorted
//! explicitly.
//!
//! Not for untrusted or string keys: use the default hasher there.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (rustc's hasher); odd, so the
/// multiplication permutes `u64`.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher for small integer keys.
#[derive(Debug, Default, Clone)]
pub struct IdHasher(u64);

impl IdHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`IdHasher`].
pub type BuildIdHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by dense ids, hashed with [`IdHasher`].
pub type IdHashMap<K, V> = HashMap<K, V, BuildIdHasher>;

/// A `HashSet` of dense ids, hashed with [`IdHasher`].
pub type IdHashSet<T> = HashSet<T, BuildIdHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileId, Pid};

    #[test]
    fn map_with_id_keys_behaves_like_a_map() {
        let mut m: IdHashMap<Pid, u32> = IdHashMap::default();
        for i in 0..1000 {
            m.insert(Pid(i), i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&Pid(500)), Some(&1000));
        assert_eq!(m.remove(&Pid(0)), Some(0));
        assert!(!m.contains_key(&Pid(0)));
    }

    #[test]
    fn sequential_ids_spread_across_hashes() {
        // Distinct small keys must produce distinct hashes (the multiply is
        // a permutation of u64).
        let mut seen: HashSet<u64> = HashSet::new();
        for i in 0..10_000u32 {
            let mut h = IdHasher::default();
            h.write_u32(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn set_of_file_ids_works() {
        let mut s: IdHashSet<FileId> = IdHashSet::default();
        s.insert(FileId(7));
        assert!(s.contains(&FileId(7)));
        assert!(!s.contains(&FileId(8)));
    }
}
